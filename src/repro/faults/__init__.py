"""Failure-domain subsystem: deterministic fault injection and restart policies.

See docs/resilience.md for the plan format, restart-policy semantics, and the
recovery invariants each consumer (simulator, lane pool, service) upholds.
"""

from repro.faults.plan import (
    FAULT_STREAM,
    FaultPlan,
    NodeFailure,
    RestartPolicy,
    as_restart_policy,
)

__all__ = [
    "FAULT_STREAM",
    "FaultPlan",
    "NodeFailure",
    "RestartPolicy",
    "as_restart_policy",
]
