"""Deterministic fault-injection plans (docs/resilience.md).

A :class:`FaultPlan` is a *schedule of adversity*: simulated-time node
failures for the cluster model, worker kills at rollout round boundaries for
the process lane pool, and connection drops / torn final writes for the
service path.  Plans are plain frozen data -- nothing here performs the
injection; the simulator, lane pool, service tests, and the chaos harness
each consume the part of the plan addressed to them.

**Determinism.**  :meth:`FaultPlan.generate` draws every event from a child
stream derived via :func:`repro.utils.rng.derive_seed` at a dedicated index
(:data:`FAULT_STREAM`), the same fan-out discipline the scenario subsystem
uses for its base trace (index 0) and transforms (index 1).  A fault plan is
therefore reproducible from ``(seed, shape parameters)`` alone and composes
with scenario seeds without perturbing their draws: the workload a scenario
builds at seed *s* is bit-identical with and without a fault plan generated
from the same *s*.

**Restart semantics.**  :class:`RestartPolicy` decides what happens to a
preempted job's already-elapsed runtime: ``"requeue"`` discards it (the job
runs its full runtime again after its restart), ``"checkpoint"`` credits it
(only the remaining runtime is re-run, floored so a restart is never free).
The simulator applies the policy when a :class:`NodeFailure` kills running
jobs; see :meth:`repro.cluster.machine.Machine.fail_nodes`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence, Tuple

import math

from repro.utils.rng import SeedLike, as_rng, derive_seed
from repro.workloads.job import Job

__all__ = [
    "FAULT_STREAM",
    "NodeFailure",
    "RestartPolicy",
    "as_restart_policy",
    "FaultPlan",
]

#: ``derive_seed`` stream index reserved for fault plans.  Scenario builds use
#: index 0 for the base trace and 1 for transforms; fault schedules draw from
#: their own stream so adding one never shifts a scenario's workload.
FAULT_STREAM = 2


@dataclass(frozen=True, slots=True)
class NodeFailure:
    """``processors`` nodes fail at ``time`` and return after ``repair_duration``.

    Unlike a :class:`~repro.cluster.machine.DowntimeWindow` (a *graceful*
    drain that never touches running jobs), a node failure **preempts**: jobs
    occupying the failed nodes are killed and requeued through the active
    :class:`RestartPolicy`.  The repair duration must be finite and positive
    -- the failed nodes come back, which keeps reservation walks over the
    induced capacity window terminating.
    """

    time: float
    processors: int
    repair_duration: float

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"node failure cannot occur before t=0, got {self.time}")
        if self.processors <= 0:
            raise ValueError(f"node failure must take down a positive processor count, got {self.processors}")
        if not (math.isfinite(self.repair_duration) and self.repair_duration > 0):
            raise ValueError(
                f"repair_duration must be finite and positive, got {self.repair_duration}"
            )

    @property
    def repair_end(self) -> float:
        """Instant the failed nodes rejoin the pool."""
        return self.time + self.repair_duration


#: Floor (seconds) on the remaining runtime a checkpoint restart re-runs, so
#: a restart is never free even when the job was nearly done when killed.
_MIN_REMAINING = 1.0


@dataclass(frozen=True, slots=True)
class RestartPolicy:
    """What a preempted job's restart costs.

    ``mode="requeue"`` restarts from scratch: the job re-runs its full
    runtime.  ``mode="checkpoint"`` credits elapsed runtime accumulated over
    every previous (interrupted) run: only ``runtime - credit`` remains,
    floored at ``min_remaining`` (clamped to the job's own runtime, so tiny
    jobs stay consistent).
    """

    mode: str = "requeue"
    min_remaining: float = _MIN_REMAINING

    def __post_init__(self) -> None:
        if self.mode not in ("requeue", "checkpoint"):
            raise ValueError(f"unknown restart mode {self.mode!r} (expected 'requeue' or 'checkpoint')")
        if self.min_remaining <= 0:
            raise ValueError(f"min_remaining must be positive, got {self.min_remaining}")

    def remaining_runtime(self, job: Job, elapsed_credit: float) -> Optional[float]:
        """Runtime the job's next start must run, or ``None`` for the full runtime."""
        if self.mode == "requeue":
            return None
        floor = min(float(job.runtime), self.min_remaining)
        return max(float(job.runtime) - float(elapsed_credit), floor)


def as_restart_policy(value: "RestartPolicy | str | None") -> RestartPolicy:
    """Normalize a restart-policy argument (instance, mode name, or ``None``)."""
    if value is None:
        return RestartPolicy()
    if isinstance(value, RestartPolicy):
        return value
    return RestartPolicy(mode=str(value))


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """A reproducible schedule of injected failures across the three layers.

    * ``node_failures`` -- simulated-time cluster events, consumed by
      :class:`~repro.scheduler.simulator.Simulator`;
    * ``worker_kills`` -- ``(round_index, worker_index)`` pairs at which the
      lane pool kills (and deterministically respawns) a worker process,
      consumed by :class:`~repro.rl.lane_pool.ProcessLanePool`;
    * ``connection_drops`` -- request ordinals at which a service client
      connection is dropped before the response arrives (exercises the
      retry/dedup path);
    * ``torn_final_write`` -- whether a crash test should truncate the replay
      log mid-record (exercises torn-tail recovery).
    """

    seed: int = 0
    node_failures: Tuple[NodeFailure, ...] = ()
    worker_kills: Tuple[Tuple[int, int], ...] = ()
    connection_drops: Tuple[int, ...] = ()
    torn_final_write: bool = False
    restart_policy: RestartPolicy = field(default_factory=RestartPolicy)

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "node_failures",
            tuple(sorted(self.node_failures, key=lambda f: (f.time, f.processors))),
        )
        object.__setattr__(self, "worker_kills", tuple(sorted(set(self.worker_kills))))
        object.__setattr__(self, "connection_drops", tuple(sorted(set(self.connection_drops))))

    @property
    def has_node_failures(self) -> bool:
        return bool(self.node_failures)

    @property
    def has_worker_kills(self) -> bool:
        return bool(self.worker_kills)

    def kills_for_round(self, round_index: int) -> Tuple[int, ...]:
        """Worker indices to kill after completing ``round_index`` (sorted)."""
        return tuple(w for r, w in self.worker_kills if r == round_index)

    def drops_connection(self, request_index: int) -> bool:
        return request_index in self.connection_drops

    @classmethod
    def generate(
        cls,
        seed: SeedLike,
        *,
        horizon: float = 0.0,
        num_processors: int = 0,
        num_node_failures: int = 0,
        repair_fraction: float = 0.05,
        max_failure_fraction: float = 0.5,
        rounds: int = 0,
        num_workers: int = 0,
        num_worker_kills: int = 0,
        num_requests: int = 0,
        num_connection_drops: int = 0,
        torn_final_write: bool = False,
        restart_policy: "RestartPolicy | str | None" = None,
    ) -> "FaultPlan":
        """Draw a fault plan from the ``seed``'s dedicated child stream.

        Node failures land uniformly over ``(0, horizon)`` and take down
        between one processor and ``max_failure_fraction`` of the machine,
        with a repair time of ``repair_fraction * horizon``.  Worker kills
        land on distinct ``(round, worker)`` pairs; connection drops on
        distinct request ordinals.  Identical arguments yield an identical
        plan, and the draws never touch the caller's rng stream.
        """
        base = derive_seed(seed, FAULT_STREAM)
        rng = as_rng(base)
        failures = []
        if num_node_failures > 0:
            if horizon <= 0 or num_processors <= 0:
                raise ValueError(
                    "node-failure generation needs a positive horizon and num_processors"
                )
            max_down = max(int(num_processors * max_failure_fraction), 1)
            repair = max(horizon * repair_fraction, _MIN_REMAINING)
            times = sorted(float(t) for t in rng.uniform(0.0, horizon, size=num_node_failures))
            sizes = rng.integers(1, max_down + 1, size=num_node_failures)
            failures = [
                NodeFailure(time=t, processors=int(p), repair_duration=repair)
                for t, p in zip(times, sizes)
            ]
        kills: set[Tuple[int, int]] = set()
        if num_worker_kills > 0:
            if rounds <= 0 or num_workers <= 0:
                raise ValueError("worker-kill generation needs positive rounds and num_workers")
            want = min(num_worker_kills, rounds * num_workers)
            while len(kills) < want:
                kills.add((int(rng.integers(0, rounds)), int(rng.integers(0, num_workers))))
        drops: set[int] = set()
        if num_connection_drops > 0:
            if num_requests <= 0:
                raise ValueError("connection-drop generation needs a positive num_requests")
            want = min(num_connection_drops, num_requests)
            while len(drops) < want:
                drops.add(int(rng.integers(0, num_requests)))
        return cls(
            seed=base,
            node_failures=tuple(failures),
            worker_kills=tuple(sorted(kills)),
            connection_drops=tuple(sorted(drops)),
            torn_final_write=torn_final_write,
            restart_policy=as_restart_policy(restart_policy),
        )

    def describe(self) -> Mapping[str, object]:
        """JSON-friendly summary (chaos-harness reports embed this)."""
        return {
            "seed": self.seed,
            "node_failures": [
                {"time": f.time, "processors": f.processors, "repair_duration": f.repair_duration}
                for f in self.node_failures
            ],
            "worker_kills": [list(pair) for pair in self.worker_kills],
            "connection_drops": list(self.connection_drops),
            "torn_final_write": self.torn_final_write,
            "restart_policy": self.restart_policy.mode,
        }
