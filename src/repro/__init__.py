"""RLBackfilling: reinforcement-learning-based backfilling for HPC batch jobs.

This package reproduces the system described in "A Reinforcement Learning
Based Backfilling Strategy for HPC Batch Jobs" (Kolker-Hicks, Zhang, Dai;
PMBS @ SC 2023).  It contains:

* ``repro.workloads`` -- the Standard Workload Format (SWF) job model, the
  Lublin-Feitelson synthetic workload model, and calibrated synthetic
  equivalents of the SDSC-SP2 / HPC2N archive traces.
* ``repro.cluster`` -- a homogeneous cluster resource model.
* ``repro.scheduler`` -- a discrete-event HPC batch scheduling simulator with
  pluggable priority policies (FCFS, SJF, WFP3, F1) and backfilling
  strategies (EASY, EASY-AR, conservative, RL-driven).
* ``repro.prediction`` -- job runtime predictors (user estimate, perfect,
  noisy) used by the Figure 1 trade-off experiment.
* ``repro.rl`` -- a from-scratch reverse-mode autograd engine, dense neural
  network layers, Adam, and Proximal Policy Optimization.
* ``repro.core`` -- the paper's contribution: the RLBackfilling agent, its
  observation encoding, training environment, trainer, and the trained-policy
  backfiller that plugs back into the simulator.
* ``repro.experiments`` -- drivers that regenerate every figure and table in
  the paper's evaluation section.
"""

from repro.workloads import Job, Trace, lublin_trace, synthetic_trace, load_trace
from repro.scheduler import (
    Simulator,
    SimulationResult,
    FCFS,
    SJF,
    WFP3,
    F1,
    EasyBackfill,
    NoBackfill,
    ConservativeBackfill,
)
from repro.core import (
    RLBackfillAgent,
    RLBackfillPolicy,
    BackfillEnvironment,
    Trainer,
    TrainerConfig,
)

__version__ = "1.0.0"

__all__ = [
    "Job",
    "Trace",
    "lublin_trace",
    "synthetic_trace",
    "load_trace",
    "Simulator",
    "SimulationResult",
    "FCFS",
    "SJF",
    "WFP3",
    "F1",
    "EasyBackfill",
    "NoBackfill",
    "ConservativeBackfill",
    "RLBackfillAgent",
    "RLBackfillPolicy",
    "BackfillEnvironment",
    "Trainer",
    "TrainerConfig",
    "__version__",
]
