"""Table 5: generality of RLBackfilling across job traces.

An agent trained on trace X (column ``RL-X``) is applied, without any
retraining, to every other trace Y (rows).  The paper reports two sections --
FCFS and SJF as the base scheduling policy -- and observes that the learned
backfilling strategies transfer: RL-X beats EASY on traces it never saw.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.experiments.config import ExperimentScale, get_scale
from repro.experiments.runner import (
    SchedulingConfiguration,
    TrainedModel,
    evaluate_strategy,
    resolve_trace,
    train_rlbackfilling,
)
from repro.utils.rng import SeedLike, derive_seed, spawn_rngs
from repro.utils.tables import format_mapping_table
from repro.workloads.job import Trace
from repro.workloads.sampling import sample_sequence

__all__ = ["Table5Result", "run_table5"]

DEFAULT_TRACES: Tuple[str, ...] = ("SDSC-SP2", "HPC2N", "Lublin-1", "Lublin-2")
DEFAULT_POLICIES: Tuple[str, ...] = ("FCFS", "SJF")


@dataclass
class Table5Result:
    """Cross-trace evaluation: sections (policies) -> rows (traces) -> columns."""

    #: ``values[policy][trace][column] = mean bsld`` where columns are
    #: ``EASY``, ``EASY-AR`` and ``RL-<training trace>``.
    values: Dict[str, Dict[str, Dict[str, Optional[float]]]] = field(default_factory=dict)
    models: Dict[Tuple[str, str], TrainedModel] = field(default_factory=dict)

    def cell(self, policy: str, trace: str, column: str) -> Optional[float]:
        return self.values[policy][trace].get(column)

    def transfer_beats_easy(self, policy: str, trained_on: str, applied_to: str) -> bool:
        """Whether RL trained on ``trained_on`` beats EASY when applied to ``applied_to``."""
        row = self.values[policy][applied_to]
        easy = row.get("EASY") if row.get("EASY") is not None else row.get("EASY-AR")
        rl = row.get(f"RL-{trained_on}")
        if easy is None or rl is None:
            return False
        return rl <= easy

    def to_text(self) -> str:
        sections = []
        for policy, rows in self.values.items():
            sections.append(
                format_mapping_table(
                    rows,
                    row_label="Job Trace",
                    title=f"Table 5 -- {policy} as the base scheduling policy",
                )
            )
        return "\n\n".join(sections)


def run_table5(
    scale: ExperimentScale | str = "quick",
    traces: Sequence[str | Trace] = DEFAULT_TRACES,
    policies: Sequence[str] = DEFAULT_POLICIES,
    seed: SeedLike = 0,
    trained_models: Dict[Tuple[str, str], TrainedModel] | None = None,
) -> Table5Result:
    """Regenerate Table 5 (optionally reusing agents trained for Table 4)."""
    scale = get_scale(scale)
    resolved = [resolve_trace(t, scale) for t in traces]
    result = Table5Result()
    if trained_models:
        result.models.update(trained_models)

    # Train (or reuse) one model per (trace, policy).
    for policy_index, policy in enumerate(policies):
        for trace_index, trace in enumerate(resolved):
            key = (trace.name, policy)
            if key not in result.models:
                result.models[key] = train_rlbackfilling(
                    trace,
                    policy=policy,
                    scale=scale,
                    seed=derive_seed(seed, 500 + policy_index * 50 + trace_index),
                )

    # Evaluate every model on every trace.
    for policy in policies:
        section: Dict[str, Dict[str, Optional[float]]] = {}
        for trace_index, trace in enumerate(resolved):
            rngs = spawn_rngs(derive_seed(seed, trace_index), scale.eval_samples)
            sequences = [
                sample_sequence(trace, scale.eval_sequence_length, seed=rng) for rng in rngs
            ]
            row: Dict[str, Optional[float]] = {}
            if trace.has_user_estimates:
                row["EASY"] = evaluate_strategy(
                    trace, SchedulingConfiguration.easy(policy), sequences
                )
                row["EASY-AR"] = evaluate_strategy(
                    trace, SchedulingConfiguration.easy_ar(policy), sequences
                )
            else:
                row["EASY"] = None
                row["EASY-AR"] = evaluate_strategy(
                    trace, SchedulingConfiguration.easy_ar(policy), sequences
                )
            for source in resolved:
                model = result.models[(source.name, policy)]
                row[f"RL-{source.name}"] = evaluate_strategy(
                    trace,
                    SchedulingConfiguration.rl(policy, model.agent, label=f"RL-{source.name}"),
                    sequences,
                )
            section[trace.name] = row
        result.values[policy] = section
    return result
