"""Table 4: scheduling performance of RLBackfilling on sampled job sequences.

For each trace the table compares, on the same sampled evaluation sequences:

* FCFS+EASY, FCFS+EASY-AR, FCFS+RLBF,
* SJF+EASY, SJF+EASY-AR, SJF+RLBF,
* WFP3+EASY and F1+EASY as references.

RLBF models are trained per (trace, base policy) pair, as in the paper; the
EASY columns are omitted for the synthetic Lublin traces which carry no user
runtime estimates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.core.agent import RLBackfillAgent
from repro.experiments.config import ExperimentScale, get_scale
from repro.experiments.runner import (
    SchedulingConfiguration,
    TrainedModel,
    evaluate_strategy,
    resolve_trace,
    train_rlbackfilling,
)
from repro.utils.rng import SeedLike, derive_seed, spawn_rngs
from repro.utils.tables import format_mapping_table
from repro.workloads.job import Trace
from repro.workloads.sampling import sample_sequence

__all__ = ["Table4Result", "run_table4"]

DEFAULT_TRACES: Tuple[str, ...] = ("SDSC-SP2", "HPC2N", "Lublin-1", "Lublin-2")
RL_POLICIES: Tuple[str, ...] = ("FCFS", "SJF")
REFERENCE_POLICIES: Tuple[str, ...] = ("WFP3", "F1")

#: Published Table 4 values (bsld), used for the paper-vs-measured record in
#: EXPERIMENTS.md.  ``None`` marks cells the paper leaves empty.
PAPER_TABLE4 = {
    "SDSC-SP2": {
        "FCFS+EASY": 292.82, "FCFS+EASY-AR": 169.24, "FCFS+RLBF": 142.93,
        "SJF+EASY": 187.61, "SJF+EASY-AR": 103.43, "SJF+RLBF": 120.72,
        "WFP3+EASY": 228.3, "F1+EASY": 162.33,
    },
    "HPC2N": {
        "FCFS+EASY": 28.16, "FCFS+EASY-AR": 18.87, "FCFS+RLBF": 13.16,
        "SJF+EASY": 11.67, "SJF+EASY-AR": 3.73, "SJF+RLBF": 9.75,
        "WFP3+EASY": 15.16, "F1+EASY": 10.46,
    },
    "Lublin-1": {
        "FCFS+EASY": 192.89, "FCFS+EASY-AR": None, "FCFS+RLBF": 83.43,
        "SJF+EASY": 55.62, "SJF+EASY-AR": None, "SJF+RLBF": 30.57,
        "WFP3+EASY": 138.89, "F1+EASY": 50.9,
    },
    "Lublin-2": {
        "FCFS+EASY": 163.06, "FCFS+EASY-AR": None, "FCFS+RLBF": 120.46,
        "SJF+EASY": 85.63, "SJF+EASY-AR": None, "SJF+RLBF": 105.59,
        "WFP3+EASY": 248.02, "F1+EASY": 129.83,
    },
}


@dataclass
class Table4Result:
    """Measured bsld per trace and configuration."""

    #: ``values[trace][column] = mean bsld``
    values: Dict[str, Dict[str, Optional[float]]] = field(default_factory=dict)
    models: Dict[Tuple[str, str], TrainedModel] = field(default_factory=dict)

    def column(self, trace: str, label: str) -> Optional[float]:
        return self.values[trace].get(label)

    def rl_beats_easy(self, trace: str, policy: str = "FCFS") -> bool:
        """Whether RLBackfilling beats plain EASY for ``policy`` on ``trace``."""
        easy_label = f"{policy}+EASY"
        easy = self.values[trace].get(easy_label)
        if easy is None:  # traces without user estimates: compare against EASY-AR
            easy = self.values[trace].get(f"{policy}+EASY-AR")
        rl = self.values[trace].get(f"{policy}+RLBF")
        if easy is None or rl is None:
            return False
        return rl <= easy

    def to_text(self) -> str:
        return format_mapping_table(
            self.values,
            row_label="Job Traces",
            title="Table 4 -- bsld of base policy + backfilling strategy",
        )


def run_table4(
    scale: ExperimentScale | str = "quick",
    traces: Sequence[str | Trace] = DEFAULT_TRACES,
    seed: SeedLike = 0,
    trained_models: Dict[Tuple[str, str], TrainedModel] | None = None,
) -> Table4Result:
    """Regenerate Table 4.

    ``trained_models`` may supply pre-trained agents keyed by
    ``(trace_name, policy_name)``; anything missing is trained at the given
    scale.
    """
    scale = get_scale(scale)
    result = Table4Result()
    for trace_index, trace_spec in enumerate(traces):
        trace = resolve_trace(trace_spec, scale)
        rngs = spawn_rngs(derive_seed(seed, trace_index), scale.eval_samples)
        sequences = [
            sample_sequence(trace, scale.eval_sequence_length, seed=rng) for rng in rngs
        ]
        row: Dict[str, Optional[float]] = {}
        for policy_index, policy in enumerate(RL_POLICIES):
            if trace.has_user_estimates:
                row[f"{policy}+EASY"] = evaluate_strategy(
                    trace, SchedulingConfiguration.easy(policy), sequences
                )
                row[f"{policy}+EASY-AR"] = evaluate_strategy(
                    trace, SchedulingConfiguration.easy_ar(policy), sequences
                )
            else:
                # Lublin traces: requested time == actual runtime, so EASY and
                # EASY-AR coincide; report the value under EASY as the paper does.
                row[f"{policy}+EASY"] = evaluate_strategy(
                    trace, SchedulingConfiguration.easy(policy), sequences
                )
                row[f"{policy}+EASY-AR"] = None
            key = (trace.name, policy)
            model = (trained_models or {}).get(key) or result.models.get(key)
            if model is None:
                model = train_rlbackfilling(
                    trace,
                    policy=policy,
                    scale=scale,
                    seed=derive_seed(seed, 100 + trace_index * 10 + policy_index),
                )
            result.models[key] = model
            row[f"{policy}+RLBF"] = evaluate_strategy(
                trace, SchedulingConfiguration.rl(policy, model.agent), sequences
            )
        for policy in REFERENCE_POLICIES:
            configuration = (
                SchedulingConfiguration.easy(policy)
                if trace.has_user_estimates
                else SchedulingConfiguration.easy(policy)
            )
            row[f"{policy}+EASY"] = evaluate_strategy(trace, configuration, sequences)
        result.values[trace.name] = row
    return result
