"""Experiment scales.

The paper's evaluation schedules 10 x 1024-job samples per configuration and
trains PPO for hundreds of epochs of 100 x 256-job trajectories.  That budget
is appropriate for a workstation run but not for a benchmark harness on a
single CPU core, so every experiment driver takes an :class:`ExperimentScale`
that fixes the sample counts, sequence lengths, and training budget:

* ``paper``  -- the configuration from §4.1.1/§4.3.
* ``quick``  -- a few minutes end-to-end on one core; used by ``benchmarks/``.
* ``smoke``  -- seconds; used by the integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.trainer import TrainerConfig
from repro.rl.ppo import PPOConfig

__all__ = ["ExperimentScale", "PAPER_SCALE", "QUICK_SCALE", "SMOKE_SCALE", "get_scale"]


@dataclass(frozen=True, slots=True)
class ExperimentScale:
    """Sizing of every experiment driver."""

    name: str
    trace_jobs: int                 # jobs loaded from each trace (paper: first 10K)
    eval_sequence_length: int       # jobs per evaluation sample (paper: 1024)
    eval_samples: int               # samples per configuration (paper: 10)
    train_sequence_length: int      # jobs per training trajectory (paper: 256)
    max_queue_size: int             # MAX_OBSV_SIZE (paper: 128)
    trainer: TrainerConfig = field(default_factory=TrainerConfig)
    #: Size of the fixed pool of training sequences (None = sample a fresh
    #: sequence per trajectory, the paper's setting).  Reduced scales use a
    #: pool to cut reward variance so training converges in minutes.
    training_pool_size: int | None = None
    #: Only train on sequences whose baseline bsld is at least this value
    #: (None = no filtering).  Reduced scales use it so the few trajectories
    #: they can afford are spent on contended windows.
    min_training_bsld: float | None = None

    def __post_init__(self) -> None:
        if min(self.trace_jobs, self.eval_sequence_length, self.eval_samples) <= 0:
            raise ValueError("scale sizes must be positive")
        if min(self.train_sequence_length, self.max_queue_size) <= 0:
            raise ValueError("scale sizes must be positive")

    def with_trainer(self, trainer: TrainerConfig) -> "ExperimentScale":
        return replace(self, trainer=trainer)

    def with_epochs(self, epochs: int) -> "ExperimentScale":
        return replace(self, trainer=self.trainer.with_epochs(epochs))


#: The configuration described in the paper (§4.1.1, §4.3).
PAPER_SCALE = ExperimentScale(
    name="paper",
    trace_jobs=10_000,
    eval_sequence_length=1024,
    eval_samples=10,
    train_sequence_length=256,
    max_queue_size=128,
    trainer=TrainerConfig(epochs=100, trajectories_per_epoch=100, ppo=PPOConfig()),
)

#: A single-core-friendly configuration used by the benchmark harness.
QUICK_SCALE = ExperimentScale(
    name="quick",
    trace_jobs=4_000,
    eval_sequence_length=512,
    eval_samples=3,
    train_sequence_length=256,
    max_queue_size=32,
    trainer=TrainerConfig(
        epochs=12,
        trajectories_per_epoch=8,
        ppo=PPOConfig(policy_iterations=20, value_iterations=20),
    ),
    training_pool_size=6,
    min_training_bsld=5.0,
)

#: Seconds-scale configuration for integration tests.
SMOKE_SCALE = ExperimentScale(
    name="smoke",
    trace_jobs=1_500,
    eval_sequence_length=128,
    eval_samples=2,
    train_sequence_length=64,
    max_queue_size=16,
    trainer=TrainerConfig(
        epochs=2,
        trajectories_per_epoch=2,
        ppo=PPOConfig(policy_iterations=4, value_iterations=4),
    ),
    training_pool_size=2,
)

_SCALES = {scale.name: scale for scale in (PAPER_SCALE, QUICK_SCALE, SMOKE_SCALE)}


def get_scale(name: str | ExperimentScale) -> ExperimentScale:
    """Resolve a scale by name; passes instances through."""
    if isinstance(name, ExperimentScale):
        return name
    key = name.lower()
    if key not in _SCALES:
        raise KeyError(f"unknown scale {name!r}; available: {', '.join(_SCALES)}")
    return _SCALES[key]
