"""Figure 4: RLBackfilling training curves on the four evaluation traces.

Each curve shows the mean bounded slowdown of the agent's trajectories per
training epoch (y-axis of the paper's figure) when trained with FCFS as the
base scheduling policy.  The reproduction reports the same per-epoch series;
the benchmark harness runs the reduced ``quick`` scale, the paper scale is a
parameter away.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.core.trainer import TrainingHistory
from repro.experiments.config import ExperimentScale, get_scale
from repro.experiments.runner import TrainedModel, train_rlbackfilling
from repro.utils.rng import SeedLike, derive_seed
from repro.utils.tables import format_table
from repro.workloads.job import Trace

__all__ = ["Figure4Result", "run_figure4"]

DEFAULT_TRACES: Tuple[str, ...] = ("SDSC-SP2", "HPC2N", "Lublin-1", "Lublin-2")


@dataclass
class Figure4Result:
    """Training curves keyed by trace name."""

    policy_name: str
    histories: Dict[str, TrainingHistory] = field(default_factory=dict)
    models: Dict[str, TrainedModel] = field(default_factory=dict)

    def curve(self, trace_name: str) -> List[float]:
        """The per-epoch mean bsld series for one trace (a Figure 4 panel)."""
        return self.histories[trace_name].bslds

    def reward_curve(self, trace_name: str) -> List[float]:
        return self.histories[trace_name].rewards

    def converged(self, trace_name: str) -> bool:
        """Whether the final epoch improved on the first (the curve trends down)."""
        return self.histories[trace_name].improved()

    def to_text(self) -> str:
        headers = ["trace", "epochs", "first bsld", "last bsld", "last reward"]
        rows = []
        for name, history in self.histories.items():
            rows.append(
                (
                    name,
                    len(history),
                    history[0].mean_bsld,
                    history.final().mean_bsld,
                    history.final().mean_episode_reward,
                )
            )
        return format_table(
            headers, rows, title=f"Figure 4 -- training curves ({self.policy_name} base policy)"
        )


def run_figure4(
    scale: ExperimentScale | str = "quick",
    traces: Sequence[str | Trace] = DEFAULT_TRACES,
    policy: str = "FCFS",
    seed: SeedLike = 0,
) -> Figure4Result:
    """Train RLBackfilling on every trace and collect the training curves."""
    scale = get_scale(scale)
    result = Figure4Result(policy_name=policy)
    for index, trace in enumerate(traces):
        model = train_rlbackfilling(
            trace, policy=policy, scale=scale, seed=derive_seed(seed, index)
        )
        result.histories[model.trace_name] = model.history
        result.models[model.trace_name] = model
    return result
