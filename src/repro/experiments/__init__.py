"""Experiment drivers regenerating every figure and table of the paper.

Each driver returns a result object carrying the raw numbers plus a
``to_text()`` rendering that mirrors the corresponding table/figure layout.
The ``scale`` argument selects between the paper-scale configuration and a
``quick`` configuration sized for a single CPU core (used by the benchmark
harness); the code paths are identical.
"""

from repro.experiments.config import ExperimentScale, PAPER_SCALE, QUICK_SCALE, SMOKE_SCALE, get_scale
from repro.experiments.runner import (
    evaluate_configurations,
    evaluate_strategy,
    train_rlbackfilling,
    TrainedModel,
)
from repro.experiments.figure1 import Figure1Result, run_figure1
from repro.experiments.table2 import Table2Result, run_table2
from repro.experiments.figure4 import Figure4Result, run_figure4
from repro.experiments.table4 import Table4Result, run_table4
from repro.experiments.table5 import Table5Result, run_table5
from repro.experiments.ablations import AblationResult, run_ablations

__all__ = [
    "ExperimentScale",
    "PAPER_SCALE",
    "QUICK_SCALE",
    "SMOKE_SCALE",
    "get_scale",
    "evaluate_configurations",
    "evaluate_strategy",
    "train_rlbackfilling",
    "TrainedModel",
    "Figure1Result",
    "run_figure1",
    "Table2Result",
    "run_table2",
    "Figure4Result",
    "run_figure4",
    "Table4Result",
    "run_table4",
    "Table5Result",
    "run_table5",
    "AblationResult",
    "run_ablations",
]
