"""Figure 1: scheduling performance vs. runtime-prediction accuracy.

EASY backfilling is run under runtime predictions of decreasing accuracy --
the actual runtime (perfect prediction) plus relative noise levels of +5%,
+10%, +20%, +40% and +100% -- for the four base policies (FCFS, WFP3, SJF,
F1) on the SDSC-SP2 trace.  The paper's takeaway, reproduced here, is that
higher prediction accuracy does **not** monotonically improve the average
bounded slowdown: for several policies a noisy prediction beats the perfect
one because it leaves a larger backfilling area.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.experiments.config import ExperimentScale, get_scale
from repro.experiments.runner import (
    SchedulingConfiguration,
    evaluate_strategy,
    resolve_trace,
)
from repro.prediction.predictors import NoisyPrediction, ActualRuntime, UserEstimate
from repro.scheduler.backfill.easy import EasyBackfill
from repro.utils.rng import SeedLike, derive_seed, spawn_rngs
from repro.utils.tables import format_mapping_table
from repro.workloads.job import Trace
from repro.workloads.sampling import sample_sequence

__all__ = ["Figure1Result", "run_figure1"]

DEFAULT_POLICIES: Tuple[str, ...] = ("FCFS", "WFP3", "SJF", "F1")
DEFAULT_NOISE_LEVELS: Tuple[float, ...] = (0.0, 0.05, 0.10, 0.20, 0.40, 1.00)


def _noise_label(level: float) -> str:
    return "AR" if level == 0.0 else f"+{int(round(level * 100))}%"


@dataclass
class Figure1Result:
    """bsld per (policy, prediction-accuracy) cell."""

    trace_name: str
    noise_levels: Tuple[float, ...]
    #: ``values[policy][noise_label] = mean bsld``
    values: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: bsld of EASY with the raw user request time, for reference.
    request_time_values: Dict[str, float] = field(default_factory=dict)

    def series(self, policy: str) -> List[float]:
        """The plotted line for one policy (bsld by increasing noise)."""
        return [self.values[policy][_noise_label(level)] for level in self.noise_levels]

    def best_noise(self, policy: str) -> str:
        """Which prediction accuracy gives the best (lowest) bsld for ``policy``."""
        row = self.values[policy]
        return min(row, key=row.get)

    def accuracy_is_not_monotonic(self) -> bool:
        """True if, for at least one policy, some noisy prediction beats AR.

        This is the paper's headline observation from Figure 1.
        """
        return any(self.best_noise(policy) != "AR" for policy in self.values)

    def to_text(self) -> str:
        table = format_mapping_table(
            self.values,
            row_label="policy",
            title=f"Figure 1 -- EASY bsld vs prediction accuracy on {self.trace_name}",
        )
        footer = "\n(request-time EASY reference: " + ", ".join(
            f"{policy}={value:.1f}" for policy, value in self.request_time_values.items()
        ) + ")"
        return table + footer


def run_figure1(
    scale: ExperimentScale | str = "quick",
    trace: str | Trace = "SDSC-SP2",
    policies: Sequence[str] = DEFAULT_POLICIES,
    noise_levels: Sequence[float] = DEFAULT_NOISE_LEVELS,
    seed: SeedLike = 0,
) -> Figure1Result:
    """Regenerate Figure 1 at the given scale."""
    scale = get_scale(scale)
    trace = resolve_trace(trace, scale)
    rngs = spawn_rngs(seed, scale.eval_samples)
    sequences = [sample_sequence(trace, scale.eval_sequence_length, seed=rng) for rng in rngs]

    result = Figure1Result(trace_name=trace.name, noise_levels=tuple(noise_levels))
    for policy in policies:
        row: Dict[str, float] = {}
        for i, level in enumerate(noise_levels):
            estimator = (
                ActualRuntime()
                if level == 0.0
                else NoisyPrediction(level, seed=derive_seed(seed, i + 1))
            )
            configuration = SchedulingConfiguration(
                label=f"{policy}+EASY({_noise_label(level)})",
                policy=policy,
                backfill=EasyBackfill(),
                estimator=estimator,
            )
            row[_noise_label(level)] = evaluate_strategy(trace, configuration, sequences)
        result.values[policy] = row
        reference = SchedulingConfiguration(
            label=f"{policy}+EASY", policy=policy, backfill=EasyBackfill(), estimator=UserEstimate()
        )
        result.request_time_values[policy] = evaluate_strategy(trace, reference, sequences)
    return result
