"""Table 2: characteristics of the evaluation job traces."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.experiments.config import ExperimentScale, get_scale
from repro.experiments.runner import resolve_trace
from repro.utils.tables import format_table
from repro.workloads.job import Trace
from repro.workloads.stats import TraceStatistics, trace_statistics

__all__ = ["Table2Result", "run_table2"]

DEFAULT_TRACES: Tuple[str, ...] = ("SDSC-SP2", "HPC2N", "Lublin-1", "Lublin-2")

#: The published Table 2 values, used by tests/benchmarks to report the
#: paper-vs-measured comparison for the synthetic substitutes.
PAPER_TABLE2 = {
    "SDSC-SP2": {"size": 128, "it": 1055, "rt": 6687, "nt": 11},
    "HPC2N": {"size": 240, "it": 538, "rt": 17024, "nt": 6},
    "Lublin-1": {"size": 256, "it": 771, "rt": 4862, "nt": 22},
    "Lublin-2": {"size": 256, "it": 460, "rt": 1695, "nt": 39},
}


@dataclass
class Table2Result:
    """Measured trace statistics, one row per trace."""

    statistics: Dict[str, TraceStatistics] = field(default_factory=dict)

    def rows(self) -> List[tuple]:
        return [stats.table2_row() for stats in self.statistics.values()]

    def to_text(self) -> str:
        headers = ["Name", "size", "it (sec)", "rt (sec)", "nt", "Runtime"]
        return format_table(headers, self.rows(), title="Table 2 -- job trace characteristics")

    def relative_error(self, trace_name: str, column: str) -> float:
        """Relative deviation of a measured column from the published value."""
        stats = self.statistics[trace_name]
        measured = {
            "size": stats.num_processors,
            "it": stats.mean_interarrival,
            "rt": stats.mean_requested_time,
            "nt": stats.mean_requested_processors,
        }[column]
        published = PAPER_TABLE2[trace_name][column]
        return abs(measured - published) / published


def run_table2(
    scale: ExperimentScale | str = "quick",
    traces: Sequence[str | Trace] = DEFAULT_TRACES,
) -> Table2Result:
    """Compute Table 2 for the (synthetic or real) evaluation traces."""
    scale = get_scale(scale)
    result = Table2Result()
    for trace in traces:
        resolved = resolve_trace(trace, scale)
        result.statistics[resolved.name] = trace_statistics(resolved)
    return result
