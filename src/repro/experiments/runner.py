"""Shared evaluation and training helpers used by every experiment driver.

Fair comparison is handled here: for a given trace, every scheduling
configuration (policy x backfill x estimator) is evaluated on the **same**
sampled job sequences, and the mean bounded slowdown over the samples is
reported, matching the paper's protocol of 10 independently seeded samples
per configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.core.agent import RLBackfillAgent
from repro.core.environment import BackfillEnvironment, RewardConfig
from repro.core.observation import ObservationConfig
from repro.core.rlbackfill import RLBackfillPolicy
from repro.core.trainer import Trainer, TrainingHistory
from repro.experiments.config import ExperimentScale, get_scale
from repro.prediction.predictors import ActualRuntime, RuntimeEstimator, UserEstimate
from repro.scheduler.backfill.base import BackfillStrategy
from repro.scheduler.backfill.easy import EasyBackfill
from repro.scheduler.policies import PriorityPolicy, get_policy
from repro.scheduler.simulator import SimulationResult, Simulator
from repro.utils.rng import SeedLike, as_rng, spawn_rngs
from repro.workloads.job import Job, Trace
from repro.workloads.archive import load_trace
from repro.workloads.sampling import sample_sequence

__all__ = [
    "SchedulingConfiguration",
    "evaluate_strategy",
    "evaluate_strategy_results",
    "evaluate_configurations",
    "TrainedModel",
    "train_rlbackfilling",
    "load_or_train_agent",
    "resolve_trace",
]


def resolve_trace(trace: str | Trace, scale: ExperimentScale) -> Trace:
    """Load a trace by name at the scale's job count, or pass a Trace through."""
    if isinstance(trace, Trace):
        return trace
    return load_trace(trace, num_jobs=scale.trace_jobs)


@dataclass(frozen=True, slots=True)
class SchedulingConfiguration:
    """One column of an evaluation table: policy + backfill + estimator."""

    label: str
    policy: PriorityPolicy | str
    backfill: BackfillStrategy
    estimator: RuntimeEstimator

    @classmethod
    def easy(cls, policy: str, label: str | None = None) -> "SchedulingConfiguration":
        """Base policy + EASY backfilling with the user request time."""
        return cls(
            label=label or f"{policy}+EASY",
            policy=policy,
            backfill=EasyBackfill(),
            estimator=UserEstimate(),
        )

    @classmethod
    def easy_ar(cls, policy: str, label: str | None = None) -> "SchedulingConfiguration":
        """Base policy + EASY backfilling with the actual runtime (ideal prediction)."""
        return cls(
            label=label or f"{policy}+EASY-AR",
            policy=policy,
            backfill=EasyBackfill(),
            estimator=ActualRuntime(),
        )

    @classmethod
    def rl(
        cls, policy: str, agent: RLBackfillAgent, label: str | None = None
    ) -> "SchedulingConfiguration":
        """Base policy + trained RLBackfilling agent."""
        return cls(
            label=label or f"{policy}+RLBF",
            policy=policy,
            backfill=RLBackfillPolicy(agent),
            estimator=UserEstimate(),
        )


def _sample_evaluation_sequences(
    trace: Trace, scale: ExperimentScale, seed: SeedLike
) -> List[List[Job]]:
    rngs = spawn_rngs(seed, scale.eval_samples)
    return [
        sample_sequence(trace, scale.eval_sequence_length, seed=rng) for rng in rngs
    ]


def _resolve_per_sequence(value, jobs: Sequence[Job]):
    """Resolve a per-sequence event list (capacity schedule or node failures).

    ``value`` may be ``None``, a concrete sequence of events
    (:class:`~repro.cluster.machine.DowntimeWindow` /
    :class:`~repro.faults.NodeFailure`), or a callable mapping the sequence's
    submission span (seconds) to an event list -- the form the scenario
    subsystem uses so fractional specs scale with the evaluated sequence.
    """
    if value is None:
        return None
    if callable(value):
        span = max(job.submit_time for job in jobs) - min(job.submit_time for job in jobs)
        return value(span)
    return value


def evaluate_strategy_results(
    trace: Trace,
    configuration: SchedulingConfiguration,
    sequences: Sequence[Sequence[Job]],
    capacity_schedule=None,
    node_failures=None,
    restart_policy=None,
    topology=None,
    allocator="first_fit",
) -> List[SimulationResult]:
    """Per-sequence :class:`SimulationResult` of ``configuration`` over ``sequences``."""
    results = []
    for jobs in sequences:
        simulator = Simulator(
            num_processors=trace.num_processors,
            policy=configuration.policy,
            backfill=configuration.backfill,
            estimator=configuration.estimator,
            capacity_schedule=_resolve_per_sequence(capacity_schedule, jobs),
            node_failures=_resolve_per_sequence(node_failures, jobs),
            restart_policy=restart_policy,
            topology=topology,
            allocator=allocator,
        )
        results.append(simulator.run(jobs))
    return results


def evaluate_strategy(
    trace: Trace,
    configuration: SchedulingConfiguration,
    sequences: Sequence[Sequence[Job]],
    capacity_schedule=None,
    node_failures=None,
    restart_policy=None,
) -> float:
    """Mean bounded slowdown of ``configuration`` over ``sequences``."""
    results = evaluate_strategy_results(
        trace,
        configuration,
        sequences,
        capacity_schedule=capacity_schedule,
        node_failures=node_failures,
        restart_policy=restart_policy,
    )
    return float(np.mean([result.bsld for result in results]))


def evaluate_configurations(
    trace: str | Trace,
    configurations: Sequence[SchedulingConfiguration],
    scale: ExperimentScale | str = "quick",
    seed: SeedLike = 0,
    sequences: Sequence[Sequence[Job]] | None = None,
    capacity_schedule=None,
) -> Dict[str, float]:
    """Evaluate every configuration on the same sampled sequences of ``trace``.

    ``trace`` additionally accepts a ``"scenario:<name>"`` string, which
    builds the named scenario from the registry
    (:mod:`repro.scenarios.registry`) at this call's seed: the scenario's
    transformed trace becomes the workload and its downtime windows become
    the ``capacity_schedule`` (unless one was passed explicitly).
    """
    scale = get_scale(scale)
    if isinstance(trace, str) and trace.startswith("scenario:"):
        from repro.scenarios.registry import get_scenario

        built = get_scenario(trace[len("scenario:"):]).build(
            seed=seed, num_jobs=scale.trace_jobs
        )
        trace = built.trace
        if capacity_schedule is None and built.has_downtime:
            capacity_schedule = built.capacity_schedule
    trace = resolve_trace(trace, scale)
    if sequences is None:
        sequences = _sample_evaluation_sequences(trace, scale, seed)
    return {
        configuration.label: evaluate_strategy(
            trace, configuration, sequences, capacity_schedule=capacity_schedule
        )
        for configuration in configurations
    }


@dataclass
class TrainedModel:
    """A trained RLBackfilling agent plus its provenance."""

    agent: RLBackfillAgent
    history: TrainingHistory
    trace_name: str
    policy_name: str

    @property
    def label(self) -> str:
        return f"RL-{self.trace_name}"

    def strategy(self, deterministic: bool = True) -> RLBackfillPolicy:
        return RLBackfillPolicy(self.agent, deterministic=deterministic)


def train_rlbackfilling(
    trace: str | Trace,
    policy: str | PriorityPolicy = "FCFS",
    scale: ExperimentScale | str = "quick",
    seed: SeedLike = 0,
    reward_config: RewardConfig | None = None,
    num_envs: int | None = None,
    backend: str | None = None,
    num_workers: int | None = None,
    pipeline_depth: int | None = None,
) -> TrainedModel:
    """Train an RLBackfilling agent on ``trace`` with ``policy`` as the base scheduler.

    ``num_envs`` overrides the scale's vectorized-rollout width: rollouts are
    collected by stepping that many independent environment lanes in lockstep
    with one batched policy forward pass per decision step (see
    :class:`repro.rl.vec_env.VecBackfillEnv`).  ``backend`` picks where those
    lanes live: ``"local"`` steps them in-process, ``"process"`` shards them
    across ``num_workers`` worker processes exchanging observations and
    actions through shared memory
    (:class:`repro.rl.lane_pool.ProcessLanePool`); ``pipeline_depth=2``
    additionally overlaps the batched forward pass with worker stepping via
    double-buffered lane cohorts.  ``None`` keeps the scale's trainer
    configuration unchanged.
    """
    scale = get_scale(scale)
    trace = resolve_trace(trace, scale)
    policy = get_policy(policy)
    rng = as_rng(seed)
    observation_config = ObservationConfig(max_queue_size=scale.max_queue_size)
    environment = BackfillEnvironment(
        trace,
        policy=policy,
        sequence_length=scale.train_sequence_length,
        observation_config=observation_config,
        reward_config=reward_config,
        seed=rng,
        training_pool_size=scale.training_pool_size,
        min_baseline_bsld=scale.min_training_bsld,
    )
    agent = RLBackfillAgent(observation_config=observation_config, seed=rng)
    trainer_config = scale.trainer
    overrides = {}
    if num_envs is not None:
        overrides["num_envs"] = num_envs
    if backend is not None:
        overrides["backend"] = backend
    if num_workers is not None:
        overrides["num_workers"] = num_workers
    if pipeline_depth is not None:
        overrides["pipeline_depth"] = pipeline_depth
    if overrides:
        trainer_config = replace(trainer_config, **overrides)
    with Trainer(environment, agent, trainer_config, seed=rng) as trainer:
        history = trainer.train()
    return TrainedModel(
        agent=agent, history=history, trace_name=trace.name, policy_name=policy.name
    )


def load_or_train_agent(
    checkpoint: str | None,
    trace: str | Trace = "lublin_256",
    policy: str | PriorityPolicy = "FCFS",
    scale: ExperimentScale | str = "smoke",
    seed: SeedLike = 0,
) -> RLBackfillAgent:
    """Load a trained agent from ``checkpoint``, training one if it is absent.

    The online scheduling service and its load harness need *some* trained
    weights without caring where they came from: a committed checkpoint on a
    developer machine, or a freshly trained smoke-scale agent on a CI runner.
    When ``checkpoint`` names an existing file it is loaded as-is; when it
    names a missing path, a quick agent is trained and saved there so repeat
    runs are warm; ``None`` trains without persisting.
    """
    from repro.core.checkpoints import load_agent, save_agent

    if checkpoint is not None:
        path = Path(checkpoint)
        if not path.suffix:
            path = path.with_suffix(".npz")
        if path.exists():
            return load_agent(path)
    model = train_rlbackfilling(trace, policy=policy, scale=scale, seed=seed)
    if checkpoint is not None:
        save_agent(model.agent, checkpoint)
    return model.agent


def standard_columns(
    trace: Trace,
    rl_models: Mapping[str, RLBackfillAgent] | None = None,
    policies: Tuple[str, ...] = ("FCFS", "SJF"),
    include_reference_policies: bool = True,
) -> List[SchedulingConfiguration]:
    """The Table 4 column set for one trace.

    ``rl_models`` maps a base-policy name to a trained agent; EASY columns are
    produced only when the trace has user estimates (synthetic Lublin traces
    report only the EASY-AR-equivalent column, as in the paper).
    """
    columns: List[SchedulingConfiguration] = []
    for policy in policies:
        if trace.has_user_estimates:
            columns.append(SchedulingConfiguration.easy(policy))
        columns.append(SchedulingConfiguration.easy_ar(policy))
        if rl_models and policy in rl_models:
            columns.append(SchedulingConfiguration.rl(policy, rl_models[policy]))
    if include_reference_policies:
        for policy in ("WFP3", "F1"):
            if trace.has_user_estimates:
                columns.append(SchedulingConfiguration.easy(policy))
            else:
                columns.append(SchedulingConfiguration.easy_ar(policy))
    return columns
