"""Ablation studies on RLBackfilling design choices.

The paper fixes several design parameters without ablation (the delay-violation
penalty, the observation size MAX_OBSV_SIZE, and the heuristic baseline used
in the reward).  These drivers quantify their impact so the design choices
recorded in DESIGN.md are backed by measurements:

* ``delay_penalty`` -- how strongly the agent is punished for backfills that
  would delay the reserved job.
* ``max_queue_size`` -- how many waiting jobs the agent can observe/choose from.
* ``backfill_heuristics`` -- how the heuristic strategies (no backfilling,
  EASY, EASY-AR, conservative, greedy) compare on the same sequences, which
  frames how much headroom a learned policy has.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.core.environment import RewardConfig
from repro.core.observation import ObservationConfig
from repro.experiments.config import ExperimentScale, get_scale
from repro.experiments.runner import (
    SchedulingConfiguration,
    evaluate_strategy,
    resolve_trace,
    train_rlbackfilling,
)
from repro.prediction.predictors import ActualRuntime, UserEstimate
from repro.scheduler.backfill.conservative import ConservativeBackfill
from repro.scheduler.backfill.easy import EasyBackfill, GreedyBackfill
from repro.scheduler.backfill.none import NoBackfill
from repro.utils.rng import SeedLike, derive_seed, spawn_rngs
from repro.utils.tables import format_table
from repro.workloads.job import Trace
from repro.workloads.sampling import sample_sequence

__all__ = ["AblationResult", "run_ablations", "run_heuristic_comparison"]

DEFAULT_DELAY_PENALTIES = (0.0, -0.5, -2.0, -5.0)
DEFAULT_QUEUE_SIZES = (16, 32, 64)


@dataclass
class AblationResult:
    """bsld per ablation setting."""

    trace_name: str
    policy_name: str
    delay_penalty: Dict[float, float] = field(default_factory=dict)
    queue_size: Dict[int, float] = field(default_factory=dict)
    heuristics: Dict[str, float] = field(default_factory=dict)

    def to_text(self) -> str:
        sections = []
        if self.delay_penalty:
            sections.append(
                format_table(
                    ["delay penalty", "bsld"],
                    sorted(self.delay_penalty.items()),
                    title=f"Ablation -- delay-violation penalty ({self.trace_name}, {self.policy_name})",
                )
            )
        if self.queue_size:
            sections.append(
                format_table(
                    ["MAX_OBSV_SIZE", "bsld"],
                    sorted(self.queue_size.items()),
                    title="Ablation -- observation size",
                )
            )
        if self.heuristics:
            sections.append(
                format_table(
                    ["heuristic", "bsld"],
                    list(self.heuristics.items()),
                    title="Heuristic backfilling comparison",
                )
            )
        return "\n\n".join(sections)


def _evaluation_sequences(trace: Trace, scale: ExperimentScale, seed: SeedLike):
    rngs = spawn_rngs(seed, scale.eval_samples)
    return [sample_sequence(trace, scale.eval_sequence_length, seed=rng) for rng in rngs]


def run_heuristic_comparison(
    scale: ExperimentScale | str = "quick",
    trace: str | Trace = "SDSC-SP2",
    policy: str = "FCFS",
    seed: SeedLike = 0,
) -> Dict[str, float]:
    """bsld of the heuristic backfilling strategies on the same sequences."""
    scale = get_scale(scale)
    trace = resolve_trace(trace, scale)
    sequences = _evaluation_sequences(trace, scale, seed)
    configurations = [
        SchedulingConfiguration("no-backfill", policy, NoBackfill(), UserEstimate()),
        SchedulingConfiguration("EASY", policy, EasyBackfill(), UserEstimate()),
        SchedulingConfiguration("EASY-AR", policy, EasyBackfill(), ActualRuntime()),
        SchedulingConfiguration("EASY-SJF", policy, EasyBackfill(order="sjf"), UserEstimate()),
        SchedulingConfiguration("conservative", policy, ConservativeBackfill(), UserEstimate()),
        SchedulingConfiguration("greedy", policy, GreedyBackfill(), UserEstimate()),
    ]
    return {
        configuration.label: evaluate_strategy(trace, configuration, sequences)
        for configuration in configurations
    }


def run_ablations(
    scale: ExperimentScale | str = "quick",
    trace: str | Trace = "SDSC-SP2",
    policy: str = "FCFS",
    delay_penalties: Sequence[float] = DEFAULT_DELAY_PENALTIES,
    queue_sizes: Sequence[int] = DEFAULT_QUEUE_SIZES,
    include_heuristics: bool = True,
    seed: SeedLike = 0,
) -> AblationResult:
    """Train small agents under each ablation setting and evaluate them."""
    scale = get_scale(scale)
    trace = resolve_trace(trace, scale)
    sequences = _evaluation_sequences(trace, scale, seed)
    result = AblationResult(trace_name=trace.name, policy_name=policy)

    for index, penalty in enumerate(delay_penalties):
        model = train_rlbackfilling(
            trace,
            policy=policy,
            scale=scale,
            seed=derive_seed(seed, 900 + index),
            reward_config=RewardConfig(delay_penalty=penalty),
        )
        result.delay_penalty[penalty] = evaluate_strategy(
            trace, SchedulingConfiguration.rl(policy, model.agent), sequences
        )

    for index, size in enumerate(queue_sizes):
        sized_scale = get_scale(scale)
        sized_scale = ExperimentScale(
            name=f"{sized_scale.name}-q{size}",
            trace_jobs=sized_scale.trace_jobs,
            eval_sequence_length=sized_scale.eval_sequence_length,
            eval_samples=sized_scale.eval_samples,
            train_sequence_length=sized_scale.train_sequence_length,
            max_queue_size=size,
            trainer=sized_scale.trainer,
        )
        model = train_rlbackfilling(
            trace, policy=policy, scale=sized_scale, seed=derive_seed(seed, 950 + index)
        )
        result.queue_size[size] = evaluate_strategy(
            trace, SchedulingConfiguration.rl(policy, model.agent), sequences
        )

    if include_heuristics:
        result.heuristics = run_heuristic_comparison(scale, trace, policy, seed=seed)
    return result
