"""Composable, seed-deterministic trace transforms.

A :class:`TraceTransform` is a pure ``Trace -> Trace`` map: it never mutates
the input trace and all randomness comes from the :class:`numpy.random.Generator`
passed to :meth:`~TraceTransform.apply`, so a scenario built from
``(base trace, transform list, seed)`` is reproducible bit for bit.  The
transforms model the standard perturbations of the Lublin/Feitelson
synthetic-workload robustness methodology:

* :class:`LoadScale` -- uniform interarrival compression (offered-load x N),
* :class:`BurstInject` -- collapse runs of arrivals into near-simultaneous
  submission storms,
* :class:`ArrivalThin` -- random job dropout (sparse/quiet workloads),
* :class:`EstimateNoise` / :class:`EstimateInflate` -- corrupt or inflate the
  user wall-time estimates the backfilling reservations rely on,
* :class:`SizeFilter` / :class:`SizeRescale` -- restrict or rescale job
  widths.

Transforms compose with :func:`apply_transforms` (or :class:`Compose`);
composition is **order-sensitive** -- thinning after burst injection thins
the bursts, thinning before it bursts the survivors -- and each transform in
a chain draws from its own child generator so inserting a transform never
perturbs the draws of the ones after it (only their inputs).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, replace
from typing import Dict, Sequence

import numpy as np

from repro.utils.rng import SeedLike, check_probability, spawn_rngs
from repro.workloads.job import Job, Trace

__all__ = [
    "TraceTransform",
    "LoadScale",
    "BurstInject",
    "ArrivalThin",
    "EstimateNoise",
    "EstimateInflate",
    "SizeFilter",
    "SizeRescale",
    "AssignResources",
    "Compose",
    "apply_transforms",
]


class TraceTransform(ABC):
    """A pure, seedable ``Trace -> Trace`` map."""

    @abstractmethod
    def apply(self, trace: Trace, rng: np.random.Generator) -> Trace:
        """Return the transformed trace (the input is never mutated)."""

    @property
    def tag(self) -> str:
        """Short label appended to the trace name for provenance."""
        return type(self).__name__.lower()

    def describe(self) -> Dict[str, object]:
        """JSON-serializable provenance record (kind + parameters)."""
        record: Dict[str, object] = {"kind": type(self).__name__}
        for field in getattr(self, "__dataclass_fields__", {}):
            record[field] = getattr(self, field)
        return record

    def _rename(self, trace: Trace, jobs: Sequence[Job]) -> Trace:
        return Trace.from_jobs(
            name=f"{trace.name}+{self.tag}",
            num_processors=trace.num_processors,
            jobs=jobs,
        )


@dataclass(frozen=True, slots=True)
class LoadScale(TraceTransform):
    """Scale the offered load by compressing interarrival gaps uniformly.

    ``factor > 1`` compresses arrivals (higher load), ``factor < 1`` stretches
    them.  Submission times map as ``s0 + (s - s0) / factor``; runtimes,
    widths, and estimates are untouched, so the processor-seconds demanded per
    wall-clock second scale by exactly ``factor``.
    """

    factor: float

    def __post_init__(self) -> None:
        if self.factor <= 0:
            raise ValueError(f"load factor must be positive, got {self.factor}")

    @property
    def tag(self) -> str:
        return f"load{self.factor:g}x"

    def apply(self, trace: Trace, rng: np.random.Generator) -> Trace:
        if not len(trace):
            return trace
        origin = trace.jobs[0].submit_time
        jobs = [
            replace(job, submit_time=origin + (job.submit_time - origin) / self.factor)
            for job in trace.jobs
        ]
        return self._rename(trace, jobs)


@dataclass(frozen=True, slots=True)
class BurstInject(TraceTransform):
    """Collapse runs of consecutive arrivals into near-simultaneous bursts.

    ``num_bursts`` anchor jobs are drawn uniformly; the ``burst_length`` jobs
    following each anchor are resubmitted within ``span_seconds`` of the
    anchor's submission (uniformly), modelling submission storms (a user
    releasing a parameter sweep, a gateway flushing a queue).  Total job count
    and every per-job attribute except the submit time are preserved.
    """

    num_bursts: int = 4
    burst_length: int = 24
    span_seconds: float = 120.0

    def __post_init__(self) -> None:
        if self.num_bursts <= 0 or self.burst_length <= 0:
            raise ValueError("num_bursts and burst_length must be positive")
        if self.span_seconds < 0:
            raise ValueError("span_seconds must be non-negative")

    @property
    def tag(self) -> str:
        return f"burst{self.num_bursts}x{self.burst_length}"

    def apply(self, trace: Trace, rng: np.random.Generator) -> Trace:
        n = len(trace)
        if n < 2:
            return trace
        submits = np.array([job.submit_time for job in trace.jobs], dtype=np.float64)
        max_anchor = max(n - self.burst_length - 1, 1)
        anchors = np.sort(rng.integers(0, max_anchor, size=self.num_bursts))
        for anchor in anchors:
            stop = min(anchor + 1 + self.burst_length, n)
            count = stop - (anchor + 1)
            if count <= 0:
                continue
            offsets = rng.uniform(0.0, self.span_seconds, size=count)
            submits[anchor + 1 : stop] = submits[anchor] + offsets
        jobs = [
            replace(job, submit_time=float(submits[i])) for i, job in enumerate(trace.jobs)
        ]
        return self._rename(trace, jobs)


@dataclass(frozen=True, slots=True)
class ArrivalThin(TraceTransform):
    """Keep each job independently with probability ``keep_fraction``.

    At least ``min_jobs`` jobs always survive (the earliest submitters are
    retained if the coin flips would leave fewer), so downstream sequence
    sampling never sees an empty trace.
    """

    keep_fraction: float = 0.5
    min_jobs: int = 16

    def __post_init__(self) -> None:
        check_probability(self.keep_fraction, "keep_fraction")
        if self.keep_fraction == 0.0:
            raise ValueError("keep_fraction must be positive (0 would drop every job)")
        if self.min_jobs <= 0:
            raise ValueError("min_jobs must be positive")

    @property
    def tag(self) -> str:
        return f"thin{self.keep_fraction:g}"

    def apply(self, trace: Trace, rng: np.random.Generator) -> Trace:
        keep = rng.random(len(trace)) < self.keep_fraction
        jobs = [job for job, kept in zip(trace.jobs, keep) if kept]
        if len(jobs) < self.min_jobs:
            jobs = list(trace.jobs[: self.min_jobs])
        return self._rename(trace, jobs)


@dataclass(frozen=True, slots=True)
class EstimateNoise(TraceTransform):
    """Multiply user wall-time estimates by log-normal noise.

    ``sigma`` controls the spread; ``bias`` shifts the median multiplicatively
    (``bias > 1`` leans towards over-estimation).  With
    ``allow_underestimate=False`` the noisy estimate is floored at the actual
    runtime, preserving the "estimate is an upper bound" contract some
    schedulers assume; the default allows under-estimates, the harder regime
    the paper's Figure 1 explores.
    """

    sigma: float = 0.8
    bias: float = 1.0
    allow_underestimate: bool = True

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")
        if self.bias <= 0:
            raise ValueError("bias must be positive")

    @property
    def tag(self) -> str:
        return f"estnoise{self.sigma:g}"

    def apply(self, trace: Trace, rng: np.random.Generator) -> Trace:
        factors = self.bias * np.exp(rng.normal(0.0, self.sigma, size=len(trace)))
        jobs = []
        for job, factor in zip(trace.jobs, factors):
            estimate = max(job.requested_time * float(factor), 1.0)
            if not self.allow_underestimate:
                estimate = max(estimate, job.runtime)
            jobs.append(job.with_requested_time(estimate))
        return self._rename(trace, jobs)


@dataclass(frozen=True, slots=True)
class EstimateInflate(TraceTransform):
    """Multiply every wall-time estimate by a fixed ``factor`` (>= or < 1)."""

    factor: float = 3.0

    def __post_init__(self) -> None:
        if self.factor <= 0:
            raise ValueError("factor must be positive")

    @property
    def tag(self) -> str:
        return f"estx{self.factor:g}"

    def apply(self, trace: Trace, rng: np.random.Generator) -> Trace:
        jobs = [
            job.with_requested_time(max(job.requested_time * self.factor, 1.0))
            for job in trace.jobs
        ]
        return self._rename(trace, jobs)


@dataclass(frozen=True, slots=True)
class SizeFilter(TraceTransform):
    """Keep only jobs whose width lies in ``[min_processors, max_processors]``."""

    min_processors: int = 1
    max_processors: int | None = None

    def __post_init__(self) -> None:
        if self.min_processors <= 0:
            raise ValueError("min_processors must be positive")
        if self.max_processors is not None and self.max_processors < self.min_processors:
            raise ValueError("max_processors must be >= min_processors")

    @property
    def tag(self) -> str:
        hi = "inf" if self.max_processors is None else f"{self.max_processors}"
        return f"size[{self.min_processors},{hi}]"

    def apply(self, trace: Trace, rng: np.random.Generator) -> Trace:
        hi = self.max_processors if self.max_processors is not None else trace.num_processors
        jobs = [
            job
            for job in trace.jobs
            if self.min_processors <= job.requested_processors <= hi
        ]
        if not jobs:
            raise ValueError(
                f"SizeFilter[{self.min_processors}, {hi}] removed every job of trace "
                f"{trace.name!r}"
            )
        return self._rename(trace, jobs)


@dataclass(frozen=True, slots=True)
class SizeRescale(TraceTransform):
    """Scale job widths by ``factor``, clipping into ``[1, num_processors]``."""

    factor: float = 1.5

    def __post_init__(self) -> None:
        if self.factor <= 0:
            raise ValueError("factor must be positive")

    @property
    def tag(self) -> str:
        return f"width{self.factor:g}x"

    def apply(self, trace: Trace, rng: np.random.Generator) -> Trace:
        jobs = [
            replace(
                job,
                requested_processors=int(
                    np.clip(round(job.requested_processors * self.factor), 1, trace.num_processors)
                ),
            )
            for job in trace.jobs
        ]
        return self._rename(trace, jobs)


@dataclass(frozen=True, slots=True)
class AssignResources(TraceTransform):
    """Assign memory/GPU demands and partition bindings to a cpu-only trace.

    SWF archives carry no GPU demand and the synthetic generators no memory,
    so heterogeneous scenarios dress a base trace with seeded per-job resource
    requirements:

    * with probability ``gpu_fraction`` a job requests a uniform GPU count in
      ``[gpus_min, gpus_max]``;
    * with probability ``memory_fraction`` a job requests ``memory_heavy``
      per-processor memory units, otherwise ``memory_light`` (0 = leave the
      trace's memory untouched);
    * jobs draw a partition id from ``partitions`` with ``partition_weights``
      (empty = no partition binding), and their width is clipped to the
      matching ``partition_max_processors`` entry when given;
    * every width is clipped to ``max_processors`` (so each job fits the
      largest node group) and resource-constrained jobs -- those that drew
      GPUs or heavy memory -- additionally to ``constrained_max_processors``
      (so they fit the scarce group hosting that resource).

    All draws are taken up front as arrays, so the per-job assignment is a
    pure function of (trace, seed) regardless of which features are enabled.
    """

    gpu_fraction: float = 0.0
    gpus_min: int = 1
    gpus_max: int = 4
    memory_fraction: float = 0.0
    memory_heavy: int = 4096
    memory_light: int = 0
    partitions: tuple[int, ...] = ()
    partition_weights: tuple[float, ...] = ()
    partition_max_processors: tuple[int, ...] = ()
    max_processors: int | None = None
    constrained_max_processors: int | None = None

    def __post_init__(self) -> None:
        check_probability(self.gpu_fraction, "gpu_fraction")
        check_probability(self.memory_fraction, "memory_fraction")
        if not 0 < self.gpus_min <= self.gpus_max:
            raise ValueError("need 0 < gpus_min <= gpus_max")
        if self.memory_heavy < 0 or self.memory_light < 0:
            raise ValueError("memory assignments must be non-negative")
        if self.partitions:
            if len(self.partition_weights) != len(self.partitions):
                raise ValueError("partition_weights must match partitions in length")
            if abs(sum(self.partition_weights) - 1.0) > 1e-9:
                raise ValueError("partition_weights must sum to 1")
            if self.partition_max_processors and len(self.partition_max_processors) != len(
                self.partitions
            ):
                raise ValueError("partition_max_processors must match partitions in length")
        if self.max_processors is not None and self.max_processors <= 0:
            raise ValueError("max_processors must be positive when given")
        if self.constrained_max_processors is not None and self.constrained_max_processors <= 0:
            raise ValueError("constrained_max_processors must be positive when given")

    @property
    def tag(self) -> str:
        return "hetero"

    def apply(self, trace: Trace, rng: np.random.Generator) -> Trace:
        n = len(trace)
        if not n:
            return trace
        gpu_coin = rng.random(n)
        gpu_counts = rng.integers(self.gpus_min, self.gpus_max + 1, size=n)
        memory_coin = rng.random(n)
        partition_index = (
            rng.choice(len(self.partitions), size=n, p=list(self.partition_weights))
            if self.partitions
            else np.zeros(n, dtype=np.int64)
        )
        jobs = []
        for i, job in enumerate(trace.jobs):
            width = job.requested_processors
            if self.max_processors is not None:
                width = min(width, self.max_processors)
            gpus = int(gpu_counts[i]) if gpu_coin[i] < self.gpu_fraction else 0
            heavy = self.memory_fraction > 0 and memory_coin[i] < self.memory_fraction
            memory = job.requested_memory
            if heavy:
                memory = self.memory_heavy
            elif self.memory_fraction > 0 and self.memory_light > 0:
                memory = self.memory_light
            partition = job.partition
            if self.partitions:
                slot = int(partition_index[i])
                partition = self.partitions[slot]
                if self.partition_max_processors:
                    width = min(width, self.partition_max_processors[slot])
            if (gpus > 0 or heavy) and self.constrained_max_processors is not None:
                width = min(width, self.constrained_max_processors)
            jobs.append(
                replace(
                    job,
                    requested_processors=max(width, 1),
                    requested_gpus=gpus,
                    requested_memory=memory,
                    partition=partition,
                )
            )
        return self._rename(trace, jobs)


@dataclass(frozen=True, slots=True)
class Compose(TraceTransform):
    """Apply ``transforms`` left to right (order matters)."""

    transforms: tuple[TraceTransform, ...]

    @property
    def tag(self) -> str:
        return "+".join(t.tag for t in self.transforms)

    def describe(self) -> Dict[str, object]:
        return {"kind": "Compose", "transforms": [t.describe() for t in self.transforms]}

    def apply(self, trace: Trace, rng: np.random.Generator) -> Trace:
        # One child generator per stage: inserting or removing a stage changes
        # only the inputs of the stages after it, never their random draws.
        rngs = spawn_rngs(rng, len(self.transforms))
        for transform, child in zip(self.transforms, rngs):
            trace = transform.apply(trace, child)
        return trace


def apply_transforms(
    trace: Trace, transforms: Sequence[TraceTransform], seed: SeedLike
) -> Trace:
    """Apply ``transforms`` to ``trace`` left to right, seeded by ``seed``.

    Seeding follows the workload-generator rule (see ``repro.utils.rng``):
    ``seed`` may be an int, ``None``, a ``SeedSequence``, or an existing
    ``Generator`` (whose state is consumed).  Each transform receives its own
    child generator in list order.
    """
    rngs = spawn_rngs(seed, len(transforms))
    for transform, rng in zip(transforms, rngs):
        trace = transform.apply(trace, rng)
    return trace
