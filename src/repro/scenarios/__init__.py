"""Scenario subsystem: composable workload/cluster scenarios + evaluation.

Three layers (see ``docs/scenarios.md``):

* :mod:`repro.scenarios.transforms` -- seed-deterministic ``Trace -> Trace``
  perturbations (load scaling, burst injection, thinning, estimate
  corruption, size shaping) that compose in order;
* :mod:`repro.scenarios.registry` -- named scenario specs (base trace x
  transforms x cluster downtime) with the built-in ``core`` robustness suite;
* :mod:`repro.scenarios.evaluate` / :mod:`repro.scenarios.pool` -- the
  multi-policy evaluation harness fanning (scenario x policy) cells across a
  shared-memory process worker pool into one deterministic JSON report.
"""

from repro.scenarios.transforms import (
    ArrivalThin,
    BurstInject,
    Compose,
    EstimateInflate,
    EstimateNoise,
    LoadScale,
    SizeFilter,
    SizeRescale,
    TraceTransform,
    apply_transforms,
)
from repro.scenarios.registry import (
    CORE_SUITE,
    BuiltScenario,
    ClusterSpec,
    DowntimeSpec,
    ScenarioSpec,
    get_scenario,
    register_scenario,
    scenario_names,
    suite_scenarios,
)
from repro.scenarios.evaluate import (
    DEFAULT_POLICIES,
    HEURISTIC_POLICIES,
    METRIC_FIELDS,
    AgentBundle,
    evaluate_cell,
    evaluate_suite,
    report_to_json,
    train_evaluation_agent,
)

__all__ = [
    "TraceTransform",
    "LoadScale",
    "BurstInject",
    "ArrivalThin",
    "EstimateNoise",
    "EstimateInflate",
    "SizeFilter",
    "SizeRescale",
    "Compose",
    "apply_transforms",
    "ScenarioSpec",
    "ClusterSpec",
    "DowntimeSpec",
    "BuiltScenario",
    "register_scenario",
    "get_scenario",
    "scenario_names",
    "suite_scenarios",
    "CORE_SUITE",
    "METRIC_FIELDS",
    "AgentBundle",
    "DEFAULT_POLICIES",
    "HEURISTIC_POLICIES",
    "evaluate_cell",
    "evaluate_suite",
    "report_to_json",
    "train_evaluation_agent",
]
