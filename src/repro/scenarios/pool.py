"""Process worker pool for scenario evaluation cells.

Fans (scenario x policy) cells across persistent worker processes, reusing
the fixed-layout shared-memory rings of :mod:`repro.rl.ipc` (the lane pool's
IPC substrate): the parent pushes a command frame naming a cell index, the
worker evaluates the cell (building and caching the scenario's trace and
evaluation sequences on first touch) and pushes back a result frame holding
the aggregate metrics vector -- no pickling after spawn, and a dead worker is
noticed by liveness polling instead of a hang.

Scheduling is dynamic (a worker gets its next cell when it returns one), so a
slow cell -- conservative backfilling on a contended scenario -- does not
stall the other workers.  Determinism is unaffected: results are keyed by
cell, every cell's floats are a pure function of ``(suite, scale, seed)``,
and the report assembly orders by scenario/policy, never by completion.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.config import ExperimentScale
from repro.rl.ipc import Field, FrameLayout, RingTimeout, ShmRing
from repro.scenarios.evaluate import (
    METRIC_FIELDS,
    AgentBundle,
    evaluate_cell,
    scenario_seed,
    scenario_sequences,
)
from repro.scenarios.registry import ScenarioSpec

__all__ = ["ScenarioWorkerPool"]

_KIND_CELL = 0
_KIND_SHUTDOWN = 1

_ERROR_BYTES = 2048

_COMMAND_LAYOUT = FrameLayout([
    Field("kind", (1,), "int64"),
    Field("cell", (1,), "int64"),
])
_RESULT_LAYOUT = FrameLayout([
    Field("cell", (1,), "int64"),
    Field("status", (1,), "int64"),
    Field("metrics", (len(METRIC_FIELDS),), "float64"),
    Field("wall", (1,), "float64"),
    Field("error", (_ERROR_BYTES,), "uint8"),
])

#: Commands a worker may hold at once (current cell + one queued behind it).
_RING_CAPACITY = 2


def _encode_error(message: str) -> np.ndarray:
    raw = message.encode("utf-8", errors="replace")[: _ERROR_BYTES - 1]
    buffer = np.zeros(_ERROR_BYTES, dtype=np.uint8)
    buffer[: len(raw)] = np.frombuffer(raw, dtype=np.uint8)
    return buffer


def _decode_error(buffer: np.ndarray) -> str:
    raw = bytes(buffer.tobytes())
    return raw.split(b"\x00", 1)[0].decode("utf-8", errors="replace")


def _worker_main(
    command_ring: ShmRing,
    result_ring: ShmRing,
    scenarios: Sequence[ScenarioSpec],
    policies: Sequence[str],
    scale: ExperimentScale,
    seed: int,
    agent_bundle: Optional[AgentBundle],
) -> None:
    built_cache: Dict[int, object] = {}
    sequence_cache: Dict[int, list] = {}
    try:
        while True:
            frame = command_ring.pop()
            if int(frame["kind"][0]) == _KIND_SHUTDOWN:
                break
            cell = int(frame["cell"][0])
            scenario_index, policy_index = divmod(cell, len(policies))
            started = time.perf_counter()
            try:
                if scenario_index not in built_cache:
                    spec = scenarios[scenario_index]
                    built = spec.build(
                        seed=scenario_seed(seed, spec.name), num_jobs=scale.trace_jobs
                    )
                    built_cache[scenario_index] = built
                    sequence_cache[scenario_index] = scenario_sequences(built, scale, seed)
                row = evaluate_cell(
                    built_cache[scenario_index],
                    policies[policy_index],
                    scale,
                    seed,
                    agent_bundle,
                    sequences=sequence_cache[scenario_index],
                )
                result_ring.push({
                    "cell": cell,
                    "status": 0,
                    "metrics": np.array([row[field] for field in METRIC_FIELDS]),
                    "wall": time.perf_counter() - started,
                    "error": np.zeros(_ERROR_BYTES, dtype=np.uint8),
                })
            except Exception:  # noqa: BLE001 - forwarded to the parent verbatim
                result_ring.push({
                    "cell": cell,
                    "status": 1,
                    "metrics": np.zeros(len(METRIC_FIELDS)),
                    "wall": time.perf_counter() - started,
                    "error": _encode_error(traceback.format_exc()),
                })
    finally:
        command_ring.detach()
        result_ring.detach()


class ScenarioWorkerPool:
    """Dispatches evaluation cells to persistent worker processes."""

    def __init__(
        self,
        scenarios: Sequence[ScenarioSpec],
        policies: Sequence[str],
        scale: ExperimentScale,
        seed: int,
        agent_bundle: Optional[AgentBundle] = None,
        num_workers: int = 2,
        start_method: str | None = None,
    ):
        if num_workers <= 0:
            raise ValueError("ScenarioWorkerPool needs at least one worker")
        self.scenarios = list(scenarios)
        self.policies = list(policies)
        self.scale = scale
        self.seed = int(seed)
        self.num_cells = len(self.scenarios) * len(self.policies)
        self.num_workers = min(int(num_workers), max(self.num_cells, 1))
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        ctx = multiprocessing.get_context(start_method)
        self._command_rings: List[ShmRing] = []
        self._result_rings: List[ShmRing] = []
        self._workers: List[multiprocessing.Process] = []
        self._closed = False
        try:
            for _ in range(self.num_workers):
                command = ShmRing(_COMMAND_LAYOUT, _RING_CAPACITY, ctx)
                result = ShmRing(_RESULT_LAYOUT, _RING_CAPACITY, ctx)
                self._command_rings.append(command)
                self._result_rings.append(result)
                process = ctx.Process(
                    target=_worker_main,
                    args=(command, result, self.scenarios, self.policies,
                          self.scale, self.seed, agent_bundle),
                    daemon=True,
                )
                process.start()
                self._workers.append(process)
        except Exception:
            self.close()
            raise

    # -- dispatch ------------------------------------------------------------
    def _check_alive(self) -> None:
        for index, worker in enumerate(self._workers):
            if not worker.is_alive():
                raise RuntimeError(
                    f"scenario worker {index} died unexpectedly "
                    f"(exitcode {worker.exitcode})"
                )

    def run(self) -> Tuple[Dict[Tuple[str, str], Dict[str, float]], Dict[Tuple[str, str], float]]:
        """Evaluate every cell; returns ``(metrics by key, wall seconds by key)``."""
        if self._closed:
            raise RuntimeError("ScenarioWorkerPool is closed")
        pending = deque(range(self.num_cells))
        outstanding = [0] * self.num_workers
        for worker_index in range(self.num_workers):
            while pending and outstanding[worker_index] < _RING_CAPACITY:
                self._issue(worker_index, pending.popleft())
                outstanding[worker_index] += 1
        cells: Dict[Tuple[str, str], Dict[str, float]] = {}
        walls: Dict[Tuple[str, str], float] = {}
        received = 0
        while received < self.num_cells:
            progress = False
            for worker_index, ring in enumerate(self._result_rings):
                try:
                    frame = ring.pop(timeout=0)
                except RingTimeout:
                    continue
                progress = True
                received += 1
                outstanding[worker_index] -= 1
                if pending:
                    self._issue(worker_index, pending.popleft())
                    outstanding[worker_index] += 1
                cell = int(frame["cell"][0])
                key = self._cell_key(cell)
                if int(frame["status"][0]) != 0:
                    raise RuntimeError(
                        f"evaluation of cell {key[0]!r} x {key[1]!r} failed in "
                        f"worker {worker_index}:\n{_decode_error(frame['error'])}"
                    )
                cells[key] = {
                    field: float(value)
                    for field, value in zip(METRIC_FIELDS, frame["metrics"])
                }
                walls[key] = float(frame["wall"][0])
            if not progress:
                self._check_alive()
                time.sleep(0.005)
        return cells, walls

    def _cell_key(self, cell: int) -> Tuple[str, str]:
        scenario_index, policy_index = divmod(cell, len(self.policies))
        return self.scenarios[scenario_index].name, self.policies[policy_index]

    def _issue(self, worker_index: int, cell: int) -> None:
        self._command_rings[worker_index].push({"kind": _KIND_CELL, "cell": cell})

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for ring, worker in zip(self._command_rings, self._workers):
            if worker.is_alive():
                try:
                    ring.push({"kind": _KIND_SHUTDOWN, "cell": -1}, timeout=1.0)
                except Exception:  # noqa: BLE001 - shutdown is best-effort
                    pass
        for worker in self._workers:
            worker.join(timeout=5.0)
            if worker.is_alive():  # pragma: no cover - stuck worker
                worker.terminate()
                worker.join(timeout=1.0)
        for ring in (*self._command_rings, *self._result_rings):
            ring.close()

    def __enter__(self) -> "ScenarioWorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ScenarioWorkerPool(cells={self.num_cells}, workers={self.num_workers}, "
            f"closed={self._closed})"
        )
