"""Named, parameterized workload/cluster scenarios.

A :class:`ScenarioSpec` packages everything one evaluation cell needs to
rebuild its workload deterministically: a **base trace** (any name accepted
by :func:`repro.workloads.archive.load_trace` -- SWF-backed or synthetic), a
chain of :class:`~repro.scenarios.transforms.TraceTransform` perturbations,
and a :class:`ClusterSpec` of scheduled node-downtime windows.  Building a
scenario is a pure function of ``(spec, seed, num_jobs)``:

    built = get_scenario("load-surge-2x").build(seed=0, num_jobs=4000)
    built.trace                  # the transformed Trace
    built.capacity_schedule(span)  # DowntimeWindow list for a sequence span

Downtime windows are expressed as **fractions of the evaluated sequence's
submission span** (scale-free, so the same scenario works at smoke and paper
scales) or as absolute seconds; they are resolved into concrete
:class:`~repro.cluster.machine.DowntimeWindow` events per job sequence by the
evaluation harness.

The module-level registry maps names to specs; :data:`CORE_SUITE` is the
built-in robustness suite run by ``scripts/evaluate_scenarios.py`` and the CI
``scenario-matrix`` job.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.cluster.machine import DowntimeWindow
from repro.scenarios.transforms import (
    ArrivalThin,
    BurstInject,
    EstimateInflate,
    EstimateNoise,
    LoadScale,
    SizeRescale,
    TraceTransform,
    apply_transforms,
)
from repro.utils.rng import SeedLike, derive_seed
from repro.workloads.archive import load_trace
from repro.workloads.job import Trace

__all__ = [
    "DowntimeSpec",
    "ClusterSpec",
    "ScenarioSpec",
    "BuiltScenario",
    "register_scenario",
    "get_scenario",
    "scenario_names",
    "suite_scenarios",
    "CORE_SUITE",
]


@dataclass(frozen=True, slots=True)
class DowntimeSpec:
    """One scheduled drain, in absolute seconds or sequence-span fractions.

    Exactly one of ``(start, duration)`` / ``(start_fraction,
    duration_fraction)`` must be given.  ``processors`` takes an absolute
    count, ``fraction_of_machine`` a fraction of the cluster size; exactly one
    of those two as well.
    """

    start: float | None = None
    duration: float | None = None
    start_fraction: float | None = None
    duration_fraction: float | None = None
    processors: int | None = None
    fraction_of_machine: float | None = None

    def __post_init__(self) -> None:
        absolute = self.start is not None or self.duration is not None
        fractional = self.start_fraction is not None or self.duration_fraction is not None
        if absolute == fractional:
            raise ValueError(
                "specify either (start, duration) seconds or "
                "(start_fraction, duration_fraction), not both or neither"
            )
        if absolute and (self.start is None or self.duration is None):
            raise ValueError("absolute downtime needs both start and duration")
        if fractional and (self.start_fraction is None or self.duration_fraction is None):
            raise ValueError("fractional downtime needs both start_fraction and duration_fraction")
        if (self.processors is None) == (self.fraction_of_machine is None):
            raise ValueError("specify exactly one of processors / fraction_of_machine")
        if self.fraction_of_machine is not None and not 0.0 < self.fraction_of_machine <= 1.0:
            raise ValueError("fraction_of_machine must be in (0, 1]")
        if self.processors is not None and self.processors <= 0:
            raise ValueError("processors must be positive")

    def resolve(self, span_seconds: float, num_processors: int) -> DowntimeWindow:
        """Concrete window for a sequence spanning ``span_seconds`` of arrivals."""
        if self.start is not None:
            start, duration = float(self.start), float(self.duration)
        else:
            start = float(self.start_fraction) * span_seconds
            duration = float(self.duration_fraction) * span_seconds
        if self.processors is not None:
            processors = int(self.processors)
        else:
            processors = max(1, int(round(self.fraction_of_machine * num_processors)))
        duration = max(duration, 1.0)
        return DowntimeWindow(start=start, end=start + duration, processors=processors)

    def describe(self) -> Dict[str, object]:
        return {k: v for k, v in (
            ("start", self.start),
            ("duration", self.duration),
            ("start_fraction", self.start_fraction),
            ("duration_fraction", self.duration_fraction),
            ("processors", self.processors),
            ("fraction_of_machine", self.fraction_of_machine),
        ) if v is not None}


@dataclass(frozen=True, slots=True)
class ClusterSpec:
    """Cluster-side disturbances of a scenario (scheduled downtime)."""

    downtime: Tuple[DowntimeSpec, ...] = ()

    @property
    def has_downtime(self) -> bool:
        return bool(self.downtime)

    def resolve(self, span_seconds: float, num_processors: int) -> List[DowntimeWindow]:
        return [spec.resolve(span_seconds, num_processors) for spec in self.downtime]

    def describe(self) -> List[Dict[str, object]]:
        return [spec.describe() for spec in self.downtime]


@dataclass(frozen=True, slots=True)
class BuiltScenario:
    """A scenario materialized for one seed: trace + resolvable downtime."""

    name: str
    trace: Trace
    cluster: ClusterSpec
    description: str = ""

    @property
    def has_downtime(self) -> bool:
        return self.cluster.has_downtime

    def capacity_schedule(self, span_seconds: float) -> List[DowntimeWindow] | None:
        """Downtime windows for a job sequence spanning ``span_seconds``."""
        if not self.cluster.has_downtime:
            return None
        return self.cluster.resolve(span_seconds, self.trace.num_processors)


@dataclass(frozen=True, slots=True)
class ScenarioSpec:
    """A named scenario: base trace x transform chain x cluster disturbances."""

    name: str
    base_trace: str
    description: str = ""
    transforms: Tuple[TraceTransform, ...] = ()
    cluster: ClusterSpec = field(default_factory=ClusterSpec)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be non-empty")

    def build(self, seed: SeedLike = 0, num_jobs: int = 4_000) -> BuiltScenario:
        """Materialize the scenario's trace for ``seed``.

        ``seed`` follows the workload-generator seeding rule (int / ``None``
        / ``SeedSequence`` / ``Generator``); the base trace and the transform
        chain receive independent derived streams, so adding a transform
        never changes the base trace's content.
        """
        import numpy as np

        if isinstance(seed, np.random.Generator):
            seed = int(seed.integers(0, 2**63 - 1))
        base_seed = derive_seed(seed, 0)
        transform_seed = derive_seed(seed, 1)
        trace = load_trace(self.base_trace, num_jobs=num_jobs, seed=base_seed)
        if self.transforms:
            trace = apply_transforms(trace, self.transforms, transform_seed)
        return BuiltScenario(
            name=self.name, trace=trace, cluster=self.cluster, description=self.description
        )

    def describe(self) -> Dict[str, object]:
        """JSON-serializable provenance for the evaluation report."""
        return {
            "base_trace": self.base_trace,
            "description": self.description,
            "transforms": [t.describe() for t in self.transforms],
            "downtime": self.cluster.describe(),
        }


# -- registry -----------------------------------------------------------------

_REGISTRY: Dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec, overwrite: bool = False) -> ScenarioSpec:
    """Add ``spec`` to the global registry (returns it for chaining)."""
    if spec.name in _REGISTRY and not overwrite:
        raise ValueError(
            f"scenario {spec.name!r} is already registered (pass overwrite=True to replace)"
        )
    _REGISTRY[spec.name] = spec
    return spec


def get_scenario(name: str) -> ScenarioSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {', '.join(scenario_names())}"
        ) from None


def scenario_names() -> List[str]:
    """Registered scenario names, in registration order."""
    return list(_REGISTRY)


def suite_scenarios(suite: str | Sequence[str]) -> List[ScenarioSpec]:
    """Resolve a suite name (``"core"``) or an explicit name list to specs."""
    if isinstance(suite, str):
        if suite == "core":
            names: Sequence[str] = CORE_SUITE
        else:
            names = [part for part in suite.split(",") if part]
    else:
        names = suite
    if not names:
        raise ValueError("scenario suite is empty")
    return [get_scenario(name) for name in names]


# -- built-in core suite -------------------------------------------------------
# The robustness suite: two clean baselines, load/burst stress, estimate
# corruption, workload-shape shifts, and two capacity-loss scenarios.

register_scenario(ScenarioSpec(
    name="baseline-sdsc",
    base_trace="SDSC-SP2",
    description="Clean SDSC-SP2-like workload; the control cell.",
))
register_scenario(ScenarioSpec(
    name="baseline-lublin",
    base_trace="Lublin-1",
    description="Clean Lublin-1 synthetic workload (no user estimates).",
))
register_scenario(ScenarioSpec(
    name="load-surge-1.5x",
    base_trace="SDSC-SP2",
    description="SDSC-SP2 arrivals compressed 1.5x: sustained load surge.",
    transforms=(LoadScale(1.5),),
))
register_scenario(ScenarioSpec(
    name="load-surge-2x",
    base_trace="Lublin-1",
    description="Lublin-1 arrivals compressed 2x: heavy overload.",
    transforms=(LoadScale(2.0),),
))
register_scenario(ScenarioSpec(
    name="burst-storm",
    base_trace="SDSC-SP2",
    description="Submission storms: runs of 24 jobs collapse into 2-minute bursts.",
    transforms=(BurstInject(num_bursts=6, burst_length=24, span_seconds=120.0),),
))
register_scenario(ScenarioSpec(
    name="estimate-noise",
    base_trace="SDSC-SP2",
    description="Log-normal noise (sigma=1.0) on user wall-time estimates, under-estimates allowed.",
    transforms=(EstimateNoise(sigma=1.0),),
))
register_scenario(ScenarioSpec(
    name="estimate-inflate-3x",
    base_trace="HPC2N",
    description="Every wall-time estimate inflated 3x: systematic over-requesting.",
    transforms=(EstimateInflate(3.0),),
))
register_scenario(ScenarioSpec(
    name="thin-wide",
    base_trace="Lublin-2",
    description="40% of jobs dropped, survivors 1.5x wider: sparse wide-job mix.",
    transforms=(ArrivalThin(keep_fraction=0.6), SizeRescale(1.5)),
))
register_scenario(ScenarioSpec(
    name="downtime-half",
    base_trace="SDSC-SP2",
    description="Half the machine drains for the middle 30% of the sequence.",
    cluster=ClusterSpec(downtime=(
        DowntimeSpec(start_fraction=0.35, duration_fraction=0.30, fraction_of_machine=0.5),
    )),
))
register_scenario(ScenarioSpec(
    name="rolling-maintenance",
    base_trace="Lublin-1",
    description="Two staggered 25%-capacity maintenance drains under a 1.25x load surge.",
    transforms=(LoadScale(1.25),),
    cluster=ClusterSpec(downtime=(
        DowntimeSpec(start_fraction=0.20, duration_fraction=0.15, fraction_of_machine=0.25),
        DowntimeSpec(start_fraction=0.55, duration_fraction=0.15, fraction_of_machine=0.25),
    )),
))

#: The built-in robustness suite (ordered); >= 8 scenarios by construction.
CORE_SUITE: Tuple[str, ...] = (
    "baseline-sdsc",
    "baseline-lublin",
    "load-surge-1.5x",
    "load-surge-2x",
    "burst-storm",
    "estimate-noise",
    "estimate-inflate-3x",
    "thin-wide",
    "downtime-half",
    "rolling-maintenance",
)
