"""Named, parameterized workload/cluster scenarios.

A :class:`ScenarioSpec` packages everything one evaluation cell needs to
rebuild its workload deterministically: a **base trace** (any name accepted
by :func:`repro.workloads.archive.load_trace` -- SWF-backed or synthetic), a
chain of :class:`~repro.scenarios.transforms.TraceTransform` perturbations,
and a :class:`ClusterSpec` of scheduled node-downtime windows.  Building a
scenario is a pure function of ``(spec, seed, num_jobs)``:

    built = get_scenario("load-surge-2x").build(seed=0, num_jobs=4000)
    built.trace                  # the transformed Trace
    built.capacity_schedule(span)  # DowntimeWindow list for a sequence span

Downtime windows are expressed as **fractions of the evaluated sequence's
submission span** (scale-free, so the same scenario works at smoke and paper
scales) or as absolute seconds; they are resolved into concrete
:class:`~repro.cluster.machine.DowntimeWindow` events per job sequence by the
evaluation harness.

The module-level registry maps names to specs; :data:`CORE_SUITE` is the
built-in robustness suite run by ``scripts/evaluate_scenarios.py`` and the CI
``scenario-matrix`` job.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.cluster.allocator import ALLOCATOR_POLICIES
from repro.cluster.machine import DowntimeWindow
from repro.cluster.resources import ClusterTopology, NodeGroup
from repro.faults.plan import NodeFailure, RestartPolicy, as_restart_policy
from repro.scenarios.transforms import (
    ArrivalThin,
    AssignResources,
    BurstInject,
    EstimateInflate,
    EstimateNoise,
    LoadScale,
    SizeRescale,
    TraceTransform,
    apply_transforms,
)
from repro.utils.rng import SeedLike, derive_seed
from repro.workloads.archive import load_trace
from repro.workloads.job import Trace

__all__ = [
    "DowntimeSpec",
    "FailureSpec",
    "NodeGroupSpec",
    "ClusterSpec",
    "ScenarioSpec",
    "BuiltScenario",
    "register_scenario",
    "get_scenario",
    "scenario_names",
    "suite_scenarios",
    "CORE_SUITE",
    "FAILURE_SUITE",
    "HETERO_SUITE",
]


@dataclass(frozen=True, slots=True)
class DowntimeSpec:
    """One scheduled drain, in absolute seconds or sequence-span fractions.

    Exactly one of ``(start, duration)`` / ``(start_fraction,
    duration_fraction)`` must be given.  ``processors`` takes an absolute
    count, ``fraction_of_machine`` a fraction of the cluster size; exactly one
    of those two as well.

    ``group`` tags the drain to one named node group on heterogeneous
    scenarios (see :class:`NodeGroupSpec`); leave it ``None`` on homogeneous
    clusters.  Multi-group topologies require the tag -- the machine rejects
    untagged windows there.
    """

    start: float | None = None
    duration: float | None = None
    start_fraction: float | None = None
    duration_fraction: float | None = None
    processors: int | None = None
    fraction_of_machine: float | None = None
    group: str | None = None

    def __post_init__(self) -> None:
        absolute = self.start is not None or self.duration is not None
        fractional = self.start_fraction is not None or self.duration_fraction is not None
        if absolute == fractional:
            raise ValueError(
                "specify either (start, duration) seconds or "
                "(start_fraction, duration_fraction), not both or neither"
            )
        if absolute and (self.start is None or self.duration is None):
            raise ValueError("absolute downtime needs both start and duration")
        if fractional and (self.start_fraction is None or self.duration_fraction is None):
            raise ValueError("fractional downtime needs both start_fraction and duration_fraction")
        if (self.processors is None) == (self.fraction_of_machine is None):
            raise ValueError("specify exactly one of processors / fraction_of_machine")
        if self.fraction_of_machine is not None and not 0.0 < self.fraction_of_machine <= 1.0:
            raise ValueError("fraction_of_machine must be in (0, 1]")
        if self.processors is not None and self.processors <= 0:
            raise ValueError("processors must be positive")

    def resolve(self, span_seconds: float, num_processors: int) -> DowntimeWindow:
        """Concrete window for a sequence spanning ``span_seconds`` of arrivals."""
        if self.start is not None:
            start, duration = float(self.start), float(self.duration)
        else:
            start = float(self.start_fraction) * span_seconds
            duration = float(self.duration_fraction) * span_seconds
        if self.processors is not None:
            processors = int(self.processors)
        else:
            processors = max(1, int(round(self.fraction_of_machine * num_processors)))
        duration = max(duration, 1.0)
        return DowntimeWindow(
            start=start, end=start + duration, processors=processors, group=self.group
        )

    def describe(self) -> Dict[str, object]:
        return {k: v for k, v in (
            ("start", self.start),
            ("duration", self.duration),
            ("start_fraction", self.start_fraction),
            ("duration_fraction", self.duration_fraction),
            ("processors", self.processors),
            ("fraction_of_machine", self.fraction_of_machine),
            ("group", self.group),
        ) if v is not None}


@dataclass(frozen=True, slots=True)
class FailureSpec:
    """One node failure, in absolute seconds or sequence-span fractions.

    Exactly one of ``at`` (seconds) / ``at_fraction`` (of the sequence's
    submission span); exactly one of ``processors`` /
    ``fraction_of_machine``; exactly one of ``repair`` (seconds) /
    ``repair_fraction`` (of the span).  Resolves to a
    :class:`~repro.faults.NodeFailure` -- a *preempting* event, unlike the
    graceful :class:`DowntimeSpec`.
    """

    at: float | None = None
    at_fraction: float | None = None
    processors: int | None = None
    fraction_of_machine: float | None = None
    repair: float | None = None
    repair_fraction: float | None = None

    def __post_init__(self) -> None:
        if (self.at is None) == (self.at_fraction is None):
            raise ValueError("specify exactly one of at / at_fraction")
        if (self.processors is None) == (self.fraction_of_machine is None):
            raise ValueError("specify exactly one of processors / fraction_of_machine")
        if (self.repair is None) == (self.repair_fraction is None):
            raise ValueError("specify exactly one of repair / repair_fraction")
        if self.fraction_of_machine is not None and not 0.0 < self.fraction_of_machine <= 1.0:
            raise ValueError("fraction_of_machine must be in (0, 1]")
        if self.processors is not None and self.processors <= 0:
            raise ValueError("processors must be positive")

    def resolve(self, span_seconds: float, num_processors: int) -> NodeFailure:
        """Concrete failure for a sequence spanning ``span_seconds`` of arrivals."""
        time = float(self.at) if self.at is not None else float(self.at_fraction) * span_seconds
        if self.processors is not None:
            processors = int(self.processors)
        else:
            processors = max(1, int(round(self.fraction_of_machine * num_processors)))
        repair = (
            float(self.repair)
            if self.repair is not None
            else float(self.repair_fraction) * span_seconds
        )
        return NodeFailure(
            time=time, processors=processors, repair_duration=max(repair, 1.0)
        )

    def describe(self) -> Dict[str, object]:
        return {k: v for k, v in (
            ("at", self.at),
            ("at_fraction", self.at_fraction),
            ("processors", self.processors),
            ("fraction_of_machine", self.fraction_of_machine),
            ("repair", self.repair),
            ("repair_fraction", self.repair_fraction),
        ) if v is not None}


@dataclass(frozen=True, slots=True)
class NodeGroupSpec:
    """One named node group of a heterogeneous cluster scenario.

    ``cpus`` is an absolute processor count -- hetero scenarios pin a specific
    base trace, so the group sizes are written against that trace's machine
    and :meth:`ClusterSpec.topology` checks they sum exactly to its
    processors.  ``memory`` is the group's aggregate memory (same per-processor
    units the trace's jobs request in), ``gpus`` its aggregate GPU count, and
    ``partition`` an optional SWF partition id the group claims (jobs tagged
    with that partition are pinned to claiming groups).
    """

    name: str
    cpus: int
    memory: int = 0
    gpus: int = 0
    partition: int = -1

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("node group name must be non-empty")
        if self.cpus <= 0:
            raise ValueError("node group cpus must be positive")
        if self.memory < 0 or self.gpus < 0:
            raise ValueError("node group memory/gpus must be non-negative")

    def resolve(self) -> NodeGroup:
        return NodeGroup(
            name=self.name,
            cpus=self.cpus,
            memory=self.memory,
            gpus=self.gpus,
            partition=self.partition,
        )

    def describe(self) -> Dict[str, object]:
        description: Dict[str, object] = {"name": self.name, "cpus": self.cpus}
        if self.memory:
            description["memory"] = self.memory
        if self.gpus:
            description["gpus"] = self.gpus
        if self.partition >= 0:
            description["partition"] = self.partition
        return description


@dataclass(frozen=True, slots=True)
class ClusterSpec:
    """Cluster-side shape and disturbances: node groups, downtime, failures.

    ``downtime`` drains gracefully (never preempts); ``failures`` kill and
    requeue running jobs through the ``restart`` policy (``"requeue"`` or
    ``"checkpoint"``, see :class:`repro.faults.RestartPolicy`).

    ``node_groups`` declares a heterogeneous topology (see
    :class:`NodeGroupSpec` and docs/cluster.md); ``allocator`` picks the
    placement policy used to map jobs onto groups.  An empty ``node_groups``
    keeps the scenario on the homogeneous scalar path bit-for-bit.  Node
    failures and node groups are mutually exclusive -- hetero outages are
    modeled as group-tagged drains instead.
    """

    downtime: Tuple[DowntimeSpec, ...] = ()
    failures: Tuple[FailureSpec, ...] = ()
    restart: str = "requeue"
    node_groups: Tuple[NodeGroupSpec, ...] = ()
    allocator: str = "first_fit"

    def __post_init__(self) -> None:
        as_restart_policy(self.restart)  # validates the mode name
        if self.allocator not in ALLOCATOR_POLICIES:
            raise ValueError(
                f"unknown allocator {self.allocator!r}; choose from {ALLOCATOR_POLICIES}"
            )
        if self.node_groups and self.failures:
            raise ValueError(
                "node failures are not supported on heterogeneous scenarios; "
                "use group-tagged DowntimeSpec drains instead"
            )

    @property
    def has_downtime(self) -> bool:
        return bool(self.downtime)

    @property
    def has_failures(self) -> bool:
        return bool(self.failures)

    @property
    def has_node_groups(self) -> bool:
        return bool(self.node_groups)

    def topology(self, num_processors: int) -> ClusterTopology | None:
        """The resolved :class:`ClusterTopology`, or ``None`` when homogeneous."""
        if not self.node_groups:
            return None
        topology = ClusterTopology(tuple(spec.resolve() for spec in self.node_groups))
        if topology.total_cpus != num_processors:
            raise ValueError(
                f"node groups sum to {topology.total_cpus} cpus but the trace "
                f"machine has {num_processors}"
            )
        return topology

    def resolve(self, span_seconds: float, num_processors: int) -> List[DowntimeWindow]:
        return [spec.resolve(span_seconds, num_processors) for spec in self.downtime]

    def resolve_failures(self, span_seconds: float, num_processors: int) -> List[NodeFailure]:
        return [spec.resolve(span_seconds, num_processors) for spec in self.failures]

    @property
    def restart_policy(self) -> RestartPolicy:
        return as_restart_policy(self.restart)

    def describe(self) -> List[Dict[str, object]]:
        return [spec.describe() for spec in self.downtime]

    def describe_failures(self) -> List[Dict[str, object]]:
        return [spec.describe() for spec in self.failures]

    def describe_node_groups(self) -> List[Dict[str, object]]:
        return [spec.describe() for spec in self.node_groups]


@dataclass(frozen=True, slots=True)
class BuiltScenario:
    """A scenario materialized for one seed: trace + resolvable downtime."""

    name: str
    trace: Trace
    cluster: ClusterSpec
    description: str = ""

    @property
    def has_downtime(self) -> bool:
        return self.cluster.has_downtime

    @property
    def has_failures(self) -> bool:
        return self.cluster.has_failures

    def capacity_schedule(self, span_seconds: float) -> List[DowntimeWindow] | None:
        """Downtime windows for a job sequence spanning ``span_seconds``."""
        if not self.cluster.has_downtime:
            return None
        return self.cluster.resolve(span_seconds, self.trace.num_processors)

    def node_failures(self, span_seconds: float) -> List[NodeFailure] | None:
        """Node failures for a job sequence spanning ``span_seconds``."""
        if not self.cluster.has_failures:
            return None
        return self.cluster.resolve_failures(span_seconds, self.trace.num_processors)

    @property
    def restart_policy(self) -> RestartPolicy:
        return self.cluster.restart_policy

    @property
    def topology(self) -> ClusterTopology | None:
        """Resolved heterogeneous topology, ``None`` for homogeneous scenarios."""
        return self.cluster.topology(self.trace.num_processors)

    @property
    def allocator(self) -> str:
        return self.cluster.allocator


@dataclass(frozen=True, slots=True)
class ScenarioSpec:
    """A named scenario: base trace x transform chain x cluster disturbances."""

    name: str
    base_trace: str
    description: str = ""
    transforms: Tuple[TraceTransform, ...] = ()
    cluster: ClusterSpec = field(default_factory=ClusterSpec)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be non-empty")

    def build(self, seed: SeedLike = 0, num_jobs: int = 4_000) -> BuiltScenario:
        """Materialize the scenario's trace for ``seed``.

        ``seed`` follows the workload-generator seeding rule (int / ``None``
        / ``SeedSequence`` / ``Generator``); the base trace and the transform
        chain receive independent derived streams, so adding a transform
        never changes the base trace's content.
        """
        import numpy as np

        if isinstance(seed, np.random.Generator):
            seed = int(seed.integers(0, 2**63 - 1))
        base_seed = derive_seed(seed, 0)
        transform_seed = derive_seed(seed, 1)
        trace = load_trace(self.base_trace, num_jobs=num_jobs, seed=base_seed)
        if self.transforms:
            trace = apply_transforms(trace, self.transforms, transform_seed)
        return BuiltScenario(
            name=self.name, trace=trace, cluster=self.cluster, description=self.description
        )

    def describe(self) -> Dict[str, object]:
        """JSON-serializable provenance for the evaluation report."""
        description = {
            "base_trace": self.base_trace,
            "description": self.description,
            "transforms": [t.describe() for t in self.transforms],
            "downtime": self.cluster.describe(),
        }
        if self.cluster.has_failures:
            description["failures"] = self.cluster.describe_failures()
            description["restart"] = self.cluster.restart
        if self.cluster.has_node_groups:
            description["node_groups"] = self.cluster.describe_node_groups()
            description["allocator"] = self.cluster.allocator
        return description


# -- registry -----------------------------------------------------------------

_REGISTRY: Dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec, overwrite: bool = False) -> ScenarioSpec:
    """Add ``spec`` to the global registry (returns it for chaining)."""
    if spec.name in _REGISTRY and not overwrite:
        raise ValueError(
            f"scenario {spec.name!r} is already registered (pass overwrite=True to replace)"
        )
    _REGISTRY[spec.name] = spec
    return spec


def get_scenario(name: str) -> ScenarioSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {', '.join(scenario_names())}"
        ) from None


def scenario_names() -> List[str]:
    """Registered scenario names, in registration order."""
    return list(_REGISTRY)


def suite_scenarios(suite: str | Sequence[str]) -> List[ScenarioSpec]:
    """Resolve a suite name (``"core"``) or an explicit name list to specs."""
    if isinstance(suite, str):
        if suite == "core":
            names: Sequence[str] = CORE_SUITE
        elif suite == "failures":
            names = FAILURE_SUITE
        elif suite == "hetero":
            names = HETERO_SUITE
        else:
            names = [part for part in suite.split(",") if part]
    else:
        names = suite
    if not names:
        raise ValueError("scenario suite is empty")
    return [get_scenario(name) for name in names]


# -- built-in core suite -------------------------------------------------------
# The robustness suite: two clean baselines, load/burst stress, estimate
# corruption, workload-shape shifts, and two capacity-loss scenarios.

register_scenario(ScenarioSpec(
    name="baseline-sdsc",
    base_trace="SDSC-SP2",
    description="Clean SDSC-SP2-like workload; the control cell.",
))
register_scenario(ScenarioSpec(
    name="baseline-lublin",
    base_trace="Lublin-1",
    description="Clean Lublin-1 synthetic workload (no user estimates).",
))
register_scenario(ScenarioSpec(
    name="load-surge-1.5x",
    base_trace="SDSC-SP2",
    description="SDSC-SP2 arrivals compressed 1.5x: sustained load surge.",
    transforms=(LoadScale(1.5),),
))
register_scenario(ScenarioSpec(
    name="load-surge-2x",
    base_trace="Lublin-1",
    description="Lublin-1 arrivals compressed 2x: heavy overload.",
    transforms=(LoadScale(2.0),),
))
register_scenario(ScenarioSpec(
    name="burst-storm",
    base_trace="SDSC-SP2",
    description="Submission storms: runs of 24 jobs collapse into 2-minute bursts.",
    transforms=(BurstInject(num_bursts=6, burst_length=24, span_seconds=120.0),),
))
register_scenario(ScenarioSpec(
    name="estimate-noise",
    base_trace="SDSC-SP2",
    description="Log-normal noise (sigma=1.0) on user wall-time estimates, under-estimates allowed.",
    transforms=(EstimateNoise(sigma=1.0),),
))
register_scenario(ScenarioSpec(
    name="estimate-inflate-3x",
    base_trace="HPC2N",
    description="Every wall-time estimate inflated 3x: systematic over-requesting.",
    transforms=(EstimateInflate(3.0),),
))
register_scenario(ScenarioSpec(
    name="thin-wide",
    base_trace="Lublin-2",
    description="40% of jobs dropped, survivors 1.5x wider: sparse wide-job mix.",
    transforms=(ArrivalThin(keep_fraction=0.6), SizeRescale(1.5)),
))
register_scenario(ScenarioSpec(
    name="downtime-half",
    base_trace="SDSC-SP2",
    description="Half the machine drains for the middle 30% of the sequence.",
    cluster=ClusterSpec(downtime=(
        DowntimeSpec(start_fraction=0.35, duration_fraction=0.30, fraction_of_machine=0.5),
    )),
))
register_scenario(ScenarioSpec(
    name="rolling-maintenance",
    base_trace="Lublin-1",
    description="Two staggered 25%-capacity maintenance drains under a 1.25x load surge.",
    transforms=(LoadScale(1.25),),
    cluster=ClusterSpec(downtime=(
        DowntimeSpec(start_fraction=0.20, duration_fraction=0.15, fraction_of_machine=0.25),
        DowntimeSpec(start_fraction=0.55, duration_fraction=0.15, fraction_of_machine=0.25),
    )),
))

register_scenario(ScenarioSpec(
    name="node-failure-requeue",
    base_trace="SDSC-SP2",
    description="A quarter of the machine fails mid-sequence; victims requeue from scratch.",
    cluster=ClusterSpec(
        failures=(
            FailureSpec(at_fraction=0.45, fraction_of_machine=0.25, repair_fraction=0.10),
        ),
        restart="requeue",
    ),
))
register_scenario(ScenarioSpec(
    name="failure-storm-checkpoint",
    base_trace="Lublin-1",
    description="Three staggered failures under a 1.25x surge; checkpoint credit on restart.",
    transforms=(LoadScale(1.25),),
    cluster=ClusterSpec(
        failures=(
            FailureSpec(at_fraction=0.25, fraction_of_machine=0.20, repair_fraction=0.08),
            FailureSpec(at_fraction=0.50, fraction_of_machine=0.35, repair_fraction=0.10),
            FailureSpec(at_fraction=0.70, fraction_of_machine=0.15, repair_fraction=0.05),
        ),
        restart="checkpoint",
    ),
))
register_scenario(ScenarioSpec(
    name="failure-under-maintenance",
    base_trace="SDSC-SP2",
    description="A node failure striking inside a scheduled half-machine drain (overlap accounting).",
    cluster=ClusterSpec(
        downtime=(
            DowntimeSpec(start_fraction=0.30, duration_fraction=0.30, fraction_of_machine=0.5),
        ),
        failures=(
            FailureSpec(at_fraction=0.40, fraction_of_machine=0.25, repair_fraction=0.10),
        ),
        restart="requeue",
    ),
))

#: The built-in robustness suite (ordered); >= 8 scenarios by construction.
CORE_SUITE: Tuple[str, ...] = (
    "baseline-sdsc",
    "baseline-lublin",
    "load-surge-1.5x",
    "load-surge-2x",
    "burst-storm",
    "estimate-noise",
    "estimate-inflate-3x",
    "thin-wide",
    "downtime-half",
    "rolling-maintenance",
)

#: The failure-domain suite (preempting node failures; docs/resilience.md).
#: Kept separate from :data:`CORE_SUITE` so the committed
#: suite/reference-cell wall-clock trend ratio stays comparable.
FAILURE_SUITE: Tuple[str, ...] = (
    "node-failure-requeue",
    "failure-storm-checkpoint",
    "failure-under-maintenance",
)

# -- heterogeneous suite -------------------------------------------------------
# Multi-resource node-group scenarios (docs/cluster.md).  Group cpu counts are
# written against each scenario's pinned base trace and must sum exactly to
# its machine size (SDSC-SP2: 128, Lublin-1: 256); AssignResources caps job
# widths so every dressed job fits the group hosting its resources.

register_scenario(ScenarioSpec(
    name="hetero-gpu-scarcity",
    base_trace="SDSC-SP2",
    description=(
        "96 cpu-only + 32 GPU processors; a quarter of the jobs need 1-4 GPUs "
        "and queue for the scarce group."
    ),
    transforms=(
        AssignResources(
            gpu_fraction=0.25,
            gpus_min=1,
            gpus_max=4,
            max_processors=96,
            constrained_max_processors=32,
        ),
    ),
    cluster=ClusterSpec(
        node_groups=(
            NodeGroupSpec(name="cpu", cpus=96),
            NodeGroupSpec(name="gpu", cpus=32, gpus=32),
        ),
        allocator="best_fit",
    ),
))
register_scenario(ScenarioSpec(
    name="hetero-memory-bound",
    base_trace="SDSC-SP2",
    description=(
        "Standard vs big-memory groups; 30% of jobs request 4096 MB/proc and "
        "contend for the 32-processor big-memory group."
    ),
    transforms=(
        AssignResources(
            memory_fraction=0.30,
            memory_heavy=4096,
            memory_light=512,
            max_processors=96,
            constrained_max_processors=32,
        ),
    ),
    cluster=ClusterSpec(
        node_groups=(
            NodeGroupSpec(name="standard", cpus=96, memory=96 * 2048),
            NodeGroupSpec(name="bigmem", cpus=32, memory=32 * 8192),
        ),
        allocator="best_fit",
    ),
))
register_scenario(ScenarioSpec(
    name="hetero-partition-drain",
    base_trace="Lublin-1",
    description=(
        "Two Slurm-style partitions (160 + 96 processors) with pinned jobs; "
        "the small partition drains 64 processors for the middle 30% of the "
        "sequence."
    ),
    transforms=(
        AssignResources(
            partitions=(0, 1),
            partition_weights=(0.65, 0.35),
            partition_max_processors=(160, 96),
        ),
    ),
    cluster=ClusterSpec(
        node_groups=(
            NodeGroupSpec(name="p0", cpus=160, partition=0),
            NodeGroupSpec(name="p1", cpus=96, partition=1),
        ),
        downtime=(
            DowntimeSpec(
                start_fraction=0.35,
                duration_fraction=0.30,
                processors=64,
                group="p1",
            ),
        ),
    ),
))

#: The heterogeneous node-group suite (multi-resource allocator layer).
HETERO_SUITE: Tuple[str, ...] = (
    "hetero-gpu-scarcity",
    "hetero-memory-bound",
    "hetero-partition-drain",
)
