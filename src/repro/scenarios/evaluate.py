"""Multi-policy scenario evaluation: cells, aggregation, and the JSON report.

One **cell** is (scenario x policy): the scenario's transformed trace is
sampled into the scale's evaluation sequences (the *same* sequences for every
policy of that scenario, the fair-comparison protocol of
:mod:`repro.experiments.runner`), each sequence is scheduled to completion
under the policy -- honouring the scenario's downtime windows -- and the
per-sequence :func:`repro.scheduler.metrics.compute_metrics` outputs are
averaged into one metrics row.  Cells are independent, which is what the
process worker pool (:mod:`repro.scenarios.pool`) exploits.

The report is **seed-deterministic by construction**: every simulated float
is a pure function of ``(suite, scale, seed, policies)``, cells are keyed --
never ordered by completion -- and the serializer sorts keys, so two runs
with the same seed produce byte-identical JSON regardless of worker count.
Wall-clock telemetry is therefore kept out of the report and returned as a
separate timing document (``scripts/check_benchmark_trend.py`` ingests it
with ``--scenario-report``).
"""

from __future__ import annotations

import json
import time
import zlib
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.agent import RLBackfillAgent
from repro.core.observation import ObservationConfig
from repro.core.rlbackfill import RLBackfillPolicy
from repro.experiments.config import ExperimentScale, get_scale
from repro.experiments.runner import (
    SchedulingConfiguration,
    evaluate_strategy_results,
    train_rlbackfilling,
)
from repro.prediction.predictors import UserEstimate
from repro.scenarios.registry import BuiltScenario, ScenarioSpec, suite_scenarios
from repro.scheduler.backfill.conservative import ConservativeBackfill
from repro.scheduler.backfill.easy import EasyBackfill
from repro.scheduler.metrics import JobRecord
from repro.utils.rng import SeedLike, derive_seed, spawn_rngs
from repro.workloads.job import Job
from repro.workloads.sampling import sample_sequence

__all__ = [
    "METRIC_FIELDS",
    "AgentBundle",
    "HEURISTIC_POLICIES",
    "DEFAULT_POLICIES",
    "train_evaluation_agent",
    "make_configuration",
    "scenario_sequences",
    "evaluate_cell",
    "build_report",
    "report_to_json",
    "evaluate_suite",
]

#: Fixed order of the per-cell aggregate metrics; this is also the layout of
#: the shared-memory result frame the worker pool ships, so append-only.
METRIC_FIELDS: Tuple[str, ...] = (
    "num_jobs",
    "average_bounded_slowdown",
    "average_slowdown",
    "average_wait_time",
    "average_turnaround",
    "max_wait_time",
    "makespan",
    "utilization",
    "backfilled_jobs",
    "decision_count",
    "window_utilization",
    "preemption_count",
    "requeue_count",
)

#: Policies available without a trained agent.
HEURISTIC_POLICIES: Tuple[str, ...] = ("easy", "conservative")

#: The acceptance-criteria policy set: two heuristics plus the learned policy.
DEFAULT_POLICIES: Tuple[str, ...] = ("easy", "conservative", "rl")


@dataclass(frozen=True)
class AgentBundle:
    """A trained agent in wire form: plain arrays + the observation shape.

    Workers rebuild the agent from this (instead of pickling live network
    objects) so the pool's spawn path stays cheap and version-stable.
    """

    max_queue_size: int
    kernel_state: Mapping[str, np.ndarray]
    value_state: Mapping[str, np.ndarray]

    @classmethod
    def from_agent(cls, agent: RLBackfillAgent) -> "AgentBundle":
        state = agent.state_dict()
        return cls(
            max_queue_size=agent.observation_config.max_queue_size,
            kernel_state=dict(state["kernel"]),
            value_state=dict(state["value"]),
        )

    def to_agent(self) -> RLBackfillAgent:
        from repro.core.checkpoints import _rebuild_with_shapes  # shares shape recovery

        config = ObservationConfig(max_queue_size=self.max_queue_size)
        try:
            agent = RLBackfillAgent(observation_config=config)
            agent.load_state_dict({"kernel": dict(self.kernel_state), "value": dict(self.value_state)})
        except ValueError:
            agent = _rebuild_with_shapes(config, dict(self.kernel_state), dict(self.value_state))
        return agent


def train_evaluation_agent(
    scale: ExperimentScale | str = "quick",
    seed: SeedLike = 0,
    base_trace: str = "SDSC-SP2",
) -> AgentBundle:
    """Train the suite's RL policy on the *clean* base trace.

    The robustness story evaluates a policy trained on an unperturbed
    workload across perturbed scenarios, so the agent never sees the
    transforms or downtime windows during training.  Training is
    seed-deterministic (batch-invariant kernels + the seeded trainer), which
    keeps the whole report byte-reproducible.
    """
    model = train_rlbackfilling(
        base_trace, policy="FCFS", scale=scale, seed=derive_seed(seed, 0x52_4C), backend="local"
    )
    return AgentBundle.from_agent(model.agent)


def make_configuration(
    policy: str, agent_bundle: Optional[AgentBundle] = None
) -> SchedulingConfiguration:
    """Build the :class:`SchedulingConfiguration` for a policy name.

    ``rl`` wraps the bundle's agent in a deterministic
    :class:`RLBackfillPolicy` with the serial row-block hint (``row_block=1``):
    scenario evaluation forwards one decision at a time, so the deployment
    site opts out of the 16-row padding the batched rollout engines need.
    """
    if policy == "easy":
        return SchedulingConfiguration(
            label="easy", policy="FCFS", backfill=EasyBackfill(), estimator=UserEstimate()
        )
    if policy == "conservative":
        # Bounded reservation depth / candidate attempts (the Slurm
        # bf_max_job_test discipline): surge scenarios legitimately build
        # queues hundreds deep, where the textbook unbounded re-plan is
        # quadratic per decision and a single hyper-contended sequence can
        # cost minutes.  The no-delay guarantee covers the first 64 waiting
        # jobs -- beyond what the surged sequences' windows typically hold.
        return SchedulingConfiguration(
            label="conservative",
            policy="FCFS",
            backfill=ConservativeBackfill(reservation_depth=64, max_candidates=16),
            estimator=UserEstimate(),
        )
    if policy == "rl":
        if agent_bundle is None:
            raise ValueError("the 'rl' policy needs a trained AgentBundle")
        strategy = RLBackfillPolicy(
            agent_bundle.to_agent(), deterministic=True, label="rl", row_block=1
        )
        return SchedulingConfiguration(
            label="rl", policy="FCFS", backfill=strategy, estimator=UserEstimate()
        )
    raise KeyError(
        f"unknown policy {policy!r}; available: easy, conservative, rl"
    )


def scenario_seed(seed: SeedLike, scenario_name: str) -> int:
    """Stable per-scenario sub-seed (name-keyed, so suite order is irrelevant)."""
    if isinstance(seed, np.random.Generator):
        raise TypeError("scenario evaluation requires a reproducible seed, not a Generator")
    return derive_seed(seed, zlib.crc32(scenario_name.encode("utf-8")))


def scenario_sequences(
    built: BuiltScenario, scale: ExperimentScale, seed: SeedLike
) -> List[List[Job]]:
    """The scenario's evaluation sequences (shared by every policy cell)."""
    rngs = spawn_rngs(scenario_seed(seed, built.name), scale.eval_samples)
    return [
        sample_sequence(built.trace, scale.eval_sequence_length, seed=rng) for rng in rngs
    ]


def _window_utilization(
    records: Sequence[JobRecord], windows, num_processors: int
) -> Tuple[float, float]:
    """(busy processor-seconds inside the windows, window processor-seconds)."""
    busy = 0.0
    capacity = 0.0
    for window in windows:
        capacity += (window.end - window.start) * num_processors
        for record in records:
            overlap = min(record.end_time, window.end) - max(record.start_time, window.start)
            if overlap > 0.0:
                busy += overlap * record.job.requested_processors
    return busy, capacity


def evaluate_cell(
    built: BuiltScenario,
    policy: str,
    scale: ExperimentScale,
    seed: SeedLike,
    agent_bundle: Optional[AgentBundle] = None,
    sequences: Optional[Sequence[Sequence[Job]]] = None,
) -> Dict[str, float]:
    """Evaluate one (scenario x policy) cell into an aggregate metrics row.

    Returns a mapping over :data:`METRIC_FIELDS`: each simulated sequence's
    :class:`ScheduleMetrics` are averaged (counts too -- "jobs backfilled per
    sequence" reads more naturally across scales than a grand total).
    ``window_utilization`` is the busy fraction of *nameplate* capacity over
    the scenario's downtime windows -- the number the acceptance criterion
    pins below 1.0 -- and ``NaN`` for scenarios without downtime.
    """
    if sequences is None:
        sequences = scenario_sequences(built, scale, seed)
    configuration = make_configuration(policy, agent_bundle)
    totals = {field: 0.0 for field in METRIC_FIELDS}
    window_busy = 0.0
    window_capacity = 0.0
    for jobs in sequences:
        span = max(job.submit_time for job in jobs) - min(job.submit_time for job in jobs)
        windows = built.capacity_schedule(span)
        failures = built.node_failures(span)
        result = evaluate_strategy_results(
            built.trace,
            configuration,
            [jobs],
            capacity_schedule=windows,
            node_failures=failures,
            restart_policy=built.restart_policy if failures else None,
            topology=built.topology,
            allocator=built.allocator,
        )[0]
        metrics = result.metrics.as_dict()
        for field in METRIC_FIELDS:
            if field in metrics:
                totals[field] += float(metrics[field])
        totals["decision_count"] += float(result.decision_count)
        totals["preemption_count"] += float(result.preemption_count)
        totals["requeue_count"] += float(result.requeue_count)
        if windows:
            busy, capacity = _window_utilization(
                result.records, windows, built.trace.num_processors
            )
            window_busy += busy
            window_capacity += capacity
    count = float(len(sequences))
    row = {field: totals[field] / count for field in METRIC_FIELDS}
    row["window_utilization"] = (
        window_busy / window_capacity if window_capacity > 0.0 else float("nan")
    )
    return row


# -- report assembly -----------------------------------------------------------

def build_report(
    suite_name: str,
    scenarios: Sequence[ScenarioSpec],
    policies: Sequence[str],
    scale: ExperimentScale,
    seed: int,
    cells: Mapping[Tuple[str, str], Mapping[str, float]],
) -> Dict[str, object]:
    """Assemble the deterministic report document from evaluated cells."""
    scenario_block: Dict[str, object] = {}
    wins: Dict[str, int] = {policy: 0 for policy in policies}
    bsld_sums: Dict[str, float] = {policy: 0.0 for policy in policies}
    for spec in scenarios:
        rows = {policy: dict(cells[(spec.name, policy)]) for policy in policies}
        ranking = sorted(
            policies, key=lambda policy: (rows[policy]["average_bounded_slowdown"], policy)
        )
        wins[ranking[0]] += 1
        for policy in policies:
            bsld_sums[policy] += rows[policy]["average_bounded_slowdown"]
        scenario_block[spec.name] = {
            **spec.describe(),
            "policies": rows,
            "ranking": ranking,
            "best_policy": ranking[0],
        }
    summary = {
        "wins": wins,
        "mean_bsld": {
            policy: bsld_sums[policy] / float(len(scenarios)) for policy in policies
        },
    }
    return {
        "suite": suite_name,
        "seed": int(seed),
        "scale": {
            "name": scale.name,
            "trace_jobs": scale.trace_jobs,
            "eval_samples": scale.eval_samples,
            "eval_sequence_length": scale.eval_sequence_length,
        },
        "policies": list(policies),
        "metric_fields": list(METRIC_FIELDS),
        "scenarios": scenario_block,
        "summary": summary,
    }


def report_to_json(report: Mapping[str, object]) -> str:
    """Canonical serialization: sorted keys, fixed separators, trailing newline.

    ``NaN`` would serialize non-portably, so it is rewritten to ``None``
    before dumping; byte-identical output across same-seed runs is part of
    the report's contract.
    """

    def _clean(value):
        if isinstance(value, float) and not np.isfinite(value):
            return None
        if isinstance(value, dict):
            return {key: _clean(item) for key, item in value.items()}
        if isinstance(value, (list, tuple)):
            return [_clean(item) for item in value]
        return value

    return json.dumps(_clean(dict(report)), indent=2, sort_keys=True, allow_nan=False) + "\n"


def evaluate_suite(
    suite: str | Sequence[str] = "core",
    scale: ExperimentScale | str = "quick",
    seed: int = 0,
    policies: Sequence[str] = DEFAULT_POLICIES,
    num_workers: int | None = None,
    agent_bundle: Optional[AgentBundle] = None,
) -> Tuple[Dict[str, object], Dict[str, object]]:
    """Evaluate ``suite`` x ``policies`` and return ``(report, timing)``.

    ``num_workers`` > 0 fans the cells across a process worker pool
    (:class:`repro.scenarios.pool.ScenarioWorkerPool`); ``0`` evaluates
    inline.  ``None`` picks ``min(cells, available cores)``.  The report is
    identical either way; only the timing document differs.
    """
    scale = get_scale(scale)
    scenarios = suite_scenarios(suite)
    policies = list(policies)
    if "rl" in policies and agent_bundle is None:
        agent_bundle = train_evaluation_agent(scale=scale, seed=seed)
    cell_keys = [(spec.name, policy) for spec in scenarios for policy in policies]

    started = time.perf_counter()
    if num_workers is None:
        from repro.rl.lane_pool import available_worker_count

        num_workers = max(1, min(len(cell_keys), available_worker_count()))
    if num_workers > 0:
        from repro.scenarios.pool import ScenarioWorkerPool

        with ScenarioWorkerPool(
            scenarios=scenarios,
            policies=policies,
            scale=scale,
            seed=seed,
            agent_bundle=agent_bundle,
            num_workers=num_workers,
        ) as pool:
            cells, cell_walls = pool.run()
    else:
        cells = {}
        cell_walls = {}
        for spec in scenarios:
            built = spec.build(seed=scenario_seed(seed, spec.name), num_jobs=scale.trace_jobs)
            sequences = scenario_sequences(built, scale, seed)
            for policy in policies:
                cell_started = time.perf_counter()
                cells[(spec.name, policy)] = evaluate_cell(
                    built, policy, scale, seed, agent_bundle, sequences=sequences
                )
                cell_walls[(spec.name, policy)] = time.perf_counter() - cell_started
    total_wall = time.perf_counter() - started

    report = build_report(
        suite_name=suite if isinstance(suite, str) else ",".join(suite),
        scenarios=scenarios,
        policies=policies,
        scale=scale,
        seed=seed,
        cells=cells,
    )
    # Reference cell: one representative cell re-evaluated inline and timed on
    # this same machine.  The suite/reference ratio is the hardware-relative
    # tripwire the trend check gates on -- an absolute suite wall-clock ceiling
    # would encode one runner's speed into the committed baseline.
    ref_scenario = next(
        (spec for spec in scenarios if spec.name == "baseline"), scenarios[0]
    )
    ref_policy = "easy" if "easy" in policies else policies[0]
    ref_started = time.perf_counter()
    ref_built = ref_scenario.build(
        seed=scenario_seed(seed, ref_scenario.name), num_jobs=scale.trace_jobs
    )
    evaluate_cell(
        ref_built,
        ref_policy,
        scale,
        seed,
        agent_bundle,
        sequences=scenario_sequences(ref_built, scale, seed),
    )
    reference_cell_seconds = time.perf_counter() - ref_started

    timing = {
        "scenario_eval_wall_seconds": total_wall,
        "cells": len(cell_keys),
        "workers": num_workers,
        "cells_per_second": len(cell_keys) / total_wall if total_wall > 0 else 0.0,
        "reference_cell": f"{ref_scenario.name}/{ref_policy}",
        "reference_cell_seconds": reference_cell_seconds,
        "wall_per_reference_cell": (
            total_wall / reference_cell_seconds if reference_cell_seconds > 0 else 0.0
        ),
        "cell_wall_seconds": {
            f"{name}/{policy}": cell_walls.get((name, policy), 0.0)
            for name, policy in cell_keys
        },
    }
    return report, timing
