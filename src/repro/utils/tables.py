"""Plain-text table rendering used by experiment drivers and benchmarks.

The experiment drivers print the same rows/columns the paper's tables report;
this module keeps the formatting in one place so benchmark output stays
readable under ``pytest -s``.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence, Union

Cell = Union[str, int, float, None]


def _fmt_cell(value: Cell, precision: int) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    precision: int = 2,
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned plain-text table."""
    str_rows = [[_fmt_cell(c, precision) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} headers: {row}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_mapping_table(
    data: Mapping[str, Mapping[str, Cell]],
    row_label: str = "row",
    precision: int = 2,
    title: str | None = None,
) -> str:
    """Render a nested mapping ``{row: {column: value}}`` as a table.

    Column order follows first-seen order across rows so tables with sparse
    rows (e.g. Table 4 where synthetic traces omit the EASY columns) stay
    aligned.
    """
    columns: list[str] = []
    for row_values in data.values():
        for col in row_values:
            if col not in columns:
                columns.append(col)
    headers = [row_label] + columns
    rows = [[name] + [values.get(col) for col in columns] for name, values in data.items()]
    return format_table(headers, rows, precision=precision, title=title)


__all__ = ["format_table", "format_mapping_table"]
