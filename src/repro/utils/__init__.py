"""Shared utilities: deterministic RNG handling, table formatting, logging."""

from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.tables import format_table
from repro.utils.logging import get_logger

__all__ = ["as_rng", "spawn_rngs", "format_table", "get_logger"]
