"""Deterministic random-number-generator helpers.

**The seeding rule.**  Every stochastic entry point in the library -- the
workload generators (``lublin_trace``, ``synthetic_trace``, ``load_trace``),
the trace samplers (``sample_sequence``/``sample_sequences``), the scenario
transforms, PPO exploration, and the noisy runtime predictors -- accepts one
``seed`` argument of type :data:`SeedLike` and interprets it uniformly:

* ``int`` or :class:`numpy.random.SeedSequence` -- a reproducible stream of
  its own; calling the entry point twice with the same value yields
  bit-identical output.
* :class:`numpy.random.Generator` -- draws from the *caller's* stream,
  advancing it: two consecutive calls with the same generator yield
  different (but jointly reproducible) output.  This is how one top-level
  seed fans out through nested components.
* ``None`` -- fresh OS entropy (irreproducible), except where a stable
  context-derived default exists (``load_trace`` derives one from the trace
  name).

Entry points that must *derive* independent child streams (one per sampled
sequence, per transform, per lane) go through :func:`spawn_rngs` /
:func:`derive_seed` rather than reusing the parent generator, so inserting a
component never perturbs its siblings' draws.  The helpers here normalize
all of this so experiments are reproducible end to end from a single seed.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any seed-like input.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an ``int`` seed, a ``SeedSequence``, or an
        existing ``Generator`` (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, n: int) -> list[np.random.Generator]:
    """Spawn ``n`` statistically independent generators from one seed.

    Used when an experiment needs independent streams (e.g. one per sampled
    job sequence) that remain reproducible from a single top-level seed.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of rngs: {n}")
    if isinstance(seed, np.random.Generator):
        # Derive children deterministically from the generator's own stream.
        seeds = seed.integers(0, 2**63 - 1, size=n)
        return [np.random.default_rng(int(s)) for s in seeds]
    seq = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(n)]


def derive_seed(seed: SeedLike, index: int) -> int:
    """Derive a stable integer sub-seed from ``seed`` and an ``index``."""
    if isinstance(seed, np.random.Generator):
        raise TypeError("derive_seed requires a reproducible seed, not a Generator")
    base = 0 if seed is None else int(seed) if not isinstance(seed, np.random.SeedSequence) else int(seed.entropy or 0)
    mixed = np.random.SeedSequence(entropy=base, spawn_key=(index,))
    return int(mixed.generate_state(1, dtype=np.uint64)[0] % (2**63 - 1))


def check_probability(p: float, name: str = "probability") -> float:
    """Validate that ``p`` lies in ``[0, 1]`` and return it."""
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"{name} must be within [0, 1], got {p}")
    return float(p)


__all__: Sequence[str] = ["SeedLike", "as_rng", "spawn_rngs", "derive_seed", "check_probability"]
