"""Thin logging wrapper with a library-wide namespace.

The library never configures the root logger; applications (examples,
benchmarks) opt into console output via :func:`enable_console_logging`.
"""

from __future__ import annotations

import logging

_ROOT_NAME = "repro"


def get_logger(name: str | None = None) -> logging.Logger:
    """Return a logger under the ``repro`` namespace."""
    if name is None or name == _ROOT_NAME:
        return logging.getLogger(_ROOT_NAME)
    if name.startswith(_ROOT_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def enable_console_logging(level: int = logging.INFO) -> logging.Logger:
    """Attach a stream handler to the library root logger (idempotent)."""
    logger = get_logger()
    logger.setLevel(level)
    if not any(isinstance(h, logging.StreamHandler) for h in logger.handlers):
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s"))
        logger.addHandler(handler)
    return logger


__all__ = ["get_logger", "enable_console_logging"]
