"""Homogeneous cluster model: processor pool, running-job registry, utilization."""

from repro.cluster.resources import Allocation, ResourcePool
from repro.cluster.machine import DowntimeWindow, Machine, RunningJob

__all__ = ["Allocation", "ResourcePool", "DowntimeWindow", "Machine", "RunningJob"]
