"""Cluster model: processor pool, node groups, allocator layer, running-job registry."""

from repro.cluster.resources import (
    Allocation,
    ClusterTopology,
    NodeGroup,
    ResourcePool,
    ResourceVector,
)
from repro.cluster.allocator import (
    ALLOCATOR_POLICIES,
    Allocator,
    BestFitAllocator,
    FirstFitAllocator,
    GroupAllocation,
    job_request,
    make_allocator,
)
from repro.cluster.machine import DowntimeWindow, Machine, RunningJob

__all__ = [
    "Allocation",
    "ResourcePool",
    "ResourceVector",
    "NodeGroup",
    "ClusterTopology",
    "Allocator",
    "FirstFitAllocator",
    "BestFitAllocator",
    "GroupAllocation",
    "job_request",
    "make_allocator",
    "ALLOCATOR_POLICIES",
    "DowntimeWindow",
    "Machine",
    "RunningJob",
]
