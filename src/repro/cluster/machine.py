"""Machine model: the processor pool plus the set of currently running jobs.

The scheduler simulator interacts with the cluster exclusively through this
class: start a job, ask which running job finishes next, release completed
jobs, and query availability.  Completion always uses the job's *actual*
runtime; runtime estimates only influence reservations and backfilling
decisions, never the physics of the simulated machine.

**Capacity schedule.**  A machine can carry a schedule of
:class:`DowntimeWindow` entries -- maintenance drains during which some
processors are out of service.  Drains are *graceful*: jobs already running
keep their processors until they finish, but no new job may start if doing so
would push the busy count above the effective capacity
``total - drained(now)``.  Every availability query (``free_processors``,
``free_fraction``, :meth:`can_start`, :meth:`earliest_start_estimate`) is
evaluated against the effective capacity at the machine's current simulated
time, so schedulers -- and the RL observation encoder, which reads
``free_fraction`` and the reservation features off the machine -- see the
capacity loss the moment a window opens.  Utilization accounting integrates
*busy* processors only, so a drained machine correctly reports reduced
utilization against its full nameplate capacity.

Two internal caches keep the hot simulator loop cheap without changing any
observable behaviour:

* completion queries go through a lazily-invalidated min-heap of
  ``(end_time, job_id)`` entries instead of scanning every running job, and
* the estimated-release plan consumed by :meth:`Machine.earliest_start_estimate`
  is memoized per (estimator, running-set version) so repeated backfilling
  decisions at one instant do not re-query the runtime estimator.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, insort
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.cluster.allocator import (
    Allocator,
    GroupAllocation,
    job_request,
    make_allocator,
)
from repro.cluster.resources import Allocation, ClusterTopology, NodeGroup, ResourcePool, ResourceVector
from repro.workloads.job import Job

__all__ = ["RunningJob", "Machine", "DowntimeWindow"]

_EPS = 1e-9


@dataclass(frozen=True, slots=True)
class DowntimeWindow:
    """``processors`` processors are out of service over ``[start, end)``.

    Windows may overlap (their drained counts add up, clipped to the machine
    size) and are interpreted in simulation time -- the same clock job submit
    times use.  A window never preempts running jobs; it only caps how many
    processors new starts may occupy while it is active.

    ``group`` targets the drain at one node group of a heterogeneous machine
    (see docs/cluster.md).  Multi-group topologies require every window to be
    group-tagged; a one-group topology accepts untagged windows (they drain
    the only group there is), and scalar machines reject tags outright.
    """

    start: float
    end: float
    processors: int
    group: Optional[str] = None

    def __post_init__(self) -> None:
        if self.processors <= 0:
            raise ValueError(f"downtime window must drain a positive processor count, got {self.processors}")
        if not self.end > self.start:
            raise ValueError(f"downtime window must have end > start, got [{self.start}, {self.end})")
        if self.start < 0:
            raise ValueError(f"downtime window cannot start before t=0, got {self.start}")

    @property
    def duration(self) -> float:
        return self.end - self.start

    def active_at(self, time: float) -> bool:
        """Whether the window is draining processors at ``time`` (half-open)."""
        return self.start - _EPS <= time < self.end - _EPS


@dataclass(frozen=True, slots=True)
class RunningJob:
    """A job currently executing on the machine.

    ``runtime_override`` replaces the job's actual runtime for this run --
    the checkpoint-credit restart policy uses it to run only the *remaining*
    runtime after a preemption (see :mod:`repro.faults`).  ``None`` (the
    default, and the only value a first start ever uses) means the job runs
    its full actual runtime.
    """

    job: Job
    start_time: float
    allocation: Allocation
    runtime_override: Optional[float] = None

    @property
    def runtime(self) -> float:
        """Wall time this run occupies the machine."""
        return self.job.runtime if self.runtime_override is None else self.runtime_override

    @property
    def end_time(self) -> float:
        """True completion time (start + actual runtime for this run)."""
        return self.start_time + self.runtime

    def estimated_end_time(self, estimator: Callable[[Job], float]) -> float:
        """Completion time as believed by the scheduler under ``estimator``.

        The estimate is never allowed to fall before the job's start time and,
        if the job has already exceeded a short estimate, the scheduler learns
        nothing new until it actually finishes, so the estimate is clamped to
        the true end time's past only by the caller-supplied ``now`` if needed.
        """
        return self.start_time + max(float(estimator(self.job)), 0.0)


class Machine:
    """Homogeneous cluster with running-job bookkeeping and utilization accounting."""

    def __init__(
        self,
        num_processors: int,
        capacity_schedule: Sequence[DowntimeWindow] | None = None,
        topology: ClusterTopology | None = None,
        allocator: str | Allocator = "first_fit",
    ):
        self.pool = ResourcePool(total=num_processors)
        #: Heterogeneous topology, or ``None`` for the scalar machine.  Every
        #: hetero branch below is guarded on this so the scalar path performs
        #: exactly the pre-topology arithmetic.
        self.topology = topology
        self._allocator: Optional[Allocator] = None
        self._group_allocs: Dict[int, GroupAllocation] = {}
        if topology is not None:
            if topology.total_cpus != num_processors:
                raise ValueError(
                    f"topology supplies {topology.total_cpus} cpus but the machine "
                    f"was sized at {num_processors}"
                )
            self._allocator = (
                allocator if isinstance(allocator, Allocator) else make_allocator(allocator, topology)
            )
        #: Scheduled drains, sorted by start time; empty tuple = always full
        #: capacity (the default, and the zero-overhead fast path everywhere).
        self.capacity_schedule: Tuple[DowntimeWindow, ...] = tuple(
            sorted(capacity_schedule or (), key=lambda w: (w.start, w.end))
        )
        for window in self.capacity_schedule:
            self._validate_window(window)
        self._running: dict[int, RunningJob] = {}
        # Utilization accounting: integral of busy processors over time.
        self._busy_area = 0.0
        self._last_accounting_time = 0.0
        # Min-heap of (end_time, job_id); entries go stale on forced release
        # and are discarded lazily when they surface.
        self._completion_heap: List[Tuple[float, int]] = []
        # Version counter for the running set, bumped on every start/release;
        # keys the estimated-release-plan cache below.
        self._version = 0
        self._release_plan: Optional[Tuple[int, object, List[Tuple[float, int]]]] = None
        # Incrementally-maintained *sorted* (estimated_end, processors) plan,
        # valid only for a stateless estimator (one whose estimate is a pure
        # function of the job): entries are inserted at job start and removed
        # at release, so reservation queries skip the per-decision sort.
        self._sorted_plan: Optional[List[Tuple[float, int]]] = None
        self._sorted_plan_estimator: Optional[object] = None
        self._sorted_plan_entries: Dict[int, Tuple[float, int]] = {}

    # -- properties -------------------------------------------------------
    @property
    def num_processors(self) -> int:
        return self.pool.total

    @property
    def free_processors(self) -> int:
        """Processors a new job could occupy right now.

        With a capacity schedule this is the *effective* free count: idle
        processors minus those drained by the windows active at the machine's
        current simulated time (never negative -- a graceful drain that finds
        the machine busier than the remaining capacity simply blocks new
        starts until jobs finish).  On heterogeneous machines the clamp is
        per group: a deeply-drained group cannot borrow headroom from an
        undrained one.
        """
        if not self.capacity_schedule:
            return self.pool.free
        if self._allocator is not None:
            return sum(vector.cpus for vector in self.hetero_free_map().values())
        return max(self.pool.free - self.drained_processors(), 0)

    @property
    def free_fraction(self) -> float:
        if not self.capacity_schedule:
            return self.pool.free_fraction
        return self.free_processors / self.pool.total

    @property
    def running_jobs(self) -> List[RunningJob]:
        """Running jobs ordered by true completion time."""
        return sorted(self._running.values(), key=lambda r: (r.end_time, r.job.job_id))

    @property
    def num_running(self) -> int:
        return len(self._running)

    def is_running(self, job_id: int) -> bool:
        return job_id in self._running

    def can_start(self, job: Job) -> bool:
        if self._allocator is not None:
            free = self.hetero_free_map() if self.capacity_schedule else None
            return self._allocator.can_allocate(job_request(job), free=free, partition=job.partition)
        if not self.capacity_schedule:
            return self.pool.can_allocate(job.requested_processors)
        return 0 < job.requested_processors <= self.free_processors

    # -- capacity schedule --------------------------------------------------
    @property
    def now(self) -> float:
        """The machine's current simulated time (last accounting instant)."""
        return self._last_accounting_time

    def advance_to(self, now: float) -> None:
        """Move the machine's clock forward to ``now`` without other effects.

        The simulator calls this once at sequence start so availability
        queries made before the first job starts already see the capacity
        windows active at the first submission instant.
        """
        if now > self._last_accounting_time:
            self._account(now)

    def drained_processors(self, time: float | None = None) -> int:
        """Processors out of service at ``time`` (default: the current clock)."""
        if not self.capacity_schedule:
            return 0
        at = self._last_accounting_time if time is None else time
        drained = 0
        for window in self.capacity_schedule:
            if window.start - _EPS > at:
                break  # schedule is sorted by start; nothing later is active
            if window.active_at(at):
                drained += window.processors
        return min(drained, self.pool.total)

    def effective_capacity(self, time: float | None = None) -> int:
        """Processors in service at ``time``: ``total - drained``."""
        return self.pool.total - self.drained_processors(time)

    def next_capacity_event(self, now: float) -> Optional[float]:
        """Earliest window boundary (start or end) strictly after ``now``."""
        nxt: Optional[float] = None
        for window in self.capacity_schedule:
            for boundary in (window.start, window.end):
                if boundary > now + _EPS and (nxt is None or boundary < nxt):
                    nxt = boundary
        return nxt

    def capacity_drains(self, now: float) -> List[Tuple[float, float, int]]:
        """``(start, end, processors)`` of windows still (partly) ahead of ``now``.

        Backfilling strategies use this to subtract scheduled drains from
        their availability profiles; windows already over are dropped and the
        start is clamped to ``now``.
        """
        return [
            (max(window.start, now), window.end, window.processors)
            for window in self.capacity_schedule
            if window.end > now + _EPS
        ]

    # -- heterogeneous topology ---------------------------------------------
    @property
    def allocator(self) -> Optional[Allocator]:
        """The placement policy, or ``None`` on a scalar machine."""
        return self._allocator

    def _validate_window(self, window: DowntimeWindow) -> None:
        if self.topology is None:
            if window.group is not None:
                raise ValueError(
                    f"downtime window targets group {window.group!r} but the machine "
                    f"is homogeneous (no topology)"
                )
            return
        if window.group is None:
            if len(self.topology.groups) > 1:
                raise ValueError(
                    "downtime windows on a multi-group topology must name a group; "
                    f"have groups {self.topology.names}"
                )
            return
        self.topology.group(window.group)  # raises KeyError on unknown names

    def _window_group(self, window: DowntimeWindow) -> NodeGroup:
        assert self.topology is not None
        if window.group is None:
            return self.topology.groups[0]
        return self.topology.group(window.group)

    def _window_drain_vector(self, window: DowntimeWindow) -> ResourceVector:
        """The resource vector a window takes out of its group.

        Nodes leave with their proportional share of the group's memory and
        GPUs (floor division -- draining half a group's cpus drains at most
        half its memory), clipped so an oversized window never exceeds the
        group.
        """
        group = self._window_group(window)
        procs = min(window.processors, group.cpus)
        return ResourceVector(
            cpus=procs,
            memory=group.memory * procs // group.cpus,
            gpus=group.gpus * procs // group.cpus,
        )

    def _group_drains(self, at: float) -> Dict[str, ResourceVector]:
        """Drained vector per group at instant ``at`` (capped at group capacity)."""
        assert self.topology is not None
        drains: Dict[str, ResourceVector] = {}
        for window in self.capacity_schedule:
            if window.start - _EPS > at:
                break  # schedule is sorted by start; nothing later is active
            if not window.active_at(at):
                continue
            group = self._window_group(window)
            vector = self._window_drain_vector(window)
            drains[group.name] = drains.get(group.name, ResourceVector()) + vector
        for name, vector in drains.items():
            drains[name] = vector.minimum(self.topology.group(name).capacity)
        return drains

    def hetero_free_map(self, time: float | None = None) -> Dict[str, ResourceVector]:
        """Drain-adjusted free vector per group (hetero machines only).

        Each group's free vector is clipped independently: subtract the
        group's active drains from its free resources, never going negative.
        """
        if self._allocator is None:
            raise RuntimeError("hetero_free_map requires a heterogeneous machine")
        free = self._allocator.free_map()
        if not self.capacity_schedule:
            return free
        at = self._last_accounting_time if time is None else time
        for name, drained in self._group_drains(at).items():
            free[name] = free[name].clamped_sub(drained)
        return free

    def hetero_capacity_drains(
        self, now: float
    ) -> List[Tuple[float, float, str, ResourceVector]]:
        """``(start, end, group, vector)`` of drains still (partly) ahead of ``now``.

        The vector analogue of :meth:`capacity_drains`, consumed by the
        conservative discipline's per-group reservation profiles.
        """
        if self.topology is None:
            raise RuntimeError("hetero_capacity_drains requires a heterogeneous machine")
        return [
            (
                max(window.start, now),
                window.end,
                self._window_group(window).name,
                self._window_drain_vector(window),
            )
            for window in self.capacity_schedule
            if window.end > now + _EPS
        ]

    def group_allocation(self, job_id: int) -> GroupAllocation:
        """The vector grant held by running ``job_id`` (hetero machines only)."""
        try:
            return self._group_allocs[job_id]
        except KeyError:
            raise KeyError(f"job {job_id} holds no group allocation") from None

    def placement_group(self, job: Job) -> Optional[str]:
        """Where the allocator would place ``job`` right now, or ``None``.

        Read-only what-if query: the conservative discipline uses it to pick
        the group a backfill candidate's trial reservation debits.
        """
        if self._allocator is None:
            return None
        free = self.hetero_free_map() if self.capacity_schedule else self._allocator.free_map()
        return self._allocator.select_group(job_request(job), free, job.partition)

    def free_resource_vector(self) -> ResourceVector:
        """Aggregate drain-adjusted free vector (scalar machines report cpus only)."""
        if self._allocator is None:
            return ResourceVector(cpus=self.free_processors)
        total = ResourceVector()
        for vector in (
            self.hetero_free_map() if self.capacity_schedule else self._allocator.free_map()
        ).values():
            total = total + vector
        return total

    def total_resource_vector(self) -> ResourceVector:
        """Aggregate nameplate capacity vector."""
        if self.topology is None:
            return ResourceVector(cpus=self.pool.total)
        return self.topology.total

    # -- utilization accounting -------------------------------------------
    def _account(self, now: float) -> None:
        if now < self._last_accounting_time:
            raise ValueError(
                f"time moved backwards: {now} < {self._last_accounting_time}"
            )
        self._busy_area += self.pool.used * (now - self._last_accounting_time)
        self._last_accounting_time = now

    def utilization(self, now: float | None = None) -> float:
        """Average fraction of busy processors from t=0 to ``now``."""
        end = self._last_accounting_time if now is None else max(now, self._last_accounting_time)
        if end <= 0:
            return 0.0
        pending = self.pool.used * (end - self._last_accounting_time)
        return (self._busy_area + pending) / (end * self.num_processors)

    # -- lifecycle ---------------------------------------------------------
    def start(
        self,
        job: Job,
        now: float,
        estimator: Callable[[Job], float] | None = None,
        runtime: float | None = None,
    ) -> RunningJob:
        """Start ``job`` at time ``now``; raises if processors are unavailable.

        ``estimator`` (optional) is the scheduler's runtime estimator; when it
        is stateless and matches the active sorted release plan, the job's
        estimated release is inserted into the plan incrementally so the next
        reservation query needs no re-sort.  ``runtime`` (optional) overrides
        the job's actual runtime for this run -- the checkpoint-credit restart
        of a preempted job runs only its remaining runtime.
        """
        if job.job_id in self._running:
            raise RuntimeError(f"job {job.job_id} is already running")
        self._account(now)
        if self._allocator is not None:
            free = self.hetero_free_map() if self.capacity_schedule else None
            self._group_allocs[job.job_id] = self._allocator.allocate(
                job_request(job), free=free, partition=job.partition
            )
        elif self.capacity_schedule and job.requested_processors > self.free_processors:
            raise RuntimeError(
                f"job {job.job_id} requests {job.requested_processors} processors but only "
                f"{self.free_processors} are in service at t={now} "
                f"({self.drained_processors()} drained by the capacity schedule)"
            )
        allocation = self.pool.allocate(job.requested_processors)
        record = RunningJob(
            job=job, start_time=now, allocation=allocation, runtime_override=runtime
        )
        self._running[job.job_id] = record
        heapq.heappush(self._completion_heap, (record.end_time, job.job_id))
        self._version += 1
        if self._sorted_plan is not None:
            if estimator is self._sorted_plan_estimator:
                entry = (record.estimated_end_time(estimator), allocation.processors)
                insort(self._sorted_plan, entry)
                self._sorted_plan_entries[job.job_id] = entry
            else:
                self._drop_sorted_plan()
        return record

    # -- sorted release plan ------------------------------------------------
    def _drop_sorted_plan(self) -> None:
        self._sorted_plan = None
        self._sorted_plan_estimator = None
        self._sorted_plan_entries.clear()

    def _sorted_plan_remove(self, job_id: int) -> None:
        entry = self._sorted_plan_entries.pop(job_id, None)
        if entry is None or self._sorted_plan is None:
            return
        index = bisect_left(self._sorted_plan, entry)
        # Equal entries are interchangeable for reservation queries; remove
        # the first exact match in the equal run.
        while self._sorted_plan[index] != entry:  # pragma: no cover - defensive
            index += 1
        del self._sorted_plan[index]

    def _sorted_releases(
        self, estimator: Callable[[Job], float]
    ) -> List[Tuple[float, int]]:
        """Sorted ``(estimated_end, processors)`` plan for a stateless estimator.

        Built once from the running set and maintained incrementally by
        :meth:`start` / :meth:`release_completed`; statelessness guarantees
        the entries cannot go stale between queries.
        """
        if self._sorted_plan is None or self._sorted_plan_estimator is not estimator:
            entries = {
                job_id: (record.estimated_end_time(estimator), record.allocation.processors)
                for job_id, record in self._running.items()
            }
            self._sorted_plan = sorted(entries.values())
            self._sorted_plan_estimator = estimator
            self._sorted_plan_entries = entries
        return self._sorted_plan

    def _heap_entry_live(self, end_time: float, job_id: int) -> bool:
        record = self._running.get(job_id)
        return record is not None and record.end_time == end_time

    def next_completion_time(self) -> Optional[float]:
        """Earliest true completion time among running jobs, or ``None`` if idle."""
        heap = self._completion_heap
        while heap and not self._heap_entry_live(*heap[0]):
            heapq.heappop(heap)
        return heap[0][0] if heap else None

    def last_completion_time(self) -> Optional[float]:
        """Latest true completion time among running jobs, or ``None`` if idle.

        The simulator's skip-ahead fast path uses this to drain the machine in
        a single jump once no waiting or future jobs remain.
        """
        if not self._running:
            return None
        return max(record.end_time for record in self._running.values())

    def release_completed(self, now: float) -> List[RunningJob]:
        """Release every running job whose true end time is <= ``now``."""
        finished: List[RunningJob] = []
        heap = self._completion_heap
        while heap and heap[0][0] <= now + 1e-9:
            end_time, job_id = heapq.heappop(heap)
            if not self._heap_entry_live(end_time, job_id):
                continue
            record = self._running[job_id]
            # Account utilization up to the completion instant (clamped so a
            # completion that technically precedes the last accounting point,
            # e.g. released late within the same timestep, never rewinds time).
            self._account(max(min(record.end_time, now), self._last_accounting_time))
            self.pool.release(record.allocation)
            if self._allocator is not None:
                self._allocator.release(self._group_allocs.pop(job_id))
            del self._running[job_id]
            self._sorted_plan_remove(job_id)
            finished.append(record)
        if finished:
            self._version += 1
        self._account(now)
        return finished

    def release(self, job_id: int) -> RunningJob:
        """Forcefully release a single running job (used by tests and what-if analysis)."""
        record = self._running.pop(job_id, None)
        if record is None:
            raise KeyError(f"job {job_id} is not running")
        self.pool.release(record.allocation)
        if self._allocator is not None:
            self._allocator.release(self._group_allocs.pop(job_id))
        self._version += 1
        self._sorted_plan_remove(job_id)
        return record

    # -- failures -----------------------------------------------------------
    def add_capacity_window(self, window: DowntimeWindow) -> None:
        """Insert ``window`` into the capacity schedule, keeping it sorted.

        Injected windows are immediately visible to every availability query,
        both backfill disciplines' profiles (via :meth:`capacity_drains`), and
        the reservation walk -- exactly like windows known up front, except
        the scheduler learns about them only from this instant on.
        """
        self._validate_window(window)
        self.capacity_schedule = tuple(
            sorted([*self.capacity_schedule, window], key=lambda w: (w.start, w.end))
        )

    def fail_nodes(
        self, now: float, processors: int, repair_end: float, start: float | None = None
    ) -> List[RunningJob]:
        """``processors`` nodes fail; they rejoin the pool at ``repair_end``.

        Unlike a graceful drain, a failure **preempts**: running jobs are
        killed -- youngest start first, ties broken by job id, the Slurm-like
        requeue order -- until the busy count fits the remaining in-service
        capacity.  The failure manifests as a :class:`DowntimeWindow` over
        ``[start, repair_end)`` appended to the capacity schedule (``start``
        defaults to ``now``; an earlier start models a failure dated before
        the clock caught up, e.g. before the first arrival), so repair is an
        ordinary capacity boundary event.  A window already entirely in the
        past preempts nothing.  Returns the preempted jobs sorted by
        ``(start_time, job_id)``; the caller (the simulator) owns requeueing
        them under its restart policy.
        """
        if self.topology is not None:
            raise RuntimeError(
                "node-failure injection requires a homogeneous machine; "
                "heterogeneous clusters model outages as group-tagged drains"
            )
        start = now if start is None else min(start, now)
        if processors <= 0:
            raise ValueError(f"node failure must take down a positive processor count, got {processors}")
        if not repair_end > start:
            raise ValueError(f"repair_end must lie after the failure instant, got {repair_end} <= {start}")
        self._account(now)
        self.add_capacity_window(
            DowntimeWindow(start=start, end=repair_end, processors=min(processors, self.pool.total))
        )
        victims: List[RunningJob] = []
        while self._running and self.pool.used > self.effective_capacity(now):
            youngest = max(
                self._running.values(), key=lambda r: (r.start_time, r.job.job_id)
            )
            victims.append(self.release(youngest.job.job_id))
        victims.sort(key=lambda r: (r.start_time, r.job.job_id))
        return victims

    # -- reservations -------------------------------------------------------
    def _estimated_releases(
        self, estimator: Callable[[Job], float]
    ) -> List[Tuple[float, int]]:
        """``(estimated_end_time, processors)`` for every running job.

        Memoized per (estimator, running-set version): consecutive backfilling
        decisions at the same instant re-plan the same running set many times,
        and the estimator answers are stable within one simulated sequence.
        The list preserves the running-set insertion order so estimators that
        lazily cache per-job draws (e.g. ``NoisyPrediction``) are queried in
        exactly the order the uncached code would use.
        """
        cached = self._release_plan
        if cached is not None and cached[0] == self._version and cached[1] is estimator:
            return cached[2]
        releases = [
            (r.estimated_end_time(estimator), r.allocation.processors)
            for r in self._running.values()
        ]
        self._release_plan = (self._version, estimator, releases)
        return releases

    def earliest_start_estimate(
        self, job: Job, now: float, estimator: Callable[[Job], float]
    ) -> tuple[float, int]:
        """Estimate when ``job`` could start and the spare processors at that time.

        Walks running jobs in order of their *estimated* completion times,
        accumulating released processors until ``job`` fits.  Returns
        ``(reservation_time, extra_processors)`` where ``extra_processors`` is
        the number of processors that would remain free at the reservation
        time after setting aside the reserved job's processors -- the classic
        EASY "extra nodes" that backfilled jobs may hold past the reservation.

        With a capacity schedule the walk additionally honours scheduled
        drains: effective availability can *drop* at a window start and
        *recover* at a window end, so every window boundary is an event in the
        merged timeline and the returned reservation is the earliest instant
        at which the job fits within the in-service capacity.

        Heterogeneous machines delegate to :meth:`hetero_reservation` (same
        event walk over group vectors) and return its first two components.
        """
        if self._allocator is not None:
            reservation_time, extra, _ = self.hetero_reservation(job, now, estimator)
            return reservation_time, extra
        needed = job.requested_processors
        free = self.free_processors
        if needed <= free:
            return now, free - needed
        if self.capacity_schedule and (
            self.drained_processors(now) > 0 or self.next_capacity_event(now) is not None
        ):
            # A window is active or still ahead; otherwise the schedule is
            # entirely in the past and the plain (cached) walks below apply.
            return self._earliest_start_with_capacity(job, now, estimator)
        if getattr(estimator, "stateless", False):
            plan = self._sorted_releases(estimator)
            if not plan or plan[0][0] >= now:
                # Every estimated release lies at or after ``now`` (always the
                # case for over-estimating estimators), so the maintained plan
                # is the clamped, sorted release sequence as-is.
                releases = plan
            else:
                releases = sorted((max(t, now), p) for t, p in plan)
        else:
            releases = sorted(
                (max(end_time, now), processors)
                for end_time, processors in self._estimated_releases(estimator)
            )
        for end_time, processors in releases:
            free += processors
            if free >= needed:
                return end_time, free - needed
        raise RuntimeError(
            f"job {job.job_id} requests {needed} processors but the machine only has "
            f"{self.num_processors}"
        )

    def _earliest_start_with_capacity(
        self, job: Job, now: float, estimator: Callable[[Job], float]
    ) -> tuple[float, int]:
        """Merged release/capacity-boundary walk for machines with drains."""
        needed = job.requested_processors
        raw_free = self.pool.free
        releases = sorted(
            (max(end_time, now), processors)
            for end_time, processors in self._estimated_releases(estimator)
        )
        events = {t for t, _ in releases}
        for window in self.capacity_schedule:
            for boundary in (window.start, window.end):
                if boundary > now + _EPS:
                    events.add(boundary)
        released = 0
        index = 0
        for event_time in sorted(events):
            while index < len(releases) and releases[index][0] <= event_time + _EPS:
                released += releases[index][1]
                index += 1
            effective = raw_free + released - self.drained_processors(event_time)
            if effective >= needed:
                return event_time, effective - needed
        raise RuntimeError(
            f"job {job.job_id} requests {needed} processors but the machine never frees "
            f"enough in-service capacity (total {self.num_processors})"
        )

    def hetero_reservation(
        self, job: Job, now: float, estimator: Callable[[Job], float]
    ) -> tuple[float, int, Dict[str, ResourceVector]]:
        """Vector reservation walk: when and where ``job`` could start.

        The heterogeneous analogue of :meth:`earliest_start_estimate`: walk
        the merged timeline of estimated job releases and drain-window
        boundaries, accumulating freed vectors per group, until the
        allocator's placement policy finds a group that fits the request.

        Returns ``(reservation_time, extra_processors, spare_vectors)``:
        ``extra_processors`` is the aggregate spare cpu count at the
        reservation instant after setting the reserved job aside (the scalar
        EASY "extra nodes" number), and ``spare_vectors`` maps each group to
        the vector that would remain free then -- the per-resource envelope
        backfilled jobs may occupy without delaying the reservation
        (:meth:`DecisionPoint.would_delay` checks candidates against it).
        """
        if self._allocator is None:
            raise RuntimeError("hetero_reservation requires a heterogeneous machine")
        request = job_request(job)
        allocator = self._allocator
        if not allocator.feasible(request, job.partition):
            raise RuntimeError(
                f"job {job.job_id} requests {request.as_dict()} (partition "
                f"{job.partition}) but no node group can ever host it"
            )
        releases = sorted(
            (max(record.estimated_end_time(estimator), now), job_id)
            for job_id, record in self._running.items()
        )
        events = {now}
        events.update(time for time, _ in releases)
        for window in self.capacity_schedule:
            for boundary in (window.start, window.end):
                if boundary > now + _EPS:
                    events.add(boundary)
        base_free = allocator.free_map()
        freed: Dict[str, ResourceVector] = {}
        index = 0
        for event_time in sorted(events):
            while index < len(releases) and releases[index][0] <= event_time + _EPS:
                grant = self._group_allocs[releases[index][1]]
                freed[grant.group] = freed.get(grant.group, ResourceVector()) + grant.vector
                index += 1
            available: Dict[str, ResourceVector] = {}
            drains = self._group_drains(event_time) if self.capacity_schedule else {}
            for group in self.topology.groups:
                vector = base_free[group.name] + freed.get(group.name, ResourceVector())
                vector = vector.minimum(group.capacity)
                drained = drains.get(group.name)
                if drained is not None:
                    vector = vector.clamped_sub(drained)
                available[group.name] = vector
            target = allocator.select_group(request, available, job.partition)
            if target is None:
                continue
            spares = {
                name: vector - request if name == target else vector
                for name, vector in available.items()
            }
            extra = sum(vector.cpus for vector in spares.values())
            return event_time, extra, spares
        raise RuntimeError(
            f"job {job.job_id} requests {request.as_dict()} but the machine never "
            f"frees enough in-service capacity in any eligible group"
        )

    def reset(self) -> None:
        self._running.clear()
        self.pool.reset()
        if self._allocator is not None:
            self._allocator.reset()
            self._group_allocs.clear()
        self._busy_area = 0.0
        self._last_accounting_time = 0.0
        self._completion_heap.clear()
        self._version += 1
        self._release_plan = None
        self._drop_sorted_plan()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Machine(processors={self.num_processors}, free={self.free_processors}, "
            f"running={len(self._running)})"
        )


def total_requested_processors(jobs: Iterable[Job]) -> int:
    """Sum of processor requests over ``jobs`` (helper for saturation checks)."""
    return sum(job.requested_processors for job in jobs)
