"""Machine model: the processor pool plus the set of currently running jobs.

The scheduler simulator interacts with the cluster exclusively through this
class: start a job, ask which running job finishes next, release completed
jobs, and query availability.  Completion always uses the job's *actual*
runtime; runtime estimates only influence reservations and backfilling
decisions, never the physics of the simulated machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional

from repro.cluster.resources import Allocation, ResourcePool
from repro.workloads.job import Job

__all__ = ["RunningJob", "Machine"]


@dataclass(frozen=True, slots=True)
class RunningJob:
    """A job currently executing on the machine."""

    job: Job
    start_time: float
    allocation: Allocation

    @property
    def end_time(self) -> float:
        """True completion time (start + actual runtime)."""
        return self.start_time + self.job.runtime

    def estimated_end_time(self, estimator: Callable[[Job], float]) -> float:
        """Completion time as believed by the scheduler under ``estimator``.

        The estimate is never allowed to fall before the job's start time and,
        if the job has already exceeded a short estimate, the scheduler learns
        nothing new until it actually finishes, so the estimate is clamped to
        the true end time's past only by the caller-supplied ``now`` if needed.
        """
        return self.start_time + max(float(estimator(self.job)), 0.0)


class Machine:
    """Homogeneous cluster with running-job bookkeeping and utilization accounting."""

    def __init__(self, num_processors: int):
        self.pool = ResourcePool(total=num_processors)
        self._running: dict[int, RunningJob] = {}
        # Utilization accounting: integral of busy processors over time.
        self._busy_area = 0.0
        self._last_accounting_time = 0.0

    # -- properties -------------------------------------------------------
    @property
    def num_processors(self) -> int:
        return self.pool.total

    @property
    def free_processors(self) -> int:
        return self.pool.free

    @property
    def free_fraction(self) -> float:
        return self.pool.free_fraction

    @property
    def running_jobs(self) -> List[RunningJob]:
        """Running jobs ordered by true completion time."""
        return sorted(self._running.values(), key=lambda r: (r.end_time, r.job.job_id))

    @property
    def num_running(self) -> int:
        return len(self._running)

    def is_running(self, job_id: int) -> bool:
        return job_id in self._running

    def can_start(self, job: Job) -> bool:
        return self.pool.can_allocate(job.requested_processors)

    # -- utilization accounting -------------------------------------------
    def _account(self, now: float) -> None:
        if now < self._last_accounting_time:
            raise ValueError(
                f"time moved backwards: {now} < {self._last_accounting_time}"
            )
        self._busy_area += self.pool.used * (now - self._last_accounting_time)
        self._last_accounting_time = now

    def utilization(self, now: float | None = None) -> float:
        """Average fraction of busy processors from t=0 to ``now``."""
        end = self._last_accounting_time if now is None else max(now, self._last_accounting_time)
        if end <= 0:
            return 0.0
        pending = self.pool.used * (end - self._last_accounting_time)
        return (self._busy_area + pending) / (end * self.num_processors)

    # -- lifecycle ---------------------------------------------------------
    def start(self, job: Job, now: float) -> RunningJob:
        """Start ``job`` at time ``now``; raises if processors are unavailable."""
        if job.job_id in self._running:
            raise RuntimeError(f"job {job.job_id} is already running")
        self._account(now)
        allocation = self.pool.allocate(job.requested_processors)
        record = RunningJob(job=job, start_time=now, allocation=allocation)
        self._running[job.job_id] = record
        return record

    def next_completion_time(self) -> Optional[float]:
        """Earliest true completion time among running jobs, or ``None`` if idle."""
        if not self._running:
            return None
        return min(record.end_time for record in self._running.values())

    def release_completed(self, now: float) -> List[RunningJob]:
        """Release every running job whose true end time is <= ``now``."""
        finished = [r for r in self._running.values() if r.end_time <= now + 1e-9]
        finished.sort(key=lambda r: (r.end_time, r.job.job_id))
        for record in finished:
            # Account utilization up to the completion instant (clamped so a
            # completion that technically precedes the last accounting point,
            # e.g. released late within the same timestep, never rewinds time).
            self._account(max(min(record.end_time, now), self._last_accounting_time))
            self.pool.release(record.allocation)
            del self._running[record.job.job_id]
        self._account(now)
        return finished

    def release(self, job_id: int) -> RunningJob:
        """Forcefully release a single running job (used by tests and what-if analysis)."""
        record = self._running.pop(job_id, None)
        if record is None:
            raise KeyError(f"job {job_id} is not running")
        self.pool.release(record.allocation)
        return record

    # -- reservations -------------------------------------------------------
    def earliest_start_estimate(
        self, job: Job, now: float, estimator: Callable[[Job], float]
    ) -> tuple[float, int]:
        """Estimate when ``job`` could start and the spare processors at that time.

        Walks running jobs in order of their *estimated* completion times,
        accumulating released processors until ``job`` fits.  Returns
        ``(reservation_time, extra_processors)`` where ``extra_processors`` is
        the number of processors that would remain free at the reservation
        time after setting aside the reserved job's processors -- the classic
        EASY "extra nodes" that backfilled jobs may hold past the reservation.
        """
        needed = job.requested_processors
        free = self.free_processors
        if needed <= free:
            return now, free - needed
        releases = sorted(
            (max(r.estimated_end_time(estimator), now), r.allocation.processors)
            for r in self._running.values()
        )
        for end_time, processors in releases:
            free += processors
            if free >= needed:
                return end_time, free - needed
        raise RuntimeError(
            f"job {job.job_id} requests {needed} processors but the machine only has "
            f"{self.num_processors}"
        )

    def reset(self) -> None:
        self._running.clear()
        self.pool.reset()
        self._busy_area = 0.0
        self._last_accounting_time = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Machine(processors={self.num_processors}, free={self.free_processors}, "
            f"running={len(self._running)})"
        )


def total_requested_processors(jobs: Iterable[Job]) -> int:
    """Sum of processor requests over ``jobs`` (helper for saturation checks)."""
    return sum(job.requested_processors for job in jobs)
