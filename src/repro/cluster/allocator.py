"""Allocator layer: vector placement over node groups, separate from scheduling.

The scheduler/allocator split (AccaSim's dispatcher design): the backfill
discipline decides *which* job runs next, the allocator decides *where* it
runs -- which node group supplies the job's :class:`ResourceVector`.  The two
never mix: schedulers only ask feasibility/placement questions through the
:class:`Allocator` interface, and allocators never see queue priorities.

Two policies are provided behind one interface:

* :class:`FirstFitAllocator` -- scan groups in topology declaration order,
  place in the first group whose free vector fits the request;
* :class:`BestFitAllocator` -- place in the fitting group with the fewest
  cpus left over (deterministic tie-break: declaration order).

Accounting mirrors :class:`~repro.cluster.resources.ResourcePool` exactly:
explicit :class:`GroupAllocation` tokens, raising ``RuntimeError`` on
oversubscription, double release, and foreign tokens.  A one-group cpu-only
topology performs the scalar pool's integer arithmetic bit for bit (the
homogeneous-reduction contract, property-tested by
``tests/test_allocator.py``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.cluster.resources import ClusterTopology, NodeGroup, ResourceVector
from repro.workloads.job import Job

__all__ = [
    "GroupAllocation",
    "Allocator",
    "FirstFitAllocator",
    "BestFitAllocator",
    "make_allocator",
    "job_request",
    "ALLOCATOR_POLICIES",
]


def job_request(job: Job) -> ResourceVector:
    """The resource vector a job occupies while running.

    Memory follows the SWF convention: the per-processor *requested* memory if
    present, else the per-processor *used* memory, else zero -- scaled by the
    processor count.  ``-1`` is the SWF "missing" sentinel for both fields.
    """
    per_proc = job.requested_memory if job.requested_memory >= 0 else max(job.used_memory, 0)
    return ResourceVector(
        cpus=job.requested_processors,
        memory=per_proc * job.requested_processors,
        gpus=job.requested_gpus,
    )


@dataclass(frozen=True, slots=True)
class GroupAllocation:
    """A granted resource vector in one node group; opaque release token."""

    allocation_id: int
    group: str
    vector: ResourceVector

    @property
    def processors(self) -> int:
        """Cpu count of the grant (mirrors :attr:`Allocation.processors`)."""
        return self.vector.cpus


class Allocator:
    """Group-placement policy plus per-group vector accounting.

    Subclasses override :meth:`select_group`; everything else -- eligibility,
    conservation accounting, token discipline -- is shared.
    """

    name = "allocator"

    def __init__(self, topology: ClusterTopology):
        self.topology = topology
        self._free: Dict[str, ResourceVector] = {
            group.name: group.capacity for group in topology.groups
        }
        self._live: Dict[int, GroupAllocation] = {}
        self._ids = itertools.count()

    # -- queries -------------------------------------------------------------
    def free(self, group: str) -> ResourceVector:
        return self._free[group]

    def free_map(self) -> Dict[str, ResourceVector]:
        """Current free vector per group (a copy; safe to adjust for drains)."""
        return dict(self._free)

    def used(self, group: str) -> ResourceVector:
        return self.topology.group(group).capacity - self._free[group]

    @property
    def total_free(self) -> ResourceVector:
        total = ResourceVector()
        for vector in self._free.values():
            total = total + vector
        return total

    def eligible_groups(self, request: ResourceVector, partition: int = -1) -> Tuple[NodeGroup, ...]:
        """Groups that could *ever* host ``request``, in declaration order.

        A job whose partition id is claimed by a group is pinned to the
        claiming group(s); unclaimed partitions (or ``-1``) roam freely.
        Capacity feasibility is always required.
        """
        groups = self.topology.groups
        if partition >= 0 and any(g.partition == partition for g in groups):
            groups = tuple(g for g in groups if g.partition == partition)
        return tuple(g for g in groups if request.fits_in(g.capacity))

    def feasible(self, request: ResourceVector, partition: int = -1) -> bool:
        """Whether some eligible group could host ``request`` on an empty machine."""
        return bool(self.eligible_groups(request, partition))

    def select_group(
        self,
        request: ResourceVector,
        free: Mapping[str, ResourceVector],
        partition: int = -1,
    ) -> Optional[str]:
        """Pick the group to place ``request`` in given per-group free vectors.

        ``free`` is usually :meth:`free_map`, possibly reduced by active
        drains.  Returns ``None`` when no eligible group currently fits.
        """
        raise NotImplementedError

    def can_allocate(
        self,
        request: ResourceVector,
        free: Mapping[str, ResourceVector] | None = None,
        partition: int = -1,
    ) -> bool:
        if request.is_zero or request.cpus <= 0:
            return False
        return self.select_group(request, free if free is not None else self._free, partition) is not None

    # -- mutation ------------------------------------------------------------
    def allocate(
        self,
        request: ResourceVector,
        free: Mapping[str, ResourceVector] | None = None,
        partition: int = -1,
    ) -> GroupAllocation:
        """Place ``request`` and debit its group; raises if nothing fits.

        ``free`` (when given) constrains the *placement decision* -- e.g. the
        drain-adjusted availability -- but the debit always runs against the
        allocator's actual accounts and still raises on oversubscription, so a
        stale adjusted map can never corrupt the books.
        """
        if request.cpus <= 0:
            raise ValueError(f"cannot allocate a non-positive cpu count: {request.cpus}")
        if not self.feasible(request, partition):
            raise ValueError(
                f"request {request.as_dict()} (partition {partition}) exceeds every "
                f"node group's capacity"
            )
        group = self.select_group(request, free if free is not None else self._free, partition)
        if group is None:
            raise RuntimeError(
                f"insufficient resources: no eligible group currently fits {request.as_dict()}"
            )
        if not request.fits_in(self._free[group]):
            raise RuntimeError(
                f"group {group!r} over-subscribed: free {self._free[group].as_dict()}, "
                f"allocating {request.as_dict()}"
            )
        allocation = GroupAllocation(
            allocation_id=next(self._ids), group=group, vector=request
        )
        self._live[allocation.allocation_id] = allocation
        self._free[group] = self._free[group] - request
        return allocation

    def release(self, allocation: GroupAllocation) -> None:
        stored = self._live.pop(allocation.allocation_id, None)
        if stored is None:
            raise RuntimeError(
                f"allocation {allocation.allocation_id} is not live "
                f"(double release or foreign token)"
            )
        if stored != allocation:
            raise RuntimeError(
                f"allocation {allocation.allocation_id} token mismatch: "
                f"recorded {stored}, token says {allocation}"
            )
        self._free[allocation.group] = self._free[allocation.group] + allocation.vector

    def reset(self) -> None:
        self._live.clear()
        for group in self.topology.groups:
            self._free[group.name] = group.capacity

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(groups={self.topology.names}, "
            f"live={len(self._live)})"
        )


class FirstFitAllocator(Allocator):
    """Place in the first eligible group (declaration order) whose free vector fits."""

    name = "first_fit"

    def select_group(
        self,
        request: ResourceVector,
        free: Mapping[str, ResourceVector],
        partition: int = -1,
    ) -> Optional[str]:
        for group in self.eligible_groups(request, partition):
            if request.fits_in(free[group.name]):
                return group.name
        return None


class BestFitAllocator(Allocator):
    """Place in the fitting group leaving the fewest cpus free afterwards.

    Keeps large contiguous cpu blocks available for wide jobs; ties break by
    declaration order, which keeps placement deterministic.
    """

    name = "best_fit"

    def select_group(
        self,
        request: ResourceVector,
        free: Mapping[str, ResourceVector],
        partition: int = -1,
    ) -> Optional[str]:
        best: Optional[str] = None
        best_leftover = -1
        for group in self.eligible_groups(request, partition):
            available = free[group.name]
            if not request.fits_in(available):
                continue
            leftover = available.cpus - request.cpus
            if best is None or leftover < best_leftover:
                best = group.name
                best_leftover = leftover
        return best


#: Registered allocator policy names, in the order ``make_allocator`` accepts.
ALLOCATOR_POLICIES: Tuple[str, ...] = ("first_fit", "best_fit")


def make_allocator(policy: str, topology: ClusterTopology) -> Allocator:
    """Build the named allocator policy over ``topology``."""
    if policy == "first_fit":
        return FirstFitAllocator(topology)
    if policy == "best_fit":
        return BestFitAllocator(topology)
    raise KeyError(f"unknown allocator policy {policy!r}; available: {ALLOCATOR_POLICIES}")
