"""Resource accounting: the scalar processor pool and the typed resource vector.

The paper assumes a homogeneous HPC machine, so resource availability reduces
to a count of free processors (§3.2: "the availability is a percentage of
available computing nodes").  :class:`ResourcePool` is that scalar model and
stays the zero-overhead fast path for every homogeneous configuration.  The
pool hands out explicit :class:`Allocation` tokens so double-releases and
foreign releases are caught immediately instead of silently corrupting the
free count.

Heterogeneous clusters generalize the scalar to a :class:`ResourceVector`
(cpus, memory, gpus) over named :class:`NodeGroup` partitions collected into a
:class:`ClusterTopology`; placement over groups is the allocator layer's job
(:mod:`repro.cluster.allocator`).  The homogeneous-reduction contract
(docs/cluster.md): a one-group cpu-only topology performs exactly the integer
arithmetic of :class:`ResourcePool`, so scalar configurations stay
bit-identical.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

__all__ = [
    "Allocation",
    "ResourcePool",
    "ResourceVector",
    "NodeGroup",
    "ClusterTopology",
]

_RESOURCE_NAMES = ("cpus", "memory", "gpus")


@dataclass(frozen=True, slots=True)
class ResourceVector:
    """Typed resource quantities: processors, memory units, and GPUs.

    Components are non-negative integers.  Memory is an abstract integer unit
    (the SWF archives report KB; scenario transforms assign whatever unit the
    node groups declare -- only fits-within comparisons matter).  All
    arithmetic is elementwise, so a cpu-only vector degenerates to scalar
    integer arithmetic exactly.
    """

    cpus: int = 0
    memory: int = 0
    gpus: int = 0

    def __post_init__(self) -> None:
        for name in _RESOURCE_NAMES:
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"resource vector {name} must be non-negative, got {value}")

    def fits_in(self, other: "ResourceVector") -> bool:
        """Elementwise ``self <= other`` (the feasibility test)."""
        return (
            self.cpus <= other.cpus
            and self.memory <= other.memory
            and self.gpus <= other.gpus
        )

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            cpus=self.cpus + other.cpus,
            memory=self.memory + other.memory,
            gpus=self.gpus + other.gpus,
        )

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        """Elementwise difference; raises (via validation) if any component goes negative."""
        return ResourceVector(
            cpus=self.cpus - other.cpus,
            memory=self.memory - other.memory,
            gpus=self.gpus - other.gpus,
        )

    def clamped_sub(self, other: "ResourceVector") -> "ResourceVector":
        """Elementwise ``max(self - other, 0)`` (drain semantics: clip, never go negative)."""
        return ResourceVector(
            cpus=max(self.cpus - other.cpus, 0),
            memory=max(self.memory - other.memory, 0),
            gpus=max(self.gpus - other.gpus, 0),
        )

    def minimum(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            cpus=min(self.cpus, other.cpus),
            memory=min(self.memory, other.memory),
            gpus=min(self.gpus, other.gpus),
        )

    @property
    def is_zero(self) -> bool:
        return self.cpus == 0 and self.memory == 0 and self.gpus == 0

    def component(self, name: str) -> int:
        if name not in _RESOURCE_NAMES:
            raise KeyError(f"unknown resource {name!r}; expected one of {_RESOURCE_NAMES}")
        return getattr(self, name)

    def as_dict(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in _RESOURCE_NAMES}


@dataclass(frozen=True, slots=True)
class NodeGroup:
    """A named group of identical nodes, accounted as one aggregate capacity.

    Placement is group-granular (like a Slurm partition), not per-node bin
    packing: a job fits in a group when its request vector fits the group's
    free aggregate.  ``partition`` (optional, >= 0) binds the group to an SWF
    partition id -- jobs carrying that partition id may only run here.
    """

    name: str
    cpus: int
    memory: int = 0
    gpus: int = 0
    partition: int = -1

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("node group name must be non-empty")
        if self.cpus <= 0:
            raise ValueError(f"node group {self.name!r} must have positive cpus, got {self.cpus}")
        if self.memory < 0 or self.gpus < 0:
            raise ValueError(f"node group {self.name!r} memory/gpus must be non-negative")

    @property
    def capacity(self) -> ResourceVector:
        return ResourceVector(cpus=self.cpus, memory=self.memory, gpus=self.gpus)


@dataclass(frozen=True, slots=True)
class ClusterTopology:
    """An ordered collection of node groups describing a heterogeneous cluster.

    Group declaration order is load-bearing: first-fit scans it, and every
    deterministic tie-break uses it.  ``total_cpus`` plays the role the scalar
    ``num_processors`` plays for homogeneous machines (observation
    normalization, trace-width validation).
    """

    groups: tuple[NodeGroup, ...]

    def __post_init__(self) -> None:
        if not self.groups:
            raise ValueError("topology needs at least one node group")
        names = [group.name for group in self.groups]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate node group names in topology: {names}")

    @classmethod
    def homogeneous(cls, num_processors: int, name: str = "all") -> "ClusterTopology":
        """The trivial one-group cpu-only topology (reduces to the scalar model)."""
        return cls(groups=(NodeGroup(name=name, cpus=num_processors),))

    @property
    def total_cpus(self) -> int:
        return sum(group.cpus for group in self.groups)

    @property
    def total(self) -> ResourceVector:
        total = ResourceVector()
        for group in self.groups:
            total = total + group.capacity
        return total

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(group.name for group in self.groups)

    def group(self, name: str) -> NodeGroup:
        for candidate in self.groups:
            if candidate.name == name:
                return candidate
        raise KeyError(f"no node group named {name!r} (have {self.names})")

    def partition_owner(self, partition: int) -> NodeGroup | None:
        """The group claiming SWF ``partition``, or ``None`` if unclaimed."""
        if partition < 0:
            return None
        for group in self.groups:
            if group.partition == partition:
                return group
        return None


@dataclass(frozen=True, slots=True)
class Allocation:
    """A granted set of processors; opaque token returned by :meth:`ResourcePool.allocate`."""

    allocation_id: int
    processors: int


@dataclass
class ResourcePool:
    """Counting allocator over ``total`` identical processors."""

    total: int
    _free: int = field(init=False)
    _live: dict[int, int] = field(init=False, default_factory=dict)
    _ids: "itertools.count[int]" = field(init=False, default_factory=itertools.count, repr=False)

    def __post_init__(self) -> None:
        if self.total <= 0:
            raise ValueError(f"cluster must have a positive number of processors, got {self.total}")
        self._free = self.total

    @property
    def free(self) -> int:
        """Number of currently unallocated processors."""
        return self._free

    @property
    def used(self) -> int:
        return self.total - self._free

    @property
    def free_fraction(self) -> float:
        """Fraction of the machine that is idle (the observation feature in §3.2)."""
        return self._free / self.total

    def can_allocate(self, processors: int) -> bool:
        return 0 < processors <= self._free

    def allocate(self, processors: int) -> Allocation:
        """Reserve ``processors`` processors, raising if they are not available."""
        if processors <= 0:
            raise ValueError(f"cannot allocate a non-positive processor count: {processors}")
        if processors > self.total:
            raise ValueError(
                f"request for {processors} processors exceeds the machine size {self.total}"
            )
        if processors > self._free:
            raise RuntimeError(
                f"insufficient processors: requested {processors}, only {self._free} free"
            )
        allocation = Allocation(allocation_id=next(self._ids), processors=processors)
        self._live[allocation.allocation_id] = processors
        self._free -= processors
        return allocation

    def release(self, allocation: Allocation) -> None:
        """Return an allocation's processors to the pool."""
        stored = self._live.pop(allocation.allocation_id, None)
        if stored is None:
            raise RuntimeError(
                f"allocation {allocation.allocation_id} is not live (double release or foreign token)"
            )
        if stored != allocation.processors:
            raise RuntimeError(
                f"allocation {allocation.allocation_id} size mismatch: "
                f"recorded {stored}, token says {allocation.processors}"
            )
        self._free += stored

    def reset(self) -> None:
        """Release everything (used when a simulation is restarted)."""
        self._live.clear()
        self._free = self.total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResourcePool(total={self.total}, free={self._free}, live={len(self._live)})"
