"""Processor pool for a homogeneous cluster.

The paper assumes a homogeneous HPC machine, so resource availability reduces
to a count of free processors (§3.2: "the availability is a percentage of
available computing nodes").  The pool still hands out explicit
:class:`Allocation` tokens so double-releases and foreign releases are caught
immediately instead of silently corrupting the free count.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

__all__ = ["Allocation", "ResourcePool"]


@dataclass(frozen=True, slots=True)
class Allocation:
    """A granted set of processors; opaque token returned by :meth:`ResourcePool.allocate`."""

    allocation_id: int
    processors: int


@dataclass
class ResourcePool:
    """Counting allocator over ``total`` identical processors."""

    total: int
    _free: int = field(init=False)
    _live: dict[int, int] = field(init=False, default_factory=dict)
    _ids: "itertools.count[int]" = field(init=False, default_factory=itertools.count, repr=False)

    def __post_init__(self) -> None:
        if self.total <= 0:
            raise ValueError(f"cluster must have a positive number of processors, got {self.total}")
        self._free = self.total

    @property
    def free(self) -> int:
        """Number of currently unallocated processors."""
        return self._free

    @property
    def used(self) -> int:
        return self.total - self._free

    @property
    def free_fraction(self) -> float:
        """Fraction of the machine that is idle (the observation feature in §3.2)."""
        return self._free / self.total

    def can_allocate(self, processors: int) -> bool:
        return 0 < processors <= self._free

    def allocate(self, processors: int) -> Allocation:
        """Reserve ``processors`` processors, raising if they are not available."""
        if processors <= 0:
            raise ValueError(f"cannot allocate a non-positive processor count: {processors}")
        if processors > self.total:
            raise ValueError(
                f"request for {processors} processors exceeds the machine size {self.total}"
            )
        if processors > self._free:
            raise RuntimeError(
                f"insufficient processors: requested {processors}, only {self._free} free"
            )
        allocation = Allocation(allocation_id=next(self._ids), processors=processors)
        self._live[allocation.allocation_id] = processors
        self._free -= processors
        return allocation

    def release(self, allocation: Allocation) -> None:
        """Return an allocation's processors to the pool."""
        stored = self._live.pop(allocation.allocation_id, None)
        if stored is None:
            raise RuntimeError(
                f"allocation {allocation.allocation_id} is not live (double release or foreign token)"
            )
        if stored != allocation.processors:
            raise RuntimeError(
                f"allocation {allocation.allocation_id} size mismatch: "
                f"recorded {stored}, token says {allocation.processors}"
            )
        self._free += stored

    def reset(self) -> None:
        """Release everything (used when a simulation is restarted)."""
        self._live.clear()
        self._free = self.total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResourcePool(total={self.total}, free={self._free}, live={len(self._live)})"
