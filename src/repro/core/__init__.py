"""RLBackfilling: the paper's contribution.

* :mod:`repro.core.observation` -- fixed-size observation encoding of the
  waiting queue, the reserved job, and resource availability (§3.2).
* :mod:`repro.core.agent` -- the kernel-based policy network and MLP value
  network forming the actor-critic model (§3.3).
* :mod:`repro.core.environment` -- the RL environment wrapping the scheduling
  simulator: actions are backfilling choices, the reward is the bounded
  slowdown improvement over an SJF-ordered backfilling baseline (§3.4).
* :mod:`repro.core.trainer` -- the PPO training loop (§4.1.1).
* :mod:`repro.core.rlbackfill` -- the trained-policy backfilling strategy
  that plugs into :class:`repro.scheduler.Simulator` for evaluation.
* :mod:`repro.core.checkpoints` -- save/load trained agents.
"""

from repro.core.observation import ObservationConfig, ObservationBuilder
from repro.core.agent import RLBackfillAgent
from repro.core.environment import BackfillEnvironment, RewardConfig
from repro.core.trainer import Trainer, TrainerConfig, EpochStats, TrainingHistory
from repro.core.rlbackfill import RLBackfillPolicy
from repro.core.checkpoints import save_agent, load_agent

__all__ = [
    "ObservationConfig",
    "ObservationBuilder",
    "RLBackfillAgent",
    "BackfillEnvironment",
    "RewardConfig",
    "Trainer",
    "TrainerConfig",
    "EpochStats",
    "TrainingHistory",
    "RLBackfillPolicy",
    "save_agent",
    "load_agent",
]
