"""Observation encoding for the RLBackfilling agent (paper §3.2).

The observation covers three things: the current waiting queue, the selected
(reserved) job, and the resource availability.  Each job becomes a fixed
feature vector; the queue is sorted by submission time and truncated/padded
to ``max_queue_size`` slots (the paper's ``MAX_OBSV_SIZE``, default 128).
Resource availability is appended to every job vector rather than being a
separate padded scalar, exactly as the paper describes, so the kernel network
sees machine state alongside every job.

Two deviations are made explicit here (see also DESIGN.md):

* The reserved job occupies a normal slot but is flagged and masked so the
  agent can never pick it, per the paper.
* One extra slot encodes the **skip** action ("do not backfill anything at
  this opportunity").  The paper leaves implicit what the agent does when
  every candidate would delay the reservation; an explicit no-op keeps the
  action space well defined and lets the trained policy fall back to
  EASY-like passivity.  The skip slot reuses the reserved job's features with
  its own flag so the same kernel network scores it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.scheduler.events import DecisionPoint
from repro.workloads.job import Job

__all__ = ["ObservationConfig", "ObservationBuilder", "JOB_FEATURES"]

#: Number of features per job slot (see :meth:`ObservationBuilder._job_features`).
JOB_FEATURES = 10

#: Normalization caps (seconds) for the logarithmic time features.
_MAX_WAIT = 8.0 * 86400.0        # 8 days
_MAX_RUNTIME = 8.0 * 86400.0     # 8 days
_MAX_HORIZON = 8.0 * 86400.0


def _log_norm(value: float, cap: float) -> float:
    """Map ``value`` (seconds) into [0, 1] with a logarithmic scale."""
    value = min(max(value, 0.0), cap)
    return math.log1p(value) / math.log1p(cap)


@dataclass(frozen=True, slots=True)
class ObservationConfig:
    """Shape of the observation and action space."""

    max_queue_size: int = 128         # MAX_OBSV_SIZE in the paper
    job_features: int = JOB_FEATURES
    #: Add an explicit "do not backfill anything" action.  The paper's action
    #: space contains only the backfill candidates (the agent always starts
    #: one of them), which is the default here; the skip action is kept as an
    #: ablation switch.
    include_skip_action: bool = False

    def __post_init__(self) -> None:
        if self.max_queue_size <= 0:
            raise ValueError("max_queue_size must be positive")
        if self.job_features != JOB_FEATURES:
            raise ValueError(
                f"job_features is fixed at {JOB_FEATURES} by the encoder implementation"
            )

    @property
    def num_slots(self) -> int:
        """Job slots plus the optional skip slot."""
        return self.max_queue_size + (1 if self.include_skip_action else 0)

    @property
    def skip_slot(self) -> int | None:
        """Index of the skip (no-backfill) action, or ``None`` when disabled."""
        return self.max_queue_size if self.include_skip_action else None

    @property
    def observation_size(self) -> int:
        return self.num_slots * self.job_features

    @property
    def num_actions(self) -> int:
        return self.num_slots


class ObservationBuilder:
    """Builds flat observation vectors and action masks from decision points."""

    def __init__(self, config: ObservationConfig | None = None):
        self.config = config or ObservationConfig()

    # -- encoding ------------------------------------------------------------
    def _job_features(
        self,
        job: Job,
        decision: DecisionPoint,
        *,
        is_reserved: bool,
        is_skip: bool,
        can_run: bool,
    ) -> np.ndarray:
        machine = decision.machine
        total = machine.num_processors if machine is not None else max(job.requested_processors, 1)
        features = np.zeros(self.config.job_features, dtype=np.float64)
        features[0] = _log_norm(decision.time - job.submit_time, _MAX_WAIT)
        features[1] = _log_norm(job.requested_time, _MAX_RUNTIME)
        features[2] = min(job.requested_processors / total, 1.0)
        features[3] = 1.0 if can_run else 0.0
        features[4] = 1.0 if is_reserved else 0.0
        features[5] = 1.0 if is_skip else 0.0
        features[6] = decision.free_fraction
        features[7] = _log_norm(decision.reservation_time - decision.time, _MAX_HORIZON)
        features[8] = min(decision.extra_processors / total, 1.0) if total else 0.0
        features[9] = 1.0  # slot occupied
        return features

    def build(self, decision: DecisionPoint) -> Tuple[np.ndarray, np.ndarray, List[Optional[Job]]]:
        """Encode ``decision`` into ``(observation, action_mask, slot_jobs)``.

        ``slot_jobs[i]`` is the job occupying slot ``i`` (``None`` for padding
        and for the skip slot), which is how an action index is mapped back to
        the job to backfill.
        """
        cfg = self.config
        candidate_ids = {job.job_id for job in decision.candidates}
        queue = sorted(decision.queue, key=lambda j: (j.submit_time, j.job_id))
        queue = queue[: cfg.max_queue_size]

        observation = np.zeros((cfg.num_slots, cfg.job_features), dtype=np.float64)
        mask = np.zeros(cfg.num_slots, dtype=np.float64)
        slot_jobs: List[Optional[Job]] = [None] * cfg.num_slots

        for slot, job in enumerate(queue):
            is_reserved = job.job_id == decision.reserved_job.job_id
            can_run = job.job_id in candidate_ids
            observation[slot] = self._job_features(
                job, decision, is_reserved=is_reserved, is_skip=False, can_run=can_run
            )
            slot_jobs[slot] = job
            # The reserved job is visible but never a valid action (§3.2).
            if can_run and not is_reserved:
                mask[slot] = 1.0

        if cfg.skip_slot is not None:
            # Skip slot: always valid, encoded from the reserved job's features.
            observation[cfg.skip_slot] = self._job_features(
                decision.reserved_job, decision, is_reserved=True, is_skip=True, can_run=False
            )
            mask[cfg.skip_slot] = 1.0

        return observation.reshape(-1), mask, slot_jobs

    def action_to_job(self, action: int, slot_jobs: List[Optional[Job]]) -> Optional[Job]:
        """Translate an action index into the job to backfill (``None`` = skip)."""
        if not 0 <= action < self.config.num_actions:
            raise ValueError(f"action {action} outside [0, {self.config.num_actions})")
        if self.config.skip_slot is not None and action == self.config.skip_slot:
            return None
        return slot_jobs[action]
