"""Observation encoding for the RLBackfilling agent (paper §3.2).

The observation covers three things: the current waiting queue, the selected
(reserved) job, and the resource availability.  Each job becomes a fixed
feature vector; the queue is sorted by submission time and truncated/padded
to ``max_queue_size`` slots (the paper's ``MAX_OBSV_SIZE``, default 128).
Resource availability is appended to every job vector rather than being a
separate padded scalar, exactly as the paper describes, so the kernel network
sees machine state alongside every job.

Two deviations are made explicit here (see also DESIGN.md):

* The reserved job occupies a normal slot but is flagged and masked so the
  agent can never pick it, per the paper.
* One extra slot encodes the **skip** action ("do not backfill anything at
  this opportunity").  The paper leaves implicit what the agent does when
  every candidate would delay the reservation; an explicit no-op keeps the
  action space well defined and lets the trained policy fall back to
  EASY-like passivity.  The skip slot reuses the reserved job's features with
  its own flag so the same kernel network scores it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.allocator import job_request
from repro.scheduler.events import DecisionPoint
from repro.workloads.job import Job

__all__ = ["ObservationConfig", "ObservationBuilder", "JOB_FEATURES"]

#: Number of features per job slot (see :meth:`ObservationBuilder._job_features`)
#: in the homogeneous single-resource layout; each additional resource tracked
#: by :attr:`ObservationConfig.num_resources` appends two features per slot.
JOB_FEATURES = 10

#: Resources beyond cpus, in the order their feature pairs are appended.
_EXTRA_RESOURCES = ("memory", "gpus")

#: Normalization caps (seconds) for the logarithmic time features.  The
#: vectorized encoder in :meth:`ObservationBuilder.build` folds the wait and
#: runtime features into one ``log1p`` call, which requires the first two
#: caps to stay equal.
_MAX_WAIT = 8.0 * 86400.0        # 8 days
_MAX_RUNTIME = 8.0 * 86400.0     # 8 days
_MAX_HORIZON = 8.0 * 86400.0
assert _MAX_WAIT == _MAX_RUNTIME


def _log_norm(value: float, cap: float) -> float:
    """Map ``value`` (seconds) into [0, 1] with a logarithmic scale."""
    value = min(max(value, 0.0), cap)
    return math.log1p(value) / math.log1p(cap)


def _log_norm_array(values: np.ndarray, cap: float) -> np.ndarray:
    """Vectorized :func:`_log_norm`.

    ``np.log1p`` may differ from ``math.log1p`` by one ulp on some inputs, so
    this matches the scalar form to floating-point rounding, not bit-for-bit.
    """
    return np.log1p(np.clip(values, 0.0, cap)) / math.log1p(cap)


@dataclass(frozen=True, slots=True)
class ObservationConfig:
    """Shape of the observation and action space."""

    max_queue_size: int = 128         # MAX_OBSV_SIZE in the paper
    job_features: int = JOB_FEATURES
    #: Add an explicit "do not backfill anything" action.  The paper's action
    #: space contains only the backfill candidates (the agent always starts
    #: one of them), which is the default here; the skip action is kept as an
    #: ablation switch.
    include_skip_action: bool = False
    #: Resources visible per job slot: 1 = cpus only (the paper's layout,
    #: byte-identical to the pre-heterogeneity encoder), 2 adds memory, 3 adds
    #: GPUs.  Each extra resource appends ``(free_fraction_r, request_r)`` to
    #: every slot; ``job_features`` grows by two per extra resource (and is
    #: auto-derived when left at its default).
    num_resources: int = 1

    def __post_init__(self) -> None:
        if self.max_queue_size <= 0:
            raise ValueError("max_queue_size must be positive")
        if not 1 <= self.num_resources <= 1 + len(_EXTRA_RESOURCES):
            raise ValueError(
                f"num_resources must be in [1, {1 + len(_EXTRA_RESOURCES)}], "
                f"got {self.num_resources}"
            )
        expected = JOB_FEATURES + 2 * (self.num_resources - 1)
        if self.job_features == JOB_FEATURES and expected != JOB_FEATURES:
            object.__setattr__(self, "job_features", expected)
        elif self.job_features != expected:
            raise ValueError(
                f"job_features is fixed at {expected} for num_resources="
                f"{self.num_resources} by the encoder implementation"
            )

    @property
    def num_slots(self) -> int:
        """Job slots plus the optional skip slot."""
        return self.max_queue_size + (1 if self.include_skip_action else 0)

    @property
    def skip_slot(self) -> int | None:
        """Index of the skip (no-backfill) action, or ``None`` when disabled."""
        return self.max_queue_size if self.include_skip_action else None

    @property
    def observation_size(self) -> int:
        return self.num_slots * self.job_features

    @property
    def num_actions(self) -> int:
        return self.num_slots


class ObservationBuilder:
    """Builds flat observation vectors and action masks from decision points."""

    def __init__(self, config: ObservationConfig | None = None):
        self.config = config or ObservationConfig()

    # -- encoding ------------------------------------------------------------
    def _job_features(
        self,
        job: Job,
        decision: DecisionPoint,
        *,
        is_reserved: bool,
        is_skip: bool,
        can_run: bool,
    ) -> np.ndarray:
        machine = decision.machine
        total = machine.num_processors if machine is not None else max(job.requested_processors, 1)
        features = np.zeros(self.config.job_features, dtype=np.float64)
        features[0] = _log_norm(decision.time - job.submit_time, _MAX_WAIT)
        features[1] = _log_norm(job.requested_time, _MAX_RUNTIME)
        features[2] = min(job.requested_processors / total, 1.0)
        features[3] = 1.0 if can_run else 0.0
        features[4] = 1.0 if is_reserved else 0.0
        features[5] = 1.0 if is_skip else 0.0
        features[6] = decision.free_fraction
        features[7] = _log_norm(decision.reservation_time - decision.time, _MAX_HORIZON)
        features[8] = min(decision.extra_processors / total, 1.0) if total else 0.0
        features[9] = 1.0  # slot occupied
        if self.config.num_resources > 1:
            self._extra_resource_features(features, job, decision)
        return features

    def _extra_resource_features(
        self, features: np.ndarray, job: Job, decision: DecisionPoint
    ) -> None:
        """Fill the per-resource feature pairs beyond cpus (hetero layouts).

        For each extra resource ``r``: the machine's aggregate free fraction
        of ``r`` and the job's request as a fraction of the machine total
        (both 0 when the machine has none of ``r`` or is absent).
        """
        machine = decision.machine
        request = job_request(job)
        free_vec = machine.free_resource_vector() if machine is not None else None
        total_vec = machine.total_resource_vector() if machine is not None else None
        for index, name in enumerate(_EXTRA_RESOURCES[: self.config.num_resources - 1]):
            base = JOB_FEATURES + 2 * index
            total = total_vec.component(name) if total_vec is not None else 0
            if total > 0:
                features[base] = free_vec.component(name) / total
                features[base + 1] = min(request.component(name) / total, 1.0)

    def prepare(
        self, decision: DecisionPoint
    ) -> Tuple[List[Job], np.ndarray, List[Optional[Job]]]:
        """Cheap, feature-free half of the encoding.

        Returns ``(queue, mask, slot_jobs)`` where ``queue`` is the sorted,
        truncated slot queue that :meth:`encode_batch` will turn into
        features.  The environment uses this to decide whether a decision
        point is actionable (``mask``) without paying for feature encoding,
        and the vectorized engine uses it to defer encoding until the
        observations of every lane can be batched into one numpy pass.
        """
        cfg = self.config
        candidate_ids = {job.job_id for job in decision.candidates}
        if decision.queue_sorted:
            queue = decision.queue
        else:
            queue = sorted(decision.queue, key=lambda j: (j.submit_time, j.job_id))
        if len(queue) > cfg.max_queue_size:
            queue = queue[: cfg.max_queue_size]

        mask = np.zeros(cfg.num_slots, dtype=np.float64)
        slot_jobs: List[Optional[Job]] = [None] * cfg.num_slots
        slot_jobs[: len(queue)] = queue
        reserved_id = decision.reserved_job.job_id
        for slot, job in enumerate(queue):
            # The reserved job is visible but never a valid action (§3.2).
            if job.job_id in candidate_ids and job.job_id != reserved_id:
                mask[slot] = 1.0
        if cfg.skip_slot is not None:
            mask[cfg.skip_slot] = 1.0
        return queue, mask, slot_jobs

    def encode_batch(
        self,
        items: Sequence[tuple],
    ) -> np.ndarray:
        """Encode many prepared decisions into one ``(batch, observation_size)`` matrix.

        Each item is ``(decision, queue)`` -- with ``queue`` as returned by
        :meth:`prepare` -- or the extended form
        ``(decision, queue, static_rows, can_run)`` produced by
        :meth:`~repro.core.environment.BackfillEnvironment.pending_encode`,
        where ``static_rows`` holds the pre-gathered per-job columns
        ``(submit_time, requested_time, requested_processors, job_id)`` and
        ``can_run`` the candidate mask over the queue slots.  All queues are
        concatenated so every feature is computed with a single numpy
        operation across the whole batch -- the vectorized engine calls this
        once per lockstep iteration instead of once per lane.  A batch of one
        performs exactly the same operations as the serial path
        (:meth:`build` delegates here), which keeps the ``num_envs=1`` engine
        bit-identical to serial rollouts.
        """
        cfg = self.config
        batch = len(items)
        observation = np.zeros((batch, cfg.num_slots, cfg.job_features), dtype=np.float64)
        counts = [len(item[1]) for item in items]
        total_jobs = sum(counts)
        if total_jobs:
            # One pass over all queues gathers every per-job quantity; the
            # feature math below is pure numpy over the concatenation.
            # Columns: submit, requested_time, processors, is_reserved, can_run.
            blocks: List[np.ndarray] = []
            for item in items:
                decision, queue = item[0], item[1]
                reserved_id = decision.reserved_job.job_id
                if len(item) >= 4 and item[2] is not None and item[3] is not None:
                    static, can_run = item[2], item[3]
                    block = np.empty((len(queue), 5), dtype=np.float64)
                    block[:, 0:3] = static[:, 0:3]
                    block[:, 3] = static[:, 3] == reserved_id
                    block[:, 4] = can_run
                else:
                    cand_ids = {job.job_id for job in decision.candidates}
                    block = np.array(
                        [
                            (
                                j.submit_time,
                                j.requested_time,
                                j.requested_processors,
                                j.job_id == reserved_id,
                                j.job_id in cand_ids,
                            )
                            for j in queue
                        ],
                        dtype=np.float64,
                    ).reshape(len(queue), 5)
                blocks.append(block)
            raw = blocks[0] if batch == 1 else np.concatenate(blocks, axis=0)
            procs = raw[:, 2]
            # Per-decision scalars, repeated once per job of that decision.
            scalars = np.array(
                [
                    (
                        d.time,
                        d.free_fraction,
                        _log_norm(d.reservation_time - d.time, _MAX_HORIZON),
                        float(d.extra_processors),
                        float(d.machine.num_processors) if d.machine is not None else 0.0,
                    )
                    for d, *_ in items
                ],
                dtype=np.float64,
            )
            rep = np.repeat(scalars, counts, axis=0)
            total = np.where(rep[:, 4] > 0.0, rep[:, 4], np.maximum(procs, 1.0))

            features = np.zeros((total_jobs, cfg.job_features), dtype=np.float64)
            # _MAX_WAIT and _MAX_RUNTIME share one cap, so both logarithmic
            # time features go through a single log1p call.
            times = np.empty((2, total_jobs))
            times[0] = rep[:, 0] - raw[:, 0]
            times[1] = raw[:, 1]
            features[:, 0:2] = _log_norm_array(times, _MAX_WAIT).T
            features[:, 2] = np.minimum(procs / total, 1.0)
            features[:, 3] = raw[:, 4]  # can_run
            features[:, 4] = raw[:, 3]  # is_reserved
            # column 5 (is_skip) stays zero for queue slots.
            features[:, 6] = rep[:, 1]
            features[:, 7] = rep[:, 2]
            features[:, 8] = np.minimum(rep[:, 3] / total, 1.0)
            features[:, 9] = 1.0  # slot occupied
            if cfg.num_resources > 1:
                # Heterogeneous layouts are off the rollout hot path; a plain
                # per-item loop keeps the vectorized base features untouched.
                offset = 0
                for item, count in zip(items, counts):
                    decision, queue = item[0], item[1]
                    for slot, job in enumerate(queue):
                        self._extra_resource_features(
                            features[offset + slot], job, decision
                        )
                    offset += count

            offset = 0
            for row, count in enumerate(counts):
                observation[row, :count] = features[offset : offset + count]
                offset += count

        if cfg.skip_slot is not None:
            # Skip slot: always valid, encoded from the reserved job's features.
            for row, item in enumerate(items):
                decision = item[0]
                observation[row, cfg.skip_slot] = self._job_features(
                    decision.reserved_job,
                    decision,
                    is_reserved=True,
                    is_skip=True,
                    can_run=False,
                )
        return observation.reshape(batch, -1)

    def build(self, decision: DecisionPoint) -> Tuple[np.ndarray, np.ndarray, List[Optional[Job]]]:
        """Encode ``decision`` into ``(observation, action_mask, slot_jobs)``.

        ``slot_jobs[i]`` is the job occupying slot ``i`` (``None`` for padding
        and for the skip slot), which is how an action index is mapped back to
        the job to backfill.

        Composed of :meth:`prepare` + :meth:`encode_batch` with a batch of
        one; :meth:`_job_features` remains the scalar reference
        implementation and agrees with the vectorized encoder to
        floating-point rounding (``np.log1p`` vs ``math.log1p`` can differ by
        one ulp).
        """
        queue, mask, slot_jobs = self.prepare(decision)
        observation = self.encode_batch([(decision, queue)])[0]
        return observation, mask, slot_jobs

    def action_to_job(self, action: int, slot_jobs: List[Optional[Job]]) -> Optional[Job]:
        """Translate an action index into the job to backfill (``None`` = skip)."""
        if not 0 <= action < self.config.num_actions:
            raise ValueError(f"action {action} outside [0, {self.config.num_actions})")
        if self.config.skip_slot is not None and action == self.config.skip_slot:
            return None
        return slot_jobs[action]
