"""Persisting trained RLBackfilling agents.

Checkpoints are a single ``.npz`` file containing every network parameter
plus the observation configuration, so a model trained on one trace can be
reloaded and evaluated on a different trace (the paper's Table 5 generality
experiment) without retraining.
"""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from repro.core.agent import RLBackfillAgent
from repro.core.observation import ObservationConfig

__all__ = ["save_agent", "load_agent"]

#: Version 2 keys every parameter by its qualified attribute path (e.g.
#: ``kernel/network.0.weight``), so a checkpoint can never load into the
#: wrong layer of an architecture that merely matches in count and shapes.
#: Version 1 (flat-index keys) is still readable through the deprecated
#: index fallback of :meth:`repro.rl.nn.Module.load_state_dict`.
_FORMAT_VERSION = 2
_READABLE_VERSIONS = (1, 2)


def save_agent(agent: RLBackfillAgent, path: Union[str, os.PathLike]) -> str:
    """Serialize ``agent`` to ``path`` (``.npz`` appended if missing)."""
    path = os.fspath(path)
    if not path.endswith(".npz"):
        path = path + ".npz"
    arrays: dict[str, np.ndarray] = {
        "__format_version__": np.array(_FORMAT_VERSION),
        "__max_queue_size__": np.array(agent.observation_config.max_queue_size),
        "__job_features__": np.array(agent.observation_config.job_features),
    }
    for key, value in agent.state_dict()["kernel"].items():
        arrays[f"kernel/{key}"] = value
    for key, value in agent.state_dict()["value"].items():
        arrays[f"value/{key}"] = value
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    np.savez(path, **arrays)
    return path


def load_agent(path: Union[str, os.PathLike]) -> RLBackfillAgent:
    """Load an agent previously stored with :func:`save_agent`."""
    path = os.fspath(path)
    if not os.path.exists(path) and os.path.exists(path + ".npz"):
        path = path + ".npz"
    with np.load(path) as data:
        version = int(data["__format_version__"])
        if version not in _READABLE_VERSIONS:
            raise ValueError(f"unsupported checkpoint format version {version}")
        config = ObservationConfig(max_queue_size=int(data["__max_queue_size__"]))
        kernel_state = {
            key.split("/", 1)[1]: data[key] for key in data.files if key.startswith("kernel/")
        }
        value_state = {
            key.split("/", 1)[1]: data[key] for key in data.files if key.startswith("value/")
        }
    agent = RLBackfillAgent(observation_config=config)
    # Hidden sizes are recovered from the stored arrays rather than assumed:
    # rebuild the networks if the default architecture does not match.
    try:
        agent.load_state_dict({"kernel": kernel_state, "value": value_state})
    except ValueError:
        agent = _rebuild_with_shapes(config, kernel_state, value_state)
    return agent


def _rebuild_with_shapes(
    config: ObservationConfig,
    kernel_state: dict[str, np.ndarray],
    value_state: dict[str, np.ndarray],
) -> RLBackfillAgent:
    """Reconstruct an agent whose hidden sizes match the checkpointed arrays."""
    kernel_hidden = _hidden_sizes_from_state(kernel_state)
    value_hidden = _hidden_sizes_from_state(value_state)
    agent = RLBackfillAgent(
        observation_config=config, kernel_hidden=kernel_hidden, value_hidden=value_hidden
    )
    agent.load_state_dict({"kernel": kernel_state, "value": value_state})
    return agent


def _hidden_sizes_from_state(state: dict[str, np.ndarray]) -> tuple[int, ...]:
    """Infer hidden layer widths from the stored weight matrices.

    Parameters are stored in ``named_parameters()`` order: weight, bias per
    Linear layer; weights are 2-D.  The hidden sizes are the output
    dimensions of every layer except the last.  Version-1 checkpoints use
    flat-index keys, which are sorted numerically; version-2 qualified-path
    keys keep their stored (definition) order.
    """
    keys = list(state)
    if keys and all(key.isdigit() for key in keys):
        keys.sort(key=int)
    weights = [state[key] for key in keys if state[key].ndim == 2]
    if not weights:
        raise ValueError("checkpoint contains no weight matrices")
    return tuple(int(w.shape[1]) for w in weights[:-1])
