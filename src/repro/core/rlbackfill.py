"""Trained-policy backfilling strategy.

Wraps a trained :class:`~repro.core.agent.RLBackfillAgent` so it can be used
as a :class:`~repro.scheduler.backfill.base.BackfillStrategy` inside the
ordinary simulator -- this is how the paper's Tables 4 and 5 evaluate the
learned model against the EASY baselines on sampled 1024-job sequences.
During evaluation the action with the highest probability is taken
deterministically (paper §3.3.1: no exploration at test time).
"""

from __future__ import annotations

import copy
from typing import Optional

from repro.core.agent import RLBackfillAgent
from repro.core.observation import ObservationBuilder
from repro.prediction.predictors import RuntimeEstimator
from repro.scheduler.backfill.base import BackfillStrategy
from repro.scheduler.events import DecisionPoint
from repro.utils.rng import SeedLike, as_rng
from repro.workloads.job import Job

__all__ = ["RLBackfillPolicy"]


class RLBackfillPolicy(BackfillStrategy):
    """Backfilling decisions delegated to a trained RL agent."""

    name = "RLBF"

    def __init__(
        self,
        agent: RLBackfillAgent,
        deterministic: bool = True,
        seed: SeedLike = None,
        label: str | None = None,
        row_block: int | None = None,
    ):
        """Wrap ``agent`` as a backfilling strategy.

        ``row_block`` pins the matmul row-block hint of this deployment site
        (see :func:`repro.rl.autograd.invariant_matmul`).  This strategy
        forwards **one** decision at a time, so ``row_block=1`` skips the
        1-row-to-16 padding of the default rollout block and recovers the
        serial forward cost.  To keep the hint site-local the agent is
        deep-copied before retagging -- the caller's agent (and any batched
        engine sharing it) keeps its own block, and outputs of the two sites
        may differ in the last ulp (each remains internally bit-stable).
        """
        if row_block is not None:
            agent = copy.deepcopy(agent)
            agent.kernel.set_forward_row_block(row_block)
            agent.value_net.set_forward_row_block(row_block)
        self.agent = agent
        self.row_block = row_block
        self.deterministic = bool(deterministic)
        self.rng = as_rng(seed)
        self.builder = ObservationBuilder(agent.observation_config)
        if label:
            self.name = label

    def select_backfill(
        self, decision: DecisionPoint, estimator: RuntimeEstimator
    ) -> Optional[Job]:
        observation, mask, slot_jobs = self.builder.build(decision)
        skip_actions = 1 if self.builder.config.skip_slot is not None else 0
        if mask.sum() <= skip_actions:
            # No real candidate fits in the observed queue window (e.g. every
            # fitting job sits beyond the MAX_OBSV_SIZE cut-off): pass.
            return None
        action, _, _ = self.agent.step(
            observation, mask, rng=self.rng, deterministic=self.deterministic
        )
        return self.builder.action_to_job(action, slot_jobs)

    def __repr__(self) -> str:
        return f"RLBackfillPolicy(agent={self.agent!r}, deterministic={self.deterministic})"
