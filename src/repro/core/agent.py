"""The RLBackfilling actor-critic model (paper §3.3).

*Policy network* -- a **kernel-based** network: a small 3-layer MLP is applied
to every job slot independently, producing one score per slot; a softmax over
the scores (after action masking) gives the probability of backfilling each
job.  Because the same kernel weights are shared across slots, the parameter
count is tiny and the network is insensitive to how many jobs are present.

*Value network* -- a plain 3-layer MLP over the concatenated (flattened)
observation that predicts the expected episode return, completing the
actor-critic pair used by PPO.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.observation import ObservationConfig
from repro.rl.autograd import Tensor
from repro.rl.nn import MLP
from repro.rl.ppo import ActorCritic
from repro.utils.rng import SeedLike, as_rng

__all__ = ["RLBackfillAgent"]


class RLBackfillAgent(ActorCritic):
    """Kernel policy network + MLP value network over queue observations."""

    def __init__(
        self,
        observation_config: ObservationConfig | None = None,
        kernel_hidden: Sequence[int] = (32, 16),
        value_hidden: Sequence[int] = (64, 32),
        seed: SeedLike = None,
    ):
        self.observation_config = observation_config or ObservationConfig()
        rng = as_rng(seed)
        features = self.observation_config.job_features
        # Kernel network: per-job score.  3 fully connected layers as in §3.3.1.
        self.kernel = MLP([features, *kernel_hidden, 1], activation="relu", seed=rng)
        # Value network: 3-layer MLP over the flattened observation (§3.3.2).
        self.value_net = MLP(
            [self.observation_config.observation_size, *value_hidden, 1],
            activation="tanh",
            seed=rng,
        )

    # -- ActorCritic interface ------------------------------------------------
    def policy_logits(self, observations: Tensor) -> Tensor:
        """Score every slot with the shared kernel network.

        ``observations`` has shape ``(batch, num_slots * job_features)``; the
        kernel sees one job vector at a time, so the batch and slot dimensions
        are folded together for the forward pass and unfolded afterwards.
        """
        cfg = self.observation_config
        batch = observations.shape[0]
        per_job = observations.reshape(batch * cfg.num_slots, cfg.job_features)
        scores = self.kernel(per_job)
        return scores.reshape(batch, cfg.num_slots)

    def value(self, observations: Tensor) -> Tensor:
        batch = observations.shape[0]
        return self.value_net(observations).reshape(batch)

    def policy_parameters(self) -> List[Tensor]:
        return self.kernel.parameters()

    def value_parameters(self) -> List[Tensor]:
        return self.value_net.parameters()

    # -- conveniences -----------------------------------------------------------
    def num_parameters(self) -> int:
        return self.kernel.num_parameters() + self.value_net.num_parameters()

    def state_dict(self):
        return {
            "kernel": self.kernel.state_dict(),
            "value": self.value_net.state_dict(),
        }

    def load_state_dict(self, state) -> None:
        self.kernel.load_state_dict(state["kernel"])
        self.value_net.load_state_dict(state["value"])

    def __repr__(self) -> str:
        cfg = self.observation_config
        return (
            f"RLBackfillAgent(slots={cfg.num_slots}, features={cfg.job_features}, "
            f"parameters={self.num_parameters()})"
        )
