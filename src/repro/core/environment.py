"""RL environment for learning backfilling decisions (paper §3.4).

Each episode schedules one job sequence sampled from a trace with the chosen
base scheduling policy; the agent is consulted at every backfilling
opportunity and picks which waiting job to start (or skips).  Rewards follow
the paper:

* every intermediate step returns 0 (the bounded-slowdown metric is only
  defined once the whole sequence is scheduled),
* the terminal step returns ``(baseline_bsld - agent_bsld) / baseline_bsld``,
  the percentage improvement over scheduling the same sequence with the base
  policy plus shortest-job-first backfilling,
* a large negative penalty is added immediately whenever a chosen backfill
  would delay the reserved job's start (the constraint EASY enforces by
  construction and the RL agent must learn).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Generator, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.machine import DowntimeWindow
from repro.cluster.resources import ClusterTopology
from repro.core.observation import ObservationBuilder, ObservationConfig
from repro.faults.plan import NodeFailure, RestartPolicy, as_restart_policy
from repro.prediction.predictors import RuntimeEstimator, UserEstimate
from repro.rl.env import Environment, StepResult
from repro.scheduler.backfill.base import BackfillStrategy
from repro.scheduler.backfill.easy import EasyBackfill
from repro.scheduler.events import DecisionPoint
from repro.scheduler.policies import PriorityPolicy, get_policy
from repro.scheduler.simulator import SimulationResult, Simulator
from repro.utils.rng import SeedLike, as_rng
from repro.workloads.job import Job, Trace
from repro.workloads.sampling import sample_sequence

__all__ = ["RewardConfig", "BackfillEnvironment"]


@dataclass(frozen=True, slots=True)
class RewardConfig:
    """Shaping of the RLBackfilling reward signal."""

    #: Immediate reward added when the chosen backfill would delay the
    #: reserved job (the paper's "large negative reward").
    delay_penalty: float = -0.5
    #: Scale applied to the terminal improvement reward.
    final_reward_scale: float = 1.0
    #: Judge delay violations with the job's actual runtime (True) or with the
    #: scheduler's runtime estimate (False).
    violation_uses_actual_runtime: bool = True
    #: Lower clip on the terminal improvement reward.  A single unlucky
    #: trajectory (tiny baseline bsld, huge agent bsld) would otherwise emit a
    #: reward of -50 or worse and dominate the epoch's gradient.
    min_final_reward: float = -10.0

    def __post_init__(self) -> None:
        if self.delay_penalty > 0:
            raise ValueError("delay_penalty must be non-positive")
        if self.final_reward_scale <= 0:
            raise ValueError("final_reward_scale must be positive")
        if self.min_final_reward >= 0:
            raise ValueError("min_final_reward must be negative")


class BackfillEnvironment(Environment):
    """Masked discrete-action environment around the scheduling simulator."""

    def __init__(
        self,
        trace: Trace,
        policy: PriorityPolicy | str = "FCFS",
        sequence_length: int = 256,
        observation_config: ObservationConfig | None = None,
        reward_config: RewardConfig | None = None,
        estimator: RuntimeEstimator | None = None,
        baseline_backfill: BackfillStrategy | None = None,
        num_processors: int | None = None,
        seed: SeedLike = None,
        max_reset_attempts: int = 25,
        training_pool_size: int | None = None,
        min_baseline_bsld: float | None = None,
        capacity_schedule: Sequence[DowntimeWindow] | None = None,
        node_failures: Sequence[NodeFailure] | None = None,
        restart_policy: RestartPolicy | str | None = None,
        topology: ClusterTopology | None = None,
        allocator: str = "first_fit",
    ):
        if sequence_length <= 0:
            raise ValueError("sequence_length must be positive")
        if training_pool_size is not None and training_pool_size <= 0:
            raise ValueError("training_pool_size must be positive when given")
        if min_baseline_bsld is not None and min_baseline_bsld < 1.0:
            raise ValueError("min_baseline_bsld cannot be below 1 (bsld is bounded below by 1)")
        self.trace = trace
        self.policy = get_policy(policy)
        self.sequence_length = int(sequence_length)
        self.observation_config = observation_config or ObservationConfig()
        self.reward_config = reward_config or RewardConfig()
        self.estimator = estimator if estimator is not None else UserEstimate()
        self.baseline_backfill = (
            baseline_backfill if baseline_backfill is not None else EasyBackfill(order="sjf")
        )
        self.num_processors = int(num_processors or trace.num_processors)
        # Scheduled node drains applied to every episode (agent and baseline
        # alike).  Capacity loss reaches the agent through the observation:
        # free_fraction, the reservation horizon, and the extra-processor
        # features are all computed off the capacity-aware machine state.
        self.capacity_schedule = tuple(capacity_schedule or ())
        # Injected node failures applied to every episode (agent and baseline
        # alike); victims requeue under the restart policy.  Like downtime,
        # the capacity loss reaches the agent through the observation -- the
        # failure's repair window joins the machine's schedule at the failure
        # instant, shifting free_fraction and the reservation features.
        self.node_failures = tuple(node_failures or ())
        self.restart_policy = as_restart_policy(restart_policy)
        # Heterogeneous node-group layout (None = the scalar homogeneous
        # machine).  Placement is the allocator's job; the agent keeps acting
        # on the same queue/mask interface either way.
        self.topology = topology
        self.allocator = allocator
        self.rng = as_rng(seed)
        self.max_reset_attempts = int(max_reset_attempts)
        self.builder = ObservationBuilder(self.observation_config)
        # Optional fixed pool of training sequences.  Reusing a modest pool of
        # sequences (instead of sampling a brand-new one per trajectory)
        # drastically reduces the variance of the episodic reward, which is
        # what makes training converge within a small-compute budget; the
        # paper's full budget (100 trajectories/epoch for hundreds of epochs)
        # achieves the same effect by brute force.
        self.training_pool_size = training_pool_size
        # Curriculum filter: only train on sequences whose baseline bsld is at
        # least this value.  Lightly loaded windows carry almost no learning
        # signal (backfilling cannot matter when the queue never builds up).
        self.min_baseline_bsld = min_baseline_bsld
        self._pool: List[List[Job]] = []
        self._pool_baselines: List[float] = []

        # Episode state.
        self._generator: Optional[Generator[DecisionPoint, Optional[Job], SimulationResult]] = None
        self._decision: Optional[DecisionPoint] = None
        self._slot_jobs: List[Optional[Job]] = []
        self._mask: Optional[np.ndarray] = None
        self._encode_queue: List[Job] = []
        self._jobs: List[Job] = []
        self._static_rows = np.empty((0, 4), dtype=np.float64)
        self._static_index: dict[int, int] = {}
        self.baseline_bsld: float = float("nan")
        self.last_result: Optional[SimulationResult] = None
        self.episode_steps = 0
        self.episode_violations = 0

    # -- vectorization ----------------------------------------------------------
    def clone(self, seed: SeedLike = None) -> "BackfillEnvironment":
        """An independent lane with this environment's configuration.

        Used by :class:`~repro.rl.vec_env.VecBackfillEnv` to build N rollout
        lanes from one template.  The clone gets its own sampling rng, its own
        (deep-copied) estimator and baseline strategy so per-sequence caches
        are never shared across lanes, and a fresh training pool.
        """
        return BackfillEnvironment(
            self.trace,
            policy=self.policy,
            sequence_length=self.sequence_length,
            observation_config=self.observation_config,
            reward_config=self.reward_config,
            estimator=copy.deepcopy(self.estimator),
            baseline_backfill=copy.deepcopy(self.baseline_backfill),
            num_processors=self.num_processors,
            seed=seed,
            max_reset_attempts=self.max_reset_attempts,
            training_pool_size=self.training_pool_size,
            min_baseline_bsld=self.min_baseline_bsld,
            capacity_schedule=self.capacity_schedule,
            node_failures=self.node_failures,
            restart_policy=self.restart_policy,
            topology=self.topology,
            allocator=self.allocator,
        )

    # -- Environment interface --------------------------------------------------
    @property
    def observation_size(self) -> int:
        return self.observation_config.observation_size

    @property
    def num_actions(self) -> int:
        return self.observation_config.num_actions

    def _make_simulator(self) -> Simulator:
        return Simulator(
            num_processors=self.num_processors,
            policy=self.policy,
            estimator=self.estimator,
            capacity_schedule=self.capacity_schedule,
            node_failures=self.node_failures,
            restart_policy=self.restart_policy,
            topology=self.topology,
            allocator=self.allocator,
        )

    def _baseline_bsld(self, jobs: Sequence[Job]) -> float:
        simulator = self._make_simulator()
        result = simulator.run(jobs, backfill=self.baseline_backfill)
        return result.bsld

    def _start_episode(
        self, jobs: Sequence[Job], cached_baseline: float | None = None
    ) -> Optional[np.ndarray]:
        """Begin an episode over ``jobs``; returns the first action mask or
        ``None`` if the sequence produces no backfilling opportunity.

        Only the cheap mask half of the first decision point is computed here;
        the observation is encoded by the caller (:meth:`reset`) once an
        episode start is accepted, so rejected reset attempts (no opportunity,
        or below the contention filter) never pay for feature encoding.
        """
        self._jobs = list(jobs)
        # Static per-job quantities (columns: submit_time, requested_time,
        # requested_processors, job_id), gathered once per episode so the
        # encoder can fancy-index them instead of touching every Job object
        # at every decision point.
        self._static_rows = np.array(
            [
                (j.submit_time, j.requested_time, j.requested_processors, j.job_id)
                for j in self._jobs
            ],
            dtype=np.float64,
        )
        self._static_index = {j.job_id: row for row, j in enumerate(self._jobs)}
        self.baseline_bsld = (
            cached_baseline if cached_baseline is not None else self._baseline_bsld(self._jobs)
        )
        self.estimator.reset()
        simulator = self._make_simulator()
        self._generator = simulator.decision_points(self._jobs)
        self.last_result = None
        self.episode_steps = 0
        self.episode_violations = 0
        try:
            self._decision = next(self._generator)
        except StopIteration as stop:
            # The whole sequence scheduled without a single backfilling
            # opportunity; there is nothing for the agent to learn from.
            self.last_result = stop.value
            self._generator = None
            self._decision = None
            return None
        return self._advance_to_actionable()

    def _advance_to_actionable(self) -> Optional[np.ndarray]:
        """Advance to the next actionable decision point, returning its mask.

        A decision point can carry candidates that all sit beyond the
        MAX_OBSV_SIZE window (the observation truncates the queue in FCFS
        order, §3.3.2).  The agent has no valid action there, so the
        environment declines the opportunity on its behalf -- the same
        behaviour the deployed :class:`RLBackfillPolicy` exhibits -- and moves
        on to the next decision point.  Returns ``None`` when the episode
        finishes while advancing.

        Only the cheap mask half of the encoding
        (:meth:`ObservationBuilder.prepare`) runs here; callers encode the
        observation either per decision (:meth:`encode_observation`) or
        batched across lanes (:meth:`ObservationBuilder.encode_batch` via
        :meth:`pending_encode`).
        """
        assert self._generator is not None
        skip_actions = 1.0 if self.observation_config.skip_slot is not None else 0.0
        while True:
            queue, mask, slots = self.builder.prepare(self._decision)
            if mask.sum() - skip_actions > 0.0:
                self._encode_queue = queue
                self._slot_jobs = slots
                self._mask = mask
                return mask
            try:
                self._decision = self._generator.send(None)
            except StopIteration as stop:
                self.last_result = stop.value
                self._generator = None
                self._decision = None
                return None

    def pending_encode(
        self,
    ) -> Tuple[DecisionPoint, List[Job], Optional[np.ndarray], Optional[np.ndarray]]:
        """The current decision point, prepared for feature encoding.

        Returns ``(decision, queue, static_rows, can_run)`` in the item
        format of :meth:`ObservationBuilder.encode_batch`: ``static_rows``
        carries the episode's pre-gathered per-job columns for the slot
        queue, and ``can_run`` is the candidate mask over those slots (the
        action mask restricted to the queue, which is exactly the can-run
        feature because the reserved job is never a candidate).  The
        vectorized engine collects these from every active lane and encodes
        them in one :meth:`ObservationBuilder.encode_batch` call.
        """
        if self._decision is None or self._mask is None:
            raise RuntimeError("no pending decision point to encode")
        queue = self._encode_queue
        indices = np.fromiter(
            (self._static_index[j.job_id] for j in queue), dtype=np.intp, count=len(queue)
        )
        return (
            self._decision,
            queue,
            self._static_rows[indices],
            self._mask[: len(queue)],
        )

    def encode_observation(self) -> np.ndarray:
        """Encode the current decision point's observation vector."""
        return self.builder.encode_batch([self.pending_encode()])[0]

    def reset(
        self, jobs: Sequence[Job] | None = None, encode: bool = True
    ) -> Tuple[Optional[np.ndarray], np.ndarray]:
        """Sample (or accept) a job sequence and run to the first decision point.

        With ``encode=False`` the returned observation is ``None`` and the
        caller encodes later through :meth:`pending_encode` -- the vectorized
        engine and the multiprocess lane pool use this to batch the first
        observation of restarted lanes together with the stepped lanes'
        observations in one :meth:`ObservationBuilder.encode_batch` pass.
        """
        mask = self._reset_to_mask(jobs)
        observation = self.encode_observation() if encode else None
        return observation, mask

    def _reset_to_mask(self, jobs: Sequence[Job] | None) -> np.ndarray:
        """Start a new episode and return the first action mask."""
        if jobs is not None:
            mask = self._start_episode(jobs)
            if mask is None:
                raise ValueError(
                    "the provided job sequence produced no backfilling opportunity; "
                    "the RL agent has no decisions to make on it"
                )
            return mask
        if self.training_pool_size is not None and len(self._pool) >= self.training_pool_size:
            index = int(self.rng.integers(0, len(self._pool)))
            mask = self._start_episode(
                self._pool[index], cached_baseline=self._pool_baselines[index]
            )
            if mask is None:  # pragma: no cover - pool entries were validated on insert
                raise RuntimeError("pooled training sequence lost its backfilling opportunities")
            return mask
        best: Tuple[float, Optional[List[Job]]] = (-1.0, None)
        for _ in range(self.max_reset_attempts):
            sampled = sample_sequence(self.trace, self.sequence_length, seed=self.rng)
            mask = self._start_episode(sampled)
            if mask is None:
                continue
            contended_enough = (
                self.min_baseline_bsld is None or self.baseline_bsld >= self.min_baseline_bsld
            )
            if contended_enough:
                if self.training_pool_size is not None:
                    self._pool.append(sampled)
                    self._pool_baselines.append(self.baseline_bsld)
                return mask
            if self.baseline_bsld > best[0]:
                best = (self.baseline_bsld, sampled)
        if best[1] is not None:
            # No sequence met the contention filter; fall back to the most
            # contended one seen so the episode can still proceed.
            mask = self._start_episode(best[1], cached_baseline=best[0])
            if mask is not None:
                if self.training_pool_size is not None:
                    self._pool.append(best[1])
                    self._pool_baselines.append(best[0])
                return mask
        raise RuntimeError(
            f"could not sample a job sequence with backfilling opportunities from trace "
            f"{self.trace.name!r} after {self.max_reset_attempts} attempts"
        )

    def step(self, action: int, encode: bool = True) -> StepResult:
        """Apply ``action`` and advance to the next actionable decision point.

        With ``encode=False`` the returned ``StepResult.observation`` is
        ``None`` and the caller encodes later -- the vectorized engine uses
        this to batch the feature encoding of all lanes into one numpy pass
        (:meth:`pending_encode` exposes what to encode).
        """
        if self._generator is None or self._decision is None or self._mask is None:
            raise RuntimeError("step() called before reset() or after the episode ended")
        self.validate_action(action, self._mask)
        chosen = self.builder.action_to_job(action, self._slot_jobs)

        reward = 0.0
        if chosen is not None:
            runtime_for_check = (
                chosen.runtime
                if self.reward_config.violation_uses_actual_runtime
                else float(self.estimator(chosen))
            )
            if self._decision.would_delay(chosen, runtime_for_check):
                reward += self.reward_config.delay_penalty
                self.episode_violations += 1

        self.episode_steps += 1
        try:
            self._decision = self._generator.send(chosen)
        except StopIteration as stop:
            self.last_result = stop.value
            self._generator = None
            self._decision = None
            return self._terminal_step(reward)

        mask = self._advance_to_actionable()
        if mask is None:
            # The rest of the sequence scheduled itself without another
            # actionable decision point.
            return self._terminal_step(reward)
        observation = self.encode_observation() if encode else None
        return StepResult(observation=observation, mask=mask, reward=reward, done=False, info={})

    def _terminal_step(self, reward_so_far: float) -> StepResult:
        """Build the terminal :class:`StepResult` once the simulation finished."""
        result = self.last_result
        if result is None:  # pragma: no cover - defensive
            raise RuntimeError("terminal step requested before the simulation finished")
        reward = reward_so_far + self._final_reward(result)
        observation = np.zeros(self.observation_size, dtype=np.float64)
        mask = np.zeros(self.num_actions, dtype=np.float64)
        info = {
            "bsld": result.bsld,
            "baseline_bsld": self.baseline_bsld,
            "violations": self.episode_violations,
            "steps": self.episode_steps,
        }
        return StepResult(observation=observation, mask=mask, reward=reward, done=True, info=info)

    # -- reward ---------------------------------------------------------------
    def _final_reward(self, result: SimulationResult) -> float:
        """Percentage bounded-slowdown improvement over the SJF-backfill baseline."""
        if not np.isfinite(self.baseline_bsld) or self.baseline_bsld <= 0:
            return 0.0
        improvement = (self.baseline_bsld - result.bsld) / self.baseline_bsld
        improvement = max(improvement, self.reward_config.min_final_reward)
        return self.reward_config.final_reward_scale * improvement

    # -- evaluation helper ------------------------------------------------------
    def evaluate_baselines(self, jobs: Sequence[Job]) -> dict[str, float]:
        """bsld of the base policy with several heuristic backfills on ``jobs``.

        Used by examples and tests to compare the trained agent against
        EASY-style baselines on exactly the same sequence.
        """
        from repro.prediction.predictors import ActualRuntime
        from repro.scheduler.backfill.none import NoBackfill

        results = {}
        for label, backfill, estimator in (
            ("no-backfill", NoBackfill(), self.estimator),
            ("easy", EasyBackfill(), UserEstimate()),
            ("easy-ar", EasyBackfill(), ActualRuntime()),
            ("easy-sjf", EasyBackfill(order="sjf"), self.estimator),
        ):
            simulator = Simulator(
                num_processors=self.num_processors,
                policy=self.policy,
                estimator=estimator,
                capacity_schedule=self.capacity_schedule,
                node_failures=self.node_failures,
                restart_policy=self.restart_policy,
                topology=self.topology,
                allocator=self.allocator,
            )
            results[label] = simulator.run(jobs, backfill=backfill).bsld
        return results
