"""PPO training loop for RLBackfilling (paper §4.1.1).

One epoch gathers ``trajectories_per_epoch`` trajectories; each trajectory is
one episode of :class:`~repro.core.environment.BackfillEnvironment` (a
sampled job sequence scheduled end to end with the agent making every
backfilling decision).  After the epoch's trajectories are collected the
policy and value networks are updated with PPO.

Rollout collection goes through the vectorized engine
(:class:`~repro.rl.vec_env.VecBackfillEnv`): ``TrainerConfig.num_envs``
independent environment lanes run in lockstep and share one batched forward
pass per decision step.  ``num_envs=1`` (the default) *is* the serial path --
one lane, batch-of-one forward passes -- and stays bit-identical to
:meth:`Trainer.run_trajectory` driven by hand.

The paper's configuration -- 100 trajectories of 256 jobs per epoch and 80
update iterations with a learning rate of 1e-3 -- is the default; the
experiment drivers scale these down for the benchmark harness.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Callable, Iterator, List, Optional, Sequence

import numpy as np

from repro.core.agent import RLBackfillAgent
from repro.core.environment import BackfillEnvironment
from repro.obs import engine_stats_delta, get_tracer
from repro.rl.buffer import TrajectoryBuffer
from repro.rl.lane_pool import make_rollout_engine
from repro.rl.ppo import PPO, PPOConfig, PPOUpdateStats
from repro.utils.logging import get_logger
from repro.utils.rng import SeedLike, as_rng, spawn_rngs

__all__ = ["TrainerConfig", "EpochStats", "TrainingHistory", "Trainer"]

logger = get_logger("core.trainer")


@dataclass(frozen=True, slots=True)
class TrainerConfig:
    """Training-loop hyper-parameters."""

    epochs: int = 50
    trajectories_per_epoch: int = 100
    ppo: PPOConfig = field(default_factory=PPOConfig)
    seed: Optional[int] = None
    #: Number of environment lanes stepped in lockstep by the vectorized
    #: rollout engine.  1 = the serial path (one lane, batch-of-one forward
    #: passes); larger values batch the policy forward pass across lanes.
    num_envs: int = 1
    #: Where the lanes live: ``"local"`` steps them in-process
    #: (:class:`~repro.rl.vec_env.VecBackfillEnv`); ``"process"`` shards them
    #: across a pool of worker processes exchanging fixed-layout arrays
    #: through shared memory (:class:`~repro.rl.lane_pool.ProcessLanePool`).
    backend: str = "local"
    #: Worker-process count for the process backend (``None`` = one per
    #: available core, capped at ``num_envs``).  Ignored by the local backend.
    num_workers: Optional[int] = None
    #: Drain-phase work stealing for the process backend: lanes that finish
    #: while the epoch drains immediately start next-epoch episodes, which
    #: are banked and credited to the next collection call.
    work_stealing: bool = True
    #: Round scheduling of the process backend: 1 = lockstep (the
    #: bit-identical path), 2 = double-buffered lane cohorts that overlap the
    #: parent's batched forward pass with worker simulator stepping, plus
    #: worker-side background episode pre-sampling (see
    #: :class:`~repro.rl.lane_pool.ProcessLanePool`).  Ignored by the local
    #: backend, which steps lanes in this process.
    pipeline_depth: int = 1

    def __post_init__(self) -> None:
        if self.epochs <= 0:
            raise ValueError("epochs must be positive")
        if self.trajectories_per_epoch <= 0:
            raise ValueError("trajectories_per_epoch must be positive")
        if self.num_envs <= 0:
            raise ValueError("num_envs must be positive")
        if self.backend not in ("local", "process"):
            raise ValueError(f"backend must be 'local' or 'process', got {self.backend!r}")
        if self.num_workers is not None and self.num_workers <= 0:
            raise ValueError("num_workers must be positive when given")
        if self.pipeline_depth not in (1, 2):
            raise ValueError(
                "pipeline_depth must be 1 (lockstep) or 2 (double-buffered cohorts), "
                f"got {self.pipeline_depth}"
            )

    @classmethod
    def paper_scale(cls, epochs: int = 200) -> "TrainerConfig":
        """The configuration reported in the paper."""
        return cls(epochs=epochs, trajectories_per_epoch=100, ppo=PPOConfig())

    @classmethod
    def quick_scale(cls, epochs: int = 5, trajectories_per_epoch: int = 4) -> "TrainerConfig":
        """A reduced configuration for laptops, tests, and the benchmark harness."""
        return cls(
            epochs=epochs,
            trajectories_per_epoch=trajectories_per_epoch,
            ppo=PPOConfig(policy_iterations=15, value_iterations=15),
        )

    def with_epochs(self, epochs: int) -> "TrainerConfig":
        return replace(self, epochs=epochs)


@dataclass(frozen=True, slots=True)
class EpochStats:
    """Diagnostics of one training epoch (one point of the Figure 4 curves)."""

    epoch: int
    mean_episode_reward: float
    mean_bsld: float
    mean_baseline_bsld: float
    mean_violations: float
    steps: int
    policy_loss: float
    value_loss: float
    approximate_kl: float
    entropy: float
    wall_time_seconds: float

    @property
    def improvement_over_baseline(self) -> float:
        """Relative bsld improvement over the SJF-backfill baseline."""
        if self.mean_baseline_bsld <= 0:
            return 0.0
        return (self.mean_baseline_bsld - self.mean_bsld) / self.mean_baseline_bsld


@dataclass
class TrainingHistory:
    """Sequence of :class:`EpochStats` produced by one training run."""

    epochs: List[EpochStats] = field(default_factory=list)

    def append(self, stats: EpochStats) -> None:
        self.epochs.append(stats)

    def __len__(self) -> int:
        return len(self.epochs)

    def __iter__(self) -> Iterator[EpochStats]:
        return iter(self.epochs)

    def __getitem__(self, index: int) -> EpochStats:
        return self.epochs[index]

    @property
    def bslds(self) -> List[float]:
        """The y-axis of the paper's Figure 4 training curves."""
        return [e.mean_bsld for e in self.epochs]

    @property
    def rewards(self) -> List[float]:
        return [e.mean_episode_reward for e in self.epochs]

    def final(self) -> EpochStats:
        if not self.epochs:
            raise ValueError("training history is empty")
        return self.epochs[-1]

    def improved(self) -> bool:
        """Whether the last epoch's bsld beats the first epoch's (converging curve)."""
        if len(self.epochs) < 2:
            return False
        return self.epochs[-1].mean_bsld <= self.epochs[0].mean_bsld

    def to_rows(self) -> List[Sequence[float]]:
        return [
            (e.epoch, e.mean_bsld, e.mean_episode_reward, e.policy_loss, e.value_loss)
            for e in self.epochs
        ]


class Trainer:
    """Collects trajectories from a :class:`BackfillEnvironment` and runs PPO.

    Rollouts go through :class:`~repro.rl.vec_env.VecBackfillEnv` with
    ``config.num_envs`` lanes: lane 0 is ``environment`` itself, further
    lanes are independent clones.  Every lane has its own action-sampling
    rng (lane 0 uses the trainer rng, preserving bit-identical behaviour of
    the ``num_envs=1`` case with the serial :meth:`run_trajectory` loop).

    With ``config.backend == "process"`` the lanes are hosted by a
    :class:`~repro.rl.lane_pool.ProcessLanePool` instead: simulator stepping
    runs in worker processes while the batched forward pass stays here.  The
    worker owns its copy of each lane environment, so ``self.environment``
    no longer reflects rollout state (``last_result`` etc.); call
    :meth:`close` (or use the trainer as a context manager) to shut the
    worker pool down deterministically.
    """

    def __init__(
        self,
        environment: BackfillEnvironment,
        agent: RLBackfillAgent | None = None,
        config: TrainerConfig | None = None,
        seed: SeedLike = None,
    ):
        self.environment = environment
        self.config = config or TrainerConfig()
        self.agent = agent or RLBackfillAgent(
            observation_config=environment.observation_config, seed=self.config.seed
        )
        if self.agent.observation_config.num_actions != environment.num_actions:
            raise ValueError(
                "agent and environment disagree on the action space: "
                f"{self.agent.observation_config.num_actions} vs {environment.num_actions}"
            )
        self.ppo = PPO(self.agent, self.config.ppo, seed=seed)
        self.rng = as_rng(seed if seed is not None else self.config.seed)
        # Both backends derive lane environments through the same factory and
        # the same seed draws (which is what makes a one-worker process pool
        # bit-identical to the local engine), and the num_envs == 1 case
        # draws nothing from self.rng, so the serial path consumes exactly
        # the same rng stream as a hand-driven run_trajectory loop.
        self.vec_env = make_rollout_engine(
            environment,
            self.config.num_envs,
            seed=self.rng,
            backend=self.config.backend,
            num_workers=self.config.num_workers,
            work_stealing=self.config.work_stealing,
            pipeline_depth=self.config.pipeline_depth,
        )
        if self.config.num_envs == 1:
            self.lane_rngs = [self.rng]
        else:
            self.lane_rngs = [self.rng] + spawn_rngs(self.rng, self.config.num_envs - 1)
        # Snapshot of the engine's cumulative counters, so epoch-boundary
        # logging reports per-epoch deltas.
        self._engine_stats_snapshot: dict = {}

    # -- rollouts -----------------------------------------------------------
    def run_trajectory(self, buffer: TrajectoryBuffer) -> dict:
        """Roll out one full episode serially, storing every step in ``buffer``.

        Kept as the reference implementation of an episode; the training loop
        itself collects through :meth:`collect_rollouts`, whose ``num_envs=1``
        case is bit-identical to this method.
        """
        observation, mask = self.environment.reset()
        episode_reward = 0.0
        steps = 0
        while True:
            action, value, log_prob = self.agent.step(observation, mask, rng=self.rng)
            result = self.environment.step(action)
            buffer.store(observation, mask, action, result.reward, value, log_prob)
            episode_reward += result.reward
            steps += 1
            if result.done:
                buffer.finish_path(last_value=0.0)
                info = dict(result.info)
                info.update({"episode_reward": episode_reward, "episode_steps": steps})
                return info
            observation, mask = result.observation, result.mask

    def collect_rollouts(self, buffer: TrajectoryBuffer, num_trajectories: int) -> List[dict]:
        """Collect episodes through the vectorized engine; returns their infos."""
        return self.vec_env.rollout(
            self.agent, num_trajectories, buffer, rngs=self.lane_rngs
        )

    def _log_engine_stats(self, epoch: int) -> None:
        """Log this epoch's rollout-engine statistics (delta vs last epoch).

        Makes pipeline/stealing wins visible in training output: rounds, the
        worker idle fraction the pipelined cohorts shrink, pre-sampled resets
        consumed, and banked/credited stolen episodes.
        """
        stats_fn = getattr(self.vec_env, "stats", None)
        if stats_fn is None:  # pragma: no cover - every bundled engine has stats()
            return
        stats = stats_fn()
        previous, self._engine_stats_snapshot = self._engine_stats_snapshot, dict(stats)
        delta = engine_stats_delta(stats, previous)
        parts = []
        for key, value in delta.items():
            if isinstance(value, str):
                continue
            if isinstance(value, float):
                parts.append(f"{key}={value:.3f}")
            else:
                parts.append(f"{key}={value}")
        logger.info("epoch %d engine[%s]: %s", epoch, stats.get("engine", "?"), ", ".join(parts))

    # -- training -----------------------------------------------------------
    def train_epoch(self, epoch: int) -> EpochStats:
        tracer = get_tracer()
        start = time.perf_counter()
        buffer = TrajectoryBuffer(gamma=self.config.ppo.gamma, lam=self.config.ppo.lam)
        with tracer.span("trainer.collect_rollouts", cat="train", args={"epoch": epoch}):
            infos = self.collect_rollouts(buffer, self.config.trajectories_per_epoch)
        rewards: List[float] = [info["episode_reward"] for info in infos]
        bslds: List[float] = [info["bsld"] for info in infos]
        baselines: List[float] = [info["baseline_bsld"] for info in infos]
        violations: List[float] = [float(info["violations"]) for info in infos]
        steps = len(buffer)
        data = buffer.get()
        with tracer.span("trainer.ppo_update", cat="train", args={"epoch": epoch}):
            update: PPOUpdateStats = self.ppo.update(data)
        stats = EpochStats(
            epoch=epoch,
            mean_episode_reward=float(np.mean(rewards)),
            mean_bsld=float(np.mean(bslds)),
            mean_baseline_bsld=float(np.mean(baselines)),
            mean_violations=float(np.mean(violations)),
            steps=steps,
            policy_loss=update.policy_loss,
            value_loss=update.value_loss,
            approximate_kl=update.approximate_kl,
            entropy=update.entropy,
            wall_time_seconds=time.perf_counter() - start,
        )
        logger.info(
            "epoch %d: bsld=%.2f (baseline %.2f), reward=%.3f, steps=%d",
            epoch,
            stats.mean_bsld,
            stats.mean_baseline_bsld,
            stats.mean_episode_reward,
            steps,
        )
        self._log_engine_stats(epoch)
        return stats

    def train(
        self, callback: Callable[[EpochStats], None] | None = None
    ) -> TrainingHistory:
        """Run the full training loop and return the per-epoch history."""
        history = TrainingHistory()
        for epoch in range(1, self.config.epochs + 1):
            stats = self.train_epoch(epoch)
            history.append(stats)
            if callback is not None:
                callback(stats)
        return history

    # -- lifecycle ----------------------------------------------------------
    def close(self) -> None:
        """Release the rollout engine (shuts down process-backend workers).

        Idempotent; a no-op for the local backend.  The process pool also
        cleans itself up at garbage collection and interpreter exit, but
        explicit shutdown keeps worker lifetime deterministic in long-lived
        programs.
        """
        close = getattr(self.vec_env, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "Trainer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
