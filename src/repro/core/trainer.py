"""PPO training loop for RLBackfilling (paper §4.1.1).

One epoch gathers ``trajectories_per_epoch`` trajectories; each trajectory is
one episode of :class:`~repro.core.environment.BackfillEnvironment` (a
sampled job sequence scheduled end to end with the agent making every
backfilling decision).  After the epoch's trajectories are collected the
policy and value networks are updated with PPO.

The paper's configuration -- 100 trajectories of 256 jobs per epoch and 80
update iterations with a learning rate of 1e-3 -- is the default; the
experiment drivers scale these down for the benchmark harness.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Callable, Iterator, List, Optional, Sequence

import numpy as np

from repro.core.agent import RLBackfillAgent
from repro.core.environment import BackfillEnvironment
from repro.rl.buffer import TrajectoryBuffer
from repro.rl.ppo import PPO, PPOConfig, PPOUpdateStats
from repro.utils.logging import get_logger
from repro.utils.rng import SeedLike, as_rng

__all__ = ["TrainerConfig", "EpochStats", "TrainingHistory", "Trainer"]

logger = get_logger("core.trainer")


@dataclass(frozen=True, slots=True)
class TrainerConfig:
    """Training-loop hyper-parameters."""

    epochs: int = 50
    trajectories_per_epoch: int = 100
    ppo: PPOConfig = field(default_factory=PPOConfig)
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.epochs <= 0:
            raise ValueError("epochs must be positive")
        if self.trajectories_per_epoch <= 0:
            raise ValueError("trajectories_per_epoch must be positive")

    @classmethod
    def paper_scale(cls, epochs: int = 200) -> "TrainerConfig":
        """The configuration reported in the paper."""
        return cls(epochs=epochs, trajectories_per_epoch=100, ppo=PPOConfig())

    @classmethod
    def quick_scale(cls, epochs: int = 5, trajectories_per_epoch: int = 4) -> "TrainerConfig":
        """A reduced configuration for laptops, tests, and the benchmark harness."""
        return cls(
            epochs=epochs,
            trajectories_per_epoch=trajectories_per_epoch,
            ppo=PPOConfig(policy_iterations=15, value_iterations=15),
        )

    def with_epochs(self, epochs: int) -> "TrainerConfig":
        return replace(self, epochs=epochs)


@dataclass(frozen=True, slots=True)
class EpochStats:
    """Diagnostics of one training epoch (one point of the Figure 4 curves)."""

    epoch: int
    mean_episode_reward: float
    mean_bsld: float
    mean_baseline_bsld: float
    mean_violations: float
    steps: int
    policy_loss: float
    value_loss: float
    approximate_kl: float
    entropy: float
    wall_time_seconds: float

    @property
    def improvement_over_baseline(self) -> float:
        """Relative bsld improvement over the SJF-backfill baseline."""
        if self.mean_baseline_bsld <= 0:
            return 0.0
        return (self.mean_baseline_bsld - self.mean_bsld) / self.mean_baseline_bsld


@dataclass
class TrainingHistory:
    """Sequence of :class:`EpochStats` produced by one training run."""

    epochs: List[EpochStats] = field(default_factory=list)

    def append(self, stats: EpochStats) -> None:
        self.epochs.append(stats)

    def __len__(self) -> int:
        return len(self.epochs)

    def __iter__(self) -> Iterator[EpochStats]:
        return iter(self.epochs)

    def __getitem__(self, index: int) -> EpochStats:
        return self.epochs[index]

    @property
    def bslds(self) -> List[float]:
        """The y-axis of the paper's Figure 4 training curves."""
        return [e.mean_bsld for e in self.epochs]

    @property
    def rewards(self) -> List[float]:
        return [e.mean_episode_reward for e in self.epochs]

    def final(self) -> EpochStats:
        if not self.epochs:
            raise ValueError("training history is empty")
        return self.epochs[-1]

    def improved(self) -> bool:
        """Whether the last epoch's bsld beats the first epoch's (converging curve)."""
        if len(self.epochs) < 2:
            return False
        return self.epochs[-1].mean_bsld <= self.epochs[0].mean_bsld

    def to_rows(self) -> List[Sequence[float]]:
        return [
            (e.epoch, e.mean_bsld, e.mean_episode_reward, e.policy_loss, e.value_loss)
            for e in self.epochs
        ]


class Trainer:
    """Collects trajectories from a :class:`BackfillEnvironment` and runs PPO."""

    def __init__(
        self,
        environment: BackfillEnvironment,
        agent: RLBackfillAgent | None = None,
        config: TrainerConfig | None = None,
        seed: SeedLike = None,
    ):
        self.environment = environment
        self.config = config or TrainerConfig()
        self.agent = agent or RLBackfillAgent(
            observation_config=environment.observation_config, seed=self.config.seed
        )
        if self.agent.observation_config.num_actions != environment.num_actions:
            raise ValueError(
                "agent and environment disagree on the action space: "
                f"{self.agent.observation_config.num_actions} vs {environment.num_actions}"
            )
        self.ppo = PPO(self.agent, self.config.ppo, seed=seed)
        self.rng = as_rng(seed if seed is not None else self.config.seed)

    # -- rollouts -----------------------------------------------------------
    def run_trajectory(self, buffer: TrajectoryBuffer) -> dict:
        """Roll out one full episode, storing every step in ``buffer``."""
        observation, mask = self.environment.reset()
        episode_reward = 0.0
        steps = 0
        while True:
            action, value, log_prob = self.agent.step(observation, mask, rng=self.rng)
            result = self.environment.step(action)
            buffer.store(observation, mask, action, result.reward, value, log_prob)
            episode_reward += result.reward
            steps += 1
            if result.done:
                buffer.finish_path(last_value=0.0)
                info = dict(result.info)
                info.update({"episode_reward": episode_reward, "episode_steps": steps})
                return info
            observation, mask = result.observation, result.mask

    # -- training -----------------------------------------------------------
    def train_epoch(self, epoch: int) -> EpochStats:
        start = time.perf_counter()
        buffer = TrajectoryBuffer(gamma=self.config.ppo.gamma, lam=self.config.ppo.lam)
        rewards: List[float] = []
        bslds: List[float] = []
        baselines: List[float] = []
        violations: List[float] = []
        for _ in range(self.config.trajectories_per_epoch):
            info = self.run_trajectory(buffer)
            rewards.append(info["episode_reward"])
            bslds.append(info["bsld"])
            baselines.append(info["baseline_bsld"])
            violations.append(info["violations"])
        steps = len(buffer)
        data = buffer.get()
        update: PPOUpdateStats = self.ppo.update(data)
        stats = EpochStats(
            epoch=epoch,
            mean_episode_reward=float(np.mean(rewards)),
            mean_bsld=float(np.mean(bslds)),
            mean_baseline_bsld=float(np.mean(baselines)),
            mean_violations=float(np.mean(violations)),
            steps=steps,
            policy_loss=update.policy_loss,
            value_loss=update.value_loss,
            approximate_kl=update.approximate_kl,
            entropy=update.entropy,
            wall_time_seconds=time.perf_counter() - start,
        )
        logger.info(
            "epoch %d: bsld=%.2f (baseline %.2f), reward=%.3f, steps=%d",
            epoch,
            stats.mean_bsld,
            stats.mean_baseline_bsld,
            stats.mean_episode_reward,
            steps,
        )
        return stats

    def train(
        self, callback: Callable[[EpochStats], None] | None = None
    ) -> TrainingHistory:
        """Run the full training loop and return the per-epoch history."""
        history = TrainingHistory()
        for epoch in range(1, self.config.epochs + 1):
            stats = self.train_epoch(epoch)
            history.append(stats)
            if callback is not None:
                callback(stats)
        return history
