"""HPC batch scheduling simulator: policies, backfilling strategies, metrics."""

from repro.scheduler.metrics import (
    JobRecord,
    ScheduleMetrics,
    bounded_slowdown,
    compute_metrics,
)
from repro.scheduler.policies import (
    PriorityPolicy,
    FCFS,
    SJF,
    WFP3,
    F1,
    CustomPolicy,
    get_policy,
    available_policies,
)
from repro.scheduler.events import DecisionPoint, JobArrival, JobCompletion
from repro.scheduler.backfill import (
    BackfillStrategy,
    NoBackfill,
    EasyBackfill,
    ConservativeBackfill,
    GreedyBackfill,
)
from repro.scheduler.simulator import Simulator, SimulationResult

__all__ = [
    "JobRecord",
    "ScheduleMetrics",
    "bounded_slowdown",
    "compute_metrics",
    "PriorityPolicy",
    "FCFS",
    "SJF",
    "WFP3",
    "F1",
    "CustomPolicy",
    "get_policy",
    "available_policies",
    "DecisionPoint",
    "JobArrival",
    "JobCompletion",
    "BackfillStrategy",
    "NoBackfill",
    "EasyBackfill",
    "ConservativeBackfill",
    "GreedyBackfill",
    "Simulator",
    "SimulationResult",
]
