"""Discrete-event HPC batch scheduling simulator.

The simulator replays a job sequence against a homogeneous machine under a
base priority policy (FCFS, SJF, WFP3, F1) and a backfilling strategy.  It is
the RL-compatible simulator the paper builds on (the RLScheduler simulator):
the core loop is a generator that *yields* a
:class:`~repro.scheduler.events.DecisionPoint` whenever a backfilling
opportunity arises and receives the chosen job in response.  Heuristic
strategies (EASY, conservative, ...) are driven by :meth:`Simulator.run`;
the RL training environment drives the same generator step by step.

Simulation rules (matching the paper's setting):

* Jobs are rigid: a job occupies exactly ``requested_processors`` processors
  for exactly its *actual* runtime once started.
* The base policy picks the highest-priority waiting job; if it fits it
  starts immediately, otherwise a reservation is computed from the runtime
  estimator and backfilling is attempted.
* Runtime estimates affect only reservations and backfilling checks, never
  the simulated completion times.
"""

from __future__ import annotations

import math
from bisect import insort
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Generator, Iterable, List, Optional, Sequence

from repro.cluster.allocator import job_request, make_allocator
from repro.cluster.machine import DowntimeWindow, Machine
from repro.cluster.resources import ClusterTopology
from repro.faults.plan import NodeFailure, RestartPolicy, as_restart_policy
from repro.obs import get_metrics, metrics_enabled
from repro.prediction.predictors import RuntimeEstimator, UserEstimate
from repro.scheduler.backfill.base import BackfillStrategy
from repro.scheduler.backfill.none import NoBackfill
from repro.scheduler.events import DecisionPoint
from repro.scheduler.metrics import BSLD_THRESHOLD, JobRecord, ScheduleMetrics, compute_metrics
from repro.scheduler.policies import PriorityPolicy, get_policy
from repro.workloads.job import Job

__all__ = [
    "Simulator",
    "SimulationResult",
    "OnlineSession",
    "ServedDecision",
    "capture_decisions",
]

_EPS = 1e-9

# Hot-path instrumentation (docs/observability.md).  Handles are resolved
# once at import.  The event loop tallies plain ints on _SimState (a per-call
# Counter.inc() in the innermost loops costs ~5% of a simulator run even
# disabled) and publishes through _flush_sim_counters at sequence end
# (offline) or per processed event batch (OnlineSession).  These count
# *deterministic* events -- no clocks -- so enabling collection cannot
# perturb the bit-parity contract.  Worker processes accumulate them locally
# and the lane pool publishes per-frame deltas to the parent through its
# shared-memory result rings (repro.obs.WORKER_PUBLISHED_COUNTERS).
_SCHEDULE_PASSES = get_metrics().counter("sim_schedule_passes_total")
_DECISION_POINTS = get_metrics().counter("sim_decision_points_total")
_BACKFILL_STARTS = get_metrics().counter("sim_backfill_starts_total")
_PREEMPTIONS = get_metrics().counter("sim_preemptions_total")
_REQUEUES = get_metrics().counter("sim_requeues_total")


def _flush_sim_counters(state: "_SimState") -> None:
    """Publish the state's not-yet-published event tallies to the global
    counters.  Idempotent (tracks per-state high-water marks), so callers may
    flush mid-run and again at completion."""
    delta = state.schedule_passes - state.published_passes
    if delta:
        _SCHEDULE_PASSES.inc(delta)
        state.published_passes = state.schedule_passes
    delta = state.decision_count - state.published_decisions
    if delta:
        _DECISION_POINTS.inc(delta)
        state.published_decisions = state.decision_count
    delta = state.backfill_count - state.published_backfills
    if delta:
        _BACKFILL_STARTS.inc(delta)
        state.published_backfills = state.backfill_count
    delta = state.preemption_count - state.published_preemptions
    if delta:
        _PREEMPTIONS.inc(delta)
        state.published_preemptions = state.preemption_count
    delta = state.requeue_count - state.published_requeues
    if delta:
        _REQUEUES.inc(delta)
        state.published_requeues = state.requeue_count
    if metrics_enabled() and state.machine.topology is not None:
        # Per-node-group free-capacity gauges for heterogeneous clusters.
        # Gauges are deterministic snapshots of simulator state (no clocks),
        # so publishing them keeps the bit-parity contract; the gauge lookup
        # is dict-keyed and cheap relative to the flush's counter work.
        registry = get_metrics()
        for group, vector in state.machine.hetero_free_map().items():
            for resource, value in vector.as_dict().items():
                registry.gauge(
                    "cluster_group_free", group=group, resource=resource
                ).set(value)


@dataclass(frozen=True, slots=True)
class SimulationResult:
    """Outcome of scheduling one job sequence."""

    label: str
    records: tuple[JobRecord, ...]
    metrics: ScheduleMetrics
    decision_count: int = 0
    backfill_count: int = 0
    #: Running jobs killed by node failures (and requeued under the restart
    #: policy) over the sequence.  The two counts differ only if a future
    #: policy ever discards a victim instead of requeueing it.
    preemption_count: int = 0
    requeue_count: int = 0

    @property
    def bsld(self) -> float:
        """Average bounded slowdown (the paper's headline metric)."""
        return self.metrics.average_bounded_slowdown

    def record_for(self, job_id: int) -> JobRecord:
        for record in self.records:
            if record.job.job_id == job_id:
                return record
        raise KeyError(f"no record for job {job_id}")

    def __repr__(self) -> str:
        return (
            f"SimulationResult(label={self.label!r}, jobs={len(self.records)}, "
            f"bsld={self.bsld:.2f}, backfilled={self.backfill_count})"
        )


@dataclass
class _SimState:
    """Mutable state threaded through one simulation run."""

    machine: Machine
    pending: deque
    queue: List[Job] = field(default_factory=list)
    now: float = 0.0
    records: Dict[int, JobRecord] = field(default_factory=dict)
    decision_count: int = 0
    backfill_count: int = 0
    schedule_passes: int = 0
    # Node-failure machinery (repro.faults): failures not yet applied, sorted
    # by time; per-job elapsed-runtime credit accumulated across preempted
    # runs; per-job remaining-runtime override for the next start (present
    # only under the checkpoint restart policy); per-job preemption tallies.
    failures: deque = field(default_factory=deque)
    elapsed_credit: Dict[int, float] = field(default_factory=dict)
    remaining: Dict[int, float] = field(default_factory=dict)
    restarts: Dict[int, int] = field(default_factory=dict)
    preemption_count: int = 0
    requeue_count: int = 0
    # High-water marks of the tallies already published to the global
    # counters (see _flush_sim_counters): flushing is idempotent and safe
    # mid-run, which the incremental OnlineSession relies on.
    published_passes: int = 0
    published_decisions: int = 0
    published_backfills: int = 0
    published_preemptions: int = 0
    published_requeues: int = 0


class Simulator:
    """Schedules job sequences on a simulated homogeneous cluster."""

    def __init__(
        self,
        num_processors: int,
        policy: PriorityPolicy | str = "FCFS",
        backfill: BackfillStrategy | None = None,
        estimator: RuntimeEstimator | None = None,
        bsld_threshold: float = BSLD_THRESHOLD,
        capacity_schedule: Sequence[DowntimeWindow] | None = None,
        node_failures: Sequence[NodeFailure] | None = None,
        restart_policy: RestartPolicy | str | None = None,
        topology: ClusterTopology | None = None,
        allocator: str = "first_fit",
    ):
        if num_processors <= 0:
            raise ValueError(f"num_processors must be positive, got {num_processors}")
        self.num_processors = int(num_processors)
        self.policy = get_policy(policy)
        self.backfill = backfill if backfill is not None else NoBackfill()
        self.estimator = estimator if estimator is not None else UserEstimate()
        self.bsld_threshold = float(bsld_threshold)
        #: Heterogeneous node-group layout, or ``None`` for the scalar
        #: homogeneous machine (the default and the paper's setting).  The
        #: allocator policy decides which group hosts each job; the scheduling
        #: discipline never sees placement (docs/cluster.md).
        self.topology = topology
        self.allocator_policy = allocator
        self._feasibility = None if topology is None else make_allocator(allocator, topology)
        if topology is not None:
            if topology.total_cpus != num_processors:
                raise ValueError(
                    f"topology supplies {topology.total_cpus} cpus but num_processors "
                    f"is {num_processors}"
                )
            if node_failures:
                raise ValueError(
                    "node-failure injection is not supported on heterogeneous "
                    "topologies; model outages as group-tagged capacity drains"
                )
        #: Scheduled node drains honoured by every simulated sequence: new
        #: starts are capped at the in-service capacity, window boundaries are
        #: simulation events, and reservations/backfill checks see the drained
        #: availability (see :class:`repro.cluster.machine.DowntimeWindow`).
        self.capacity_schedule: tuple[DowntimeWindow, ...] = tuple(capacity_schedule or ())
        #: Node failures injected into every simulated sequence: each kills
        #: the running jobs on the failed nodes at its instant and requeues
        #: them through :attr:`restart_policy` (see :mod:`repro.faults` and
        #: :meth:`repro.cluster.machine.Machine.fail_nodes`).  Unlike the
        #: capacity schedule, a failure's window is *not* known to the
        #: scheduler in advance -- it is injected into the machine's schedule
        #: at the failure instant.
        self.node_failures: tuple[NodeFailure, ...] = tuple(
            sorted(node_failures or (), key=lambda f: (f.time, f.processors))
        )
        self.restart_policy = as_restart_policy(restart_policy)

    # -- public API ---------------------------------------------------------
    @property
    def label(self) -> str:
        """Human-readable configuration label, e.g. ``FCFS+EASY(request-time)``."""
        return f"{self.policy.name}+{self.backfill.name}({self.estimator.name})"

    def run(self, jobs: Iterable[Job], backfill: BackfillStrategy | None = None) -> SimulationResult:
        """Schedule ``jobs`` to completion with the configured (or given) strategy."""
        strategy = backfill if backfill is not None else self.backfill
        strategy.on_sequence_start()
        self.estimator.reset()
        gen = self.decision_points(jobs)
        try:
            decision = next(gen)
            while True:
                choice = strategy.select_backfill(decision, self.estimator)
                decision = gen.send(choice)
        except StopIteration as stop:
            result: SimulationResult = stop.value
            return result

    def open_session(self) -> "OnlineSession":
        """Open an incremental :class:`OnlineSession` over this simulator.

        The session drives the same event loop as :meth:`decision_points`
        but accepts submissions over time and only processes events up to an
        explicit event-time horizon -- the online-serving form of the
        simulator (see :mod:`repro.service`).
        """
        return OnlineSession(self)

    def decision_points(
        self, jobs: Iterable[Job]
    ) -> Generator[DecisionPoint, Optional[Job], SimulationResult]:
        """Generator form of the simulation: yields decision points, expects a
        candidate job (or ``None``) back via ``send``; returns the
        :class:`SimulationResult` when the sequence completes."""
        job_list = self._validated(jobs)
        state = _SimState(
            machine=Machine(
                self.num_processors,
                capacity_schedule=self.capacity_schedule,
                topology=self.topology,
                allocator=self.allocator_policy,
            ),
            pending=deque(sorted(job_list, key=lambda j: (j.submit_time, j.job_id))),
            failures=deque(self.node_failures),
        )
        state.now = state.pending[0].submit_time if state.pending else 0.0
        # Sync the machine clock so availability queries made before the first
        # start already see the capacity windows active at the first arrival.
        state.machine.advance_to(state.now)
        self._admit(state)
        # Failures dated at or before the first arrival hit an empty machine
        # but still inject their repair windows before the first decision.
        self._process_failures(state)

        # The flush in ``finally`` publishes the run's event tallies whether
        # the sequence completes, raises, or the caller closes the generator
        # early (lane steals discard in-flight episodes).
        try:
            while state.pending or state.queue or state.machine.num_running:
                if state.queue:
                    blocked = yield from self._schedule_now(state)
                else:
                    blocked = False
                advanced = self._advance_time(state)
                if not advanced and not blocked and not state.queue and not state.pending:
                    break
                if not advanced and state.queue and not blocked:
                    # Defensive: the queue is non-empty, nothing is running and no
                    # arrivals remain, yet the head job could not start -- this
                    # means a job is wider than the machine.
                    widest = max(state.queue, key=lambda j: j.requested_processors)
                    raise RuntimeError(
                        f"simulation deadlocked: job {widest.job_id} requests "
                        f"{widest.requested_processors} of {self.num_processors} processors"
                    )
            return self._finalize(state)
        finally:
            _flush_sim_counters(state)

    # -- internals ----------------------------------------------------------
    def _check_fits_machine(self, job: Job) -> None:
        """Raise ``ValueError`` if ``job`` could never run on this machine."""
        if job.requested_processors > self.num_processors:
            raise ValueError(
                f"job {job.job_id} requests {job.requested_processors} processors but the "
                f"machine has only {self.num_processors}"
            )
        if self._feasibility is not None and not self._feasibility.feasible(
            job_request(job), job.partition
        ):
            raise ValueError(
                f"job {job.job_id} requests {job_request(job).as_dict()} "
                f"(partition {job.partition}) but no node group can host it"
            )

    def _validated(self, jobs: Iterable[Job]) -> List[Job]:
        job_list = list(jobs)
        if not job_list:
            raise ValueError("cannot simulate an empty job sequence")
        seen: set[int] = set()
        for job in job_list:
            self._check_fits_machine(job)
            if job.job_id in seen:
                raise ValueError(f"duplicate job id {job.job_id} in sequence")
            seen.add(job.job_id)
        return job_list

    def _admit(self, state: _SimState) -> None:
        while state.pending and state.pending[0].submit_time <= state.now + _EPS:
            state.queue.append(state.pending.popleft())

    def _start(self, state: _SimState, job: Job, backfilled: bool) -> None:
        remaining = state.remaining.pop(job.job_id, None)
        record = state.machine.start(
            job, state.now, estimator=self.estimator, runtime=remaining
        )
        state.records[job.job_id] = JobRecord(
            job=job,
            start_time=state.now,
            end_time=record.end_time,
            backfilled=backfilled,
            restarts=state.restarts.get(job.job_id, 0),
            runtime_override=remaining,
        )
        if backfilled:
            state.backfill_count += 1

    @staticmethod
    def _remove(queue: List[Job], job_id: int) -> None:
        for i, queued in enumerate(queue):
            if queued.job_id == job_id:
                del queue[i]
                return
        raise KeyError(f"job {job_id} is not in the waiting queue")

    def _schedule_now(
        self, state: _SimState
    ) -> Generator[DecisionPoint, Optional[Job], bool]:
        """Start every job that can start at the current instant.

        Returns ``True`` if the highest-priority job ended up blocked (i.e. a
        reservation exists and time must advance), ``False`` if the queue was
        drained.
        """
        state.schedule_passes += 1
        while state.queue:
            # state.queue is sorted by (submit_time, job_id), so arrival-order
            # policies (FCFS) take the head directly instead of scanning.
            if self.policy.selects_by_arrival:
                rjob = state.queue[0]
            else:
                rjob = self.policy.select(state.queue, state.now)
            if state.machine.can_start(rjob):
                self._start(state, rjob, backfilled=False)
                self._remove(state.queue, rjob.job_id)
                continue
            # Backfilling opportunity: the selected job is blocked.
            yield from self._backfill_opportunity(state, rjob)
            return True
        return False

    def _backfill_opportunity(
        self, state: _SimState, rjob: Job
    ) -> Generator[DecisionPoint, Optional[Job], None]:
        rjob_id = rjob.job_id
        hetero = self.topology is not None
        previous: Optional[List[Job]] = None
        while True:
            # ``state.queue`` is kept sorted by (submit_time, job_id) by
            # construction (jobs are admitted from the sorted pending deque),
            # so the decision-point snapshot is a plain copy and the candidate
            # fit check is a direct comparison against the free count.  On a
            # heterogeneous machine fitting is a vector/placement question, so
            # each scan asks the machine instead.
            if hetero:
                pool = state.queue if previous is None else previous
                candidates = [
                    job
                    for job in pool
                    if job.job_id != rjob_id and state.machine.can_start(job)
                ]
            else:
                free = state.machine.free_processors
                if previous is None:
                    candidates = [
                        job
                        for job in state.queue
                        if job.requested_processors <= free and job.job_id != rjob_id
                    ]
                else:
                    # Same instant, fewer free processors, one job removed: the
                    # new candidate set is a filter of the previous one (queue
                    # order is preserved), so skip the full queue scan.
                    candidates = [
                        job for job in previous if job.requested_processors <= free
                    ]
            if not candidates:
                return
            spares = None
            if hetero:
                reservation_time, extra, spares = state.machine.hetero_reservation(
                    rjob, state.now, self.estimator
                )
            else:
                reservation_time, extra = state.machine.earliest_start_estimate(
                    rjob, state.now, self.estimator
                )
            decision = DecisionPoint(
                time=state.now,
                reserved_job=rjob,
                reservation_time=reservation_time,
                extra_processors=extra,
                candidates=candidates,
                queue=list(state.queue),
                machine=state.machine,
                queue_sorted=True,
                spare_vectors=spares,
            )
            state.decision_count += 1
            choice = yield decision
            if choice is None:
                return
            candidate_ids = {job.job_id for job in candidates}
            if choice.job_id not in candidate_ids:
                raise ValueError(
                    f"backfill strategy returned job {choice.job_id} which is not a candidate "
                    f"(candidates: {sorted(candidate_ids)})"
                )
            self._start(state, choice, backfilled=True)
            self._remove(state.queue, choice.job_id)
            previous = [job for job in candidates if job.job_id != choice.job_id]

    def _next_failure_time(self, state: _SimState) -> float:
        """Time of the next node failure that can still affect the run.

        With waiting or future jobs every pending failure matters (its repair
        window constrains later starts).  Once only running jobs remain, a
        failure dated beyond the last completion can kill nothing and inject
        a window no future start will ever see -- treating it as an event
        would only drag the clock (and the utilization denominator) past the
        true end of the schedule, so it is ignored.
        """
        if not state.failures:
            return math.inf
        time = state.failures[0].time
        if state.pending or state.queue:
            return time
        last_completion = state.machine.last_completion_time()
        if last_completion is not None and time <= last_completion + _EPS:
            return time
        return math.inf

    def _process_failures(self, state: _SimState) -> None:
        """Apply every node failure due at or before the current instant.

        Completions at the failure instant have already been released by
        :meth:`_advance_time`, so a job finishing exactly when the nodes die
        is never a victim.  Victims are removed from the records (their final
        record is re-created when they restart), charged elapsed-runtime
        credit, and requeued at their original ``(submit_time, job_id)``
        position -- a requeued job keeps its queue priority, it does not go
        to the back.
        """
        while state.failures and state.failures[0].time <= state.now + _EPS:
            failure = state.failures.popleft()
            victims = state.machine.fail_nodes(
                state.now, failure.processors, failure.repair_end, start=failure.time
            )
            for victim in victims:
                job = victim.job
                elapsed = max(state.now - victim.start_time, 0.0)
                credit = state.elapsed_credit.get(job.job_id, 0.0) + elapsed
                state.elapsed_credit[job.job_id] = credit
                remaining = self.restart_policy.remaining_runtime(job, credit)
                if remaining is not None:
                    state.remaining[job.job_id] = remaining
                state.restarts[job.job_id] = state.restarts.get(job.job_id, 0) + 1
                state.records.pop(job.job_id, None)
                insort(state.queue, job, key=lambda j: (j.submit_time, j.job_id))
            state.preemption_count += len(victims)
            state.requeue_count += len(victims)

    def _advance_time(self, state: _SimState) -> bool:
        next_arrival = state.pending[0].submit_time if state.pending else math.inf
        next_failure = self._next_failure_time(state)
        if not state.queue:
            # Fast path: with an empty waiting queue, intermediate completions
            # cannot enable any scheduling decision, so skip the event gap in
            # one jump -- straight to the next arrival or node failure, or
            # (when neither remains) to the last completion, draining the
            # machine.  Utilization accounting stays exact because
            # ``release_completed`` integrates each release at its own
            # completion instant.
            next_time = min(next_arrival, next_failure)
            if math.isinf(next_time):
                last_completion = state.machine.last_completion_time()
                next_time = math.inf if last_completion is None else last_completion
        else:
            next_completion = state.machine.next_completion_time()
            next_completion = math.inf if next_completion is None else next_completion
            next_time = min(next_arrival, next_completion, next_failure)
            if state.machine.capacity_schedule:
                # A capacity boundary can unblock (window end) or further
                # constrain (window start) the waiting queue, so it is a
                # scheduling event whenever jobs are waiting.  The machine's
                # schedule (not the simulator's) is consulted so the repair
                # windows injected by earlier failures produce events too.
                next_capacity = state.machine.next_capacity_event(state.now)
                if next_capacity is not None:
                    next_time = min(next_time, next_capacity)
        if math.isinf(next_time):
            return False
        state.now = max(state.now, next_time)
        state.machine.release_completed(state.now)
        self._admit(state)
        self._process_failures(state)
        return True

    def _finalize(self, state: _SimState) -> SimulationResult:
        records = tuple(
            sorted(state.records.values(), key=lambda r: (r.job.submit_time, r.job.job_id))
        )
        for record in records:
            record.validate()
        metrics = compute_metrics(
            records,
            utilization=state.machine.utilization(state.now),
            threshold=self.bsld_threshold,
        )
        return SimulationResult(
            label=self.label,
            records=records,
            metrics=metrics,
            decision_count=state.decision_count,
            backfill_count=state.backfill_count,
            preemption_count=state.preemption_count,
            requeue_count=state.requeue_count,
        )


@dataclass(frozen=True, slots=True)
class ServedDecision:
    """One backfill decision taken at a decision point, in serving order.

    The tuple ``(index, time, reserved_job_id, chosen_job_id)`` is the unit of
    the online/offline determinism contract: a live :class:`OnlineSession` and
    an offline :meth:`Simulator.run` over the same submission stream must
    produce *equal* sequences of these records -- same count, same order, and
    bit-identical ``time`` floats (all event times are derived from the same
    submit/runtime arithmetic on both sides).
    """

    index: int
    time: float
    reserved_job_id: int
    chosen_job_id: Optional[int]


def capture_decisions(
    simulator: Simulator, jobs: Iterable[Job]
) -> tuple[List[ServedDecision], SimulationResult]:
    """Run ``simulator`` over ``jobs`` recording every decision it serves.

    This is :meth:`Simulator.run` with a tap on the decision stream; the
    offline half of the replay-parity check
    (:func:`repro.service.replay.verify_replay_log`).
    """
    strategy = simulator.backfill
    strategy.on_sequence_start()
    simulator.estimator.reset()
    decisions: List[ServedDecision] = []
    gen = simulator.decision_points(jobs)
    try:
        decision = next(gen)
        while True:
            choice = strategy.select_backfill(decision, simulator.estimator)
            decisions.append(
                ServedDecision(
                    index=len(decisions),
                    time=decision.time,
                    reserved_job_id=decision.reserved_job.job_id,
                    chosen_job_id=None if choice is None else choice.job_id,
                )
            )
            decision = gen.send(choice)
    except StopIteration as stop:
        return decisions, stop.value


class OnlineSession:
    """Incremental driver for the simulator's event loop: the online service.

    :meth:`Simulator.decision_points` takes the whole job sequence up front
    and runs the event loop to completion; a long-lived scheduling service
    instead receives submissions *over time* and must only process events up
    to "now".  ``OnlineSession`` reuses the simulator's own scheduling
    internals (``_schedule_now`` / ``_backfill_opportunity`` /
    ``_advance_time``) but exposes them incrementally:

    * :meth:`submit` inserts a job into the pending arrivals (its submit time
      must be strictly after every event already processed);
    * :meth:`advance_to` processes every event with time <= the given event
      time -- arrivals, completions, capacity boundaries -- serving backfill
      decisions through the simulator's configured strategy at exactly the
      instants the offline loop would;
    * :meth:`drain` stops accepting work and runs the loop to completion,
      after which :meth:`result` finalizes the :class:`SimulationResult`.

    **Parity invariant** (enforced by ``tests/test_service.py``): for any
    interleaving of ``submit``/``advance_to`` calls, the decision stream is a
    pure function of the submitted jobs -- replaying them offline through an
    identically configured :class:`Simulator` yields an equal
    :class:`ServedDecision` sequence and an identical final result.  Two
    properties make this hold:

    * events are endogenous (completions, capacity boundaries) or logged
      (arrival times), so the wall-clock granularity of ``advance_to`` calls
      never shifts *when* anything happens in event time;
    * scheduling runs at most once per distinct event instant
      (``_schedule_due``), matching the offline loop's strict
      schedule/advance alternation -- calling ``advance_to`` twice with no
      intervening event serves no duplicate decision points.
    """

    def __init__(self, simulator: Simulator):
        self.sim = simulator
        self.state = _SimState(
            machine=Machine(
                simulator.num_processors,
                capacity_schedule=simulator.capacity_schedule,
                topology=simulator.topology,
                allocator=simulator.allocator_policy,
            ),
            pending=deque(),
            failures=deque(simulator.node_failures),
        )
        self.decisions: List[ServedDecision] = []
        self._submitted_ids: set[int] = set()
        self._started = False
        self._drained = False
        self._schedule_due = False
        self._blocked = False
        self._result: Optional[SimulationResult] = None
        simulator.backfill.on_sequence_start()
        simulator.estimator.reset()

    # -- submission ---------------------------------------------------------
    @property
    def now(self) -> float:
        """Event time of the last processed event."""
        return self.state.now

    @property
    def queue_depth(self) -> int:
        """Jobs waiting (admitted, not yet started)."""
        return len(self.state.queue)

    @property
    def jobs_submitted(self) -> int:
        return len(self._submitted_ids)

    def submit(self, job: Job) -> None:
        """Accept ``job`` into the pending arrivals.

        ``job.submit_time`` is the event time of the arrival; once the
        session has started processing events it must be strictly greater
        than :attr:`now` (an arrival in the processed past cannot be
        scheduled at its own instant any more, which would break replay
        parity).  Width and duplicate-id validation mirror
        :meth:`Simulator._validated`.
        """
        if self._drained:
            raise RuntimeError("session is drained; no further submissions")
        self.sim._check_fits_machine(job)
        if job.job_id in self._submitted_ids:
            raise ValueError(f"duplicate job id {job.job_id} in session")
        if self._started and job.submit_time <= self.state.now:
            raise ValueError(
                f"job {job.job_id} submitted at event time {job.submit_time} but events "
                f"up to {self.state.now} were already processed"
            )
        self._submitted_ids.add(job.job_id)
        pending = self.state.pending
        key = (job.submit_time, job.job_id)
        if pending and key < (pending[-1].submit_time, pending[-1].job_id):
            # Out-of-order future arrival: keep the deque sorted.
            ordered = sorted([*pending, job], key=lambda j: (j.submit_time, j.job_id))
            pending.clear()
            pending.extend(ordered)
        else:
            pending.append(job)

    # -- event processing ---------------------------------------------------
    def _ensure_started(self, limit: float) -> bool:
        """Process the session's first arrival if it is due by ``limit``.

        Mirrors the prologue of :meth:`Simulator.decision_points`: the clock
        starts at the first submit time, with the machine's capacity windows
        synchronized before the first scheduling pass.
        """
        if self._started:
            return True
        state = self.state
        if not state.pending or state.pending[0].submit_time > limit:
            return False
        state.now = state.pending[0].submit_time
        state.machine.advance_to(state.now)
        self.sim._admit(state)
        self.sim._process_failures(state)
        self._started = True
        self._schedule_due = True
        return True

    def _drive_schedule(self, served: List[ServedDecision]) -> bool:
        """Run one scheduling pass at the current instant, serving decisions.

        Drives the same generator :meth:`Simulator.run` drives, with the
        simulator's configured backfill strategy answering each yielded
        :class:`~repro.scheduler.events.DecisionPoint`.  Returns the
        generator's ``blocked`` flag.
        """
        gen = self.sim._schedule_now(self.state)
        try:
            decision = next(gen)
            while True:
                choice = self.sim.backfill.select_backfill(decision, self.sim.estimator)
                record = ServedDecision(
                    index=len(self.decisions),
                    time=decision.time,
                    reserved_job_id=decision.reserved_job.job_id,
                    chosen_job_id=None if choice is None else choice.job_id,
                )
                self.decisions.append(record)
                served.append(record)
                decision = gen.send(choice)
        except StopIteration as stop:
            return bool(stop.value)

    def _next_event_time(self, state: _SimState) -> Optional[float]:
        """The next live event instant, or ``None`` if nothing is knowable yet.

        Identical to :meth:`Simulator._advance_time`'s event selection except
        for the final drain: with an empty queue and no *known* arrivals the
        offline loop jumps to the machine's last completion, but a live
        session must keep waiting -- a later submission may still arrive
        before that completion.  :meth:`drain` performs the final jump.
        """
        next_arrival = state.pending[0].submit_time if state.pending else math.inf
        next_failure = self.sim._next_failure_time(state)
        if not state.queue:
            # Same fast path as offline: with an empty waiting queue,
            # completions cannot enable decisions, so jump straight to the
            # next known arrival or node failure.
            next_time = min(next_arrival, next_failure)
        else:
            next_completion = state.machine.next_completion_time()
            next_completion = math.inf if next_completion is None else next_completion
            next_time = min(next_arrival, next_completion, next_failure)
            if state.machine.capacity_schedule:
                next_capacity = state.machine.next_capacity_event(state.now)
                if next_capacity is not None:
                    next_time = min(next_time, next_capacity)
        return None if math.isinf(next_time) else next_time

    def advance_to(self, event_time: float) -> List[ServedDecision]:
        """Process every event with time <= ``event_time``.

        Returns the decisions served by this call (also appended to
        :attr:`decisions`).  Idempotent between events: re-advancing to the
        same (or an earlier) time serves nothing new.
        """
        if self._drained:
            raise RuntimeError("session is drained")
        served: List[ServedDecision] = []
        if not self._ensure_started(event_time):
            return served
        state = self.state
        while True:
            if self._schedule_due:
                self._schedule_due = False
                self._blocked = self._drive_schedule(served) if state.queue else False
            next_time = self._next_event_time(state)
            if next_time is None or next_time > event_time:
                break
            state.now = max(state.now, next_time)
            state.machine.release_completed(state.now)
            self.sim._admit(state)
            self.sim._process_failures(state)
            self._schedule_due = True
        _flush_sim_counters(state)
        return served

    def drain(self) -> List[ServedDecision]:
        """Run the event loop to completion (no further submissions accepted).

        This is the offline loop's epilogue: schedule, advance (now including
        the final jump to the machine's last completion), repeat until the
        pending/queue/machine are all empty.  After draining,
        :meth:`result` returns the finalized :class:`SimulationResult`.
        """
        if self._drained:
            return []
        served: List[ServedDecision] = []
        self._ensure_started(math.inf)
        state = self.state
        while state.pending or state.queue or state.machine.num_running:
            if self._schedule_due:
                self._schedule_due = False
                self._blocked = self._drive_schedule(served) if state.queue else False
            advanced = self.sim._advance_time(state)
            if advanced:
                self._schedule_due = True
                continue
            if not self._blocked and not state.queue and not state.pending:
                break
            if state.queue and not self._blocked:  # pragma: no cover - defensive
                widest = max(state.queue, key=lambda j: j.requested_processors)
                raise RuntimeError(
                    f"session deadlocked: job {widest.job_id} requests "
                    f"{widest.requested_processors} of {self.sim.num_processors} processors"
                )
        self._drained = True
        _flush_sim_counters(state)
        return served

    def result(self) -> SimulationResult:
        """Finalize and return the session's :class:`SimulationResult`."""
        if not self._drained:
            raise RuntimeError("drain() the session before reading its result")
        if not self._submitted_ids:
            raise ValueError("cannot finalize a session that served no jobs")
        if self._result is None:
            self._result = self.sim._finalize(self.state)
        return self._result


def run_schedule(
    jobs: Sequence[Job],
    num_processors: int,
    policy: PriorityPolicy | str = "FCFS",
    backfill: BackfillStrategy | None = None,
    estimator: RuntimeEstimator | None = None,
    capacity_schedule: Sequence[DowntimeWindow] | None = None,
    node_failures: Sequence[NodeFailure] | None = None,
    restart_policy: RestartPolicy | str | None = None,
    topology: ClusterTopology | None = None,
    allocator: str = "first_fit",
) -> SimulationResult:
    """One-shot convenience wrapper around :class:`Simulator`."""
    simulator = Simulator(
        num_processors=num_processors,
        policy=policy,
        backfill=backfill,
        estimator=estimator,
        capacity_schedule=capacity_schedule,
        node_failures=node_failures,
        restart_policy=restart_policy,
        topology=topology,
        allocator=allocator,
    )
    return simulator.run(jobs)
