"""Scheduling quality metrics.

The paper's headline metric is the **average bounded job slowdown** (bsld,
Feitelson & Rudolph 1998): slowdown measured against an interactivity
threshold (10 seconds) so that near-instant jobs do not dominate the average:

    bsld(job) = max( (wait + runtime) / max(runtime, threshold), 1 )

This module also reports mean wait time, mean turnaround, makespan, and
machine utilization for completeness; the RL reward and every experiment
driver go through :func:`compute_metrics` so the definition is applied
uniformly everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.workloads.job import Job

__all__ = [
    "BSLD_THRESHOLD",
    "bounded_slowdown",
    "JobRecord",
    "ScheduleMetrics",
    "compute_metrics",
]

#: Interactivity threshold (seconds) used by the bounded-slowdown metric.
BSLD_THRESHOLD = 10.0


def bounded_slowdown(wait_time: float, runtime: float, threshold: float = BSLD_THRESHOLD) -> float:
    """Bounded slowdown of a single job."""
    if wait_time < 0:
        raise ValueError(f"wait_time must be non-negative, got {wait_time}")
    if runtime <= 0:
        raise ValueError(f"runtime must be positive, got {runtime}")
    return max((wait_time + runtime) / max(runtime, threshold), 1.0)


@dataclass(frozen=True, slots=True)
class JobRecord:
    """Per-job outcome of one simulated schedule.

    ``start_time`` is the job's *final* start: a job preempted by a node
    failure and requeued carries the start of the run that completed, with
    ``restarts`` counting how many earlier runs were killed.
    ``runtime_override`` is the wall time that final run occupied (set only
    under the checkpoint-credit restart policy, where it is the remaining
    runtime); metric definitions (slowdown, bsld) keep using the job's full
    actual runtime -- the work the user asked for -- while the causality
    check in :meth:`validate` uses the effective runtime of the final run.
    """

    job: Job
    start_time: float
    end_time: float
    backfilled: bool = False
    restarts: int = 0
    runtime_override: float | None = None

    @property
    def effective_runtime(self) -> float:
        """Wall time of the completing run (remaining runtime after credit)."""
        return self.job.runtime if self.runtime_override is None else self.runtime_override

    @property
    def wait_time(self) -> float:
        return self.start_time - self.job.submit_time

    @property
    def turnaround(self) -> float:
        return self.end_time - self.job.submit_time

    @property
    def slowdown(self) -> float:
        return self.turnaround / self.job.runtime

    def bounded_slowdown(self, threshold: float = BSLD_THRESHOLD) -> float:
        return bounded_slowdown(self.wait_time, self.job.runtime, threshold)

    def validate(self) -> None:
        """Sanity-check the causality invariants of a completed job."""
        if self.start_time + 1e-9 < self.job.submit_time:
            raise ValueError(
                f"job {self.job.job_id} started at {self.start_time} before its "
                f"submission at {self.job.submit_time}"
            )
        expected_end = self.start_time + self.effective_runtime
        if abs(self.end_time - expected_end) > 1e-6:
            raise ValueError(
                f"job {self.job.job_id} end time {self.end_time} does not equal "
                f"start + effective runtime = {expected_end}"
            )


@dataclass(frozen=True, slots=True)
class ScheduleMetrics:
    """Aggregate metrics over one scheduled job sequence."""

    num_jobs: int
    average_bounded_slowdown: float
    average_slowdown: float
    average_wait_time: float
    average_turnaround: float
    max_wait_time: float
    makespan: float
    utilization: float
    backfilled_jobs: int

    @property
    def bsld(self) -> float:
        """Alias matching the paper's notation."""
        return self.average_bounded_slowdown

    def as_dict(self) -> Mapping[str, float]:
        return {
            "num_jobs": self.num_jobs,
            "average_bounded_slowdown": self.average_bounded_slowdown,
            "average_slowdown": self.average_slowdown,
            "average_wait_time": self.average_wait_time,
            "average_turnaround": self.average_turnaround,
            "max_wait_time": self.max_wait_time,
            "makespan": self.makespan,
            "utilization": self.utilization,
            "backfilled_jobs": self.backfilled_jobs,
        }


def compute_metrics(
    records: Sequence[JobRecord] | Iterable[JobRecord],
    utilization: float = 0.0,
    threshold: float = BSLD_THRESHOLD,
) -> ScheduleMetrics:
    """Aggregate per-job records into :class:`ScheduleMetrics`."""
    records = list(records)
    if not records:
        raise ValueError("cannot compute metrics over an empty schedule")
    waits = np.array([r.wait_time for r in records], dtype=np.float64)
    runtimes = np.array([r.job.runtime for r in records], dtype=np.float64)
    turnarounds = np.array([r.turnaround for r in records], dtype=np.float64)
    bslds = np.maximum((waits + runtimes) / np.maximum(runtimes, threshold), 1.0)
    slowdowns = turnarounds / runtimes
    submit0 = min(r.job.submit_time for r in records)
    makespan = max(r.end_time for r in records) - submit0
    return ScheduleMetrics(
        num_jobs=len(records),
        average_bounded_slowdown=float(bslds.mean()),
        average_slowdown=float(slowdowns.mean()),
        average_wait_time=float(waits.mean()),
        average_turnaround=float(turnarounds.mean()),
        max_wait_time=float(waits.max()),
        makespan=float(makespan),
        utilization=float(utilization),
        backfilled_jobs=sum(1 for r in records if r.backfilled),
    )
