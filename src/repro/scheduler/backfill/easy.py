"""EASY backfilling (Lifka 1995) and an aggressive greedy variant.

EASY keeps a single reservation for the highest-priority blocked job and
allows any waiting job to jump ahead provided it cannot delay that
reservation: the candidate either finishes (according to the active runtime
estimator) before the reservation time, or it is narrow enough to fit in the
processors that will still be free once the reserved job starts.

The runtime estimator is what distinguishes the paper's baselines:

* ``EASY``      -- EASY + :class:`~repro.prediction.UserEstimate`
* ``EASY-AR``   -- EASY + :class:`~repro.prediction.ActualRuntime`
* Figure 1      -- EASY + :class:`~repro.prediction.NoisyPrediction`

The candidate ordering is configurable; the paper's reward baseline backfills
in shortest-first order (``order="sjf"``), classic EASY scans in arrival
order (``order="fcfs"``).
"""

from __future__ import annotations

from typing import List, Optional

from repro.prediction.predictors import RuntimeEstimator
from repro.scheduler.backfill.base import BackfillStrategy
from repro.scheduler.events import DecisionPoint
from repro.workloads.job import Job

__all__ = ["EasyBackfill", "GreedyBackfill"]

_ORDERS = ("fcfs", "sjf", "widest", "narrowest")


def _order_candidates(
    candidates: List[Job], order: str, estimator: RuntimeEstimator
) -> List[Job]:
    if order == "fcfs":
        return sorted(candidates, key=lambda j: (j.submit_time, j.job_id))
    if order == "sjf":
        return sorted(candidates, key=lambda j: (estimator(j), j.submit_time, j.job_id))
    if order == "widest":
        return sorted(candidates, key=lambda j: (-j.requested_processors, j.submit_time, j.job_id))
    if order == "narrowest":
        return sorted(candidates, key=lambda j: (j.requested_processors, j.submit_time, j.job_id))
    raise ValueError(f"unknown candidate order {order!r}; expected one of {_ORDERS}")


class EasyBackfill(BackfillStrategy):
    """EASY backfilling with a configurable candidate scan order."""

    def __init__(self, order: str = "fcfs"):
        if order not in _ORDERS:
            raise ValueError(f"unknown candidate order {order!r}; expected one of {_ORDERS}")
        self.order = order
        self.name = "EASY" if order == "fcfs" else f"EASY-{order}"

    def select_backfill(
        self, decision: DecisionPoint, estimator: RuntimeEstimator
    ) -> Optional[Job]:
        for job in _order_candidates(decision.candidates, self.order, estimator):
            if not decision.would_delay(job, estimator(job)):
                return job
        return None

    def __repr__(self) -> str:
        return f"EasyBackfill(order={self.order!r})"


class GreedyBackfill(BackfillStrategy):
    """Backfill the first fitting job regardless of whether it delays the reservation.

    This is the "maximum backfilling area" extreme of the trade-off discussed
    in the paper's introduction: it keeps utilization high but can starve the
    reserved job.  It is used by the ablation benchmarks as the opposite pole
    to :class:`~repro.scheduler.backfill.none.NoBackfill`.
    """

    def __init__(self, order: str = "sjf"):
        if order not in _ORDERS:
            raise ValueError(f"unknown candidate order {order!r}; expected one of {_ORDERS}")
        self.order = order
        self.name = f"greedy-{order}"

    def select_backfill(
        self, decision: DecisionPoint, estimator: RuntimeEstimator
    ) -> Optional[Job]:
        ordered = _order_candidates(decision.candidates, self.order, estimator)
        return ordered[0] if ordered else None

    def __repr__(self) -> str:
        return f"GreedyBackfill(order={self.order!r})"
