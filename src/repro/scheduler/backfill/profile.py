"""Free-processor availability profile.

A step function over time recording how many processors are free, given the
currently running jobs (under a runtime estimator) and any reservations that
have been placed.  This is the standard data structure behind conservative
backfilling: every waiting job gets a reservation carved out of the profile,
and a candidate may only start now if doing so leaves every reservation
intact.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.cluster.resources import ClusterTopology, ResourceVector, _RESOURCE_NAMES
from repro.obs import get_metrics

__all__ = ["ResourceProfile", "VectorProfile", "GroupReservationProfile"]

_EPS = 1e-9

# Conservative backfilling rebuilds a profile per candidate per decision
# point, which is the strategy's dominant cost; counting builds makes that
# rebuild pressure visible (a no-op branch while collection is disabled).
_PROFILE_BUILDS = get_metrics().counter("backfill_profile_builds_total")


class ResourceProfile:
    """Piecewise-constant free-processor profile on ``[origin, +inf)``."""

    def __init__(self, total_processors: int, origin: float = 0.0, initial_free: int | None = None):
        if total_processors <= 0:
            raise ValueError("total_processors must be positive")
        free0 = total_processors if initial_free is None else initial_free
        if not 0 <= free0 <= total_processors:
            raise ValueError(
                f"initial_free={free0} outside [0, {total_processors}]"
            )
        _PROFILE_BUILDS.inc()
        self.total = total_processors
        self.origin = float(origin)
        # Parallel arrays: breakpoint times and the free count from that time on.
        self._times: List[float] = [float(origin)]
        self._free: List[int] = [int(free0)]

    # -- queries -----------------------------------------------------------
    def free_at(self, time: float) -> int:
        """Free processors at ``time`` (clamped to the profile origin)."""
        if time < self.origin:
            time = self.origin
        idx = bisect_right(self._times, time + _EPS) - 1
        return self._free[max(idx, 0)]

    def steps(self) -> List[Tuple[float, int]]:
        """Return the (time, free) breakpoints (mainly for tests/plots)."""
        return list(zip(self._times, self._free))

    def min_free_between(self, start: float, end: float) -> int:
        """Minimum free processors over the half-open interval ``[start, end)``."""
        if end <= start:
            return self.free_at(start)
        lo = max(start, self.origin)
        idx = max(bisect_right(self._times, lo + _EPS) - 1, 0)
        minimum = self._free[idx]
        idx += 1
        while idx < len(self._times) and self._times[idx] < end - _EPS:
            minimum = min(minimum, self._free[idx])
            idx += 1
        return minimum

    # -- mutation ----------------------------------------------------------
    def _ensure_breakpoint(self, time: float) -> int:
        """Insert a breakpoint at ``time`` (if absent) and return its index."""
        time = max(time, self.origin)
        idx = bisect_right(self._times, time + _EPS) - 1
        if abs(self._times[idx] - time) <= _EPS:
            return idx
        self._times.insert(idx + 1, time)
        self._free.insert(idx + 1, self._free[idx])
        return idx + 1

    def reserve(self, start: float, duration: float, processors: int) -> None:
        """Subtract ``processors`` from the profile over ``[start, start+duration)``."""
        if processors <= 0:
            raise ValueError("processors must be positive")
        if duration <= 0:
            return
        if math.isinf(duration):
            end = math.inf
        else:
            end = start + duration
        start_idx = self._ensure_breakpoint(start)
        if math.isinf(end):
            end_idx = len(self._times)
        else:
            end_idx = self._ensure_breakpoint(end)
        for i in range(start_idx, end_idx):
            new_free = self._free[i] - processors
            if new_free < -_EPS:
                raise RuntimeError(
                    f"profile over-subscribed at t={self._times[i]}: "
                    f"free={self._free[i]}, reserving {processors}"
                )
            self._free[i] = new_free

    def drain(self, start: float, duration: float, processors: int) -> None:
        """Subtract ``processors`` over ``[start, start+duration)``, clipping at zero.

        Used for scheduled capacity drains (node downtime windows): a drain
        claims idle processors first, and where the profile is already busier
        than the remaining capacity -- jobs running on nodes that are being
        drained gracefully -- the free count bottoms out at zero instead of
        over-subscribing.  Regular job reservations must keep using
        :meth:`reserve`, which treats over-subscription as the bug it is.
        """
        if processors <= 0:
            raise ValueError("processors must be positive")
        if duration <= 0:
            return
        end = math.inf if math.isinf(duration) else start + duration
        start_idx = self._ensure_breakpoint(start)
        end_idx = len(self._times) if math.isinf(end) else self._ensure_breakpoint(end)
        for i in range(start_idx, end_idx):
            self._free[i] = max(self._free[i] - processors, 0)

    def earliest_start(self, processors: int, duration: float, earliest: float | None = None) -> float:
        """Earliest time >= ``earliest`` at which ``processors`` stay free for ``duration``."""
        if processors > self.total:
            raise ValueError(
                f"request for {processors} processors exceeds the machine size {self.total}"
            )
        candidate_times = [max(earliest if earliest is not None else self.origin, self.origin)]
        candidate_times.extend(t for t in self._times if t > candidate_times[0] + _EPS)
        for start in candidate_times:
            if math.isinf(duration):
                # Must stay free forever from `start` on.
                idx = max(bisect_right(self._times, start + _EPS) - 1, 0)
                if all(f >= processors for f in self._free[idx:]):
                    return start
                continue
            if self.min_free_between(start, start + duration) >= processors:
                return start
        raise RuntimeError(
            f"no feasible start found for {processors} processors x {duration}s "
            "(profile never frees enough capacity)"
        )

    @classmethod
    def from_running_jobs(
        cls,
        total_processors: int,
        now: float,
        running: Iterable[Tuple[float, int]],
    ) -> "ResourceProfile":
        """Build a profile from ``(estimated_end_time, processors)`` pairs of running jobs."""
        profile = cls(total_processors, origin=now)
        for end_time, processors in running:
            # A job whose estimate already elapsed still holds its processors;
            # the scheduler has no better information than "it will finish
            # very soon", so keep the processors held for at least one second
            # rather than pretending they are already free.
            end = max(end_time, now + 1.0)
            profile.reserve(now, end - now, processors)
        return profile

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResourceProfile(total={self.total}, steps={len(self._times)})"


class VectorProfile:
    """Per-resource availability profile over one node group.

    Composes one :class:`ResourceProfile` per resource the group actually has
    (zero-capacity resources are skipped, so a cpu-only group pays exactly the
    scalar profile's cost).  Reservations and drains apply each component to
    its resource's profile; feasibility questions require *every* component to
    fit simultaneously.
    """

    def __init__(self, capacity: ResourceVector, origin: float = 0.0):
        if capacity.cpus <= 0:
            raise ValueError("vector profile needs positive cpu capacity")
        self.capacity = capacity
        self.origin = float(origin)
        self._profiles: Dict[str, ResourceProfile] = {
            name: ResourceProfile(capacity.component(name), origin=origin)
            for name in _RESOURCE_NAMES
            if capacity.component(name) > 0
        }

    def reserve(self, start: float, duration: float, vector: ResourceVector) -> None:
        """Subtract ``vector`` over ``[start, start+duration)``; raises on over-subscription."""
        if not vector.fits_in(self.capacity):
            raise ValueError(
                f"reservation {vector.as_dict()} exceeds group capacity {self.capacity.as_dict()}"
            )
        for name, profile in self._profiles.items():
            amount = vector.component(name)
            if amount > 0:
                profile.reserve(start, duration, amount)

    def drain(self, start: float, duration: float, vector: ResourceVector) -> None:
        """Subtract ``vector`` over the window, clipping each component at zero."""
        for name, profile in self._profiles.items():
            amount = vector.component(name)
            if amount > 0:
                profile.drain(start, duration, amount)

    def fits_between(self, start: float, end: float, vector: ResourceVector) -> bool:
        """Whether ``vector`` stays free over the half-open ``[start, end)``."""
        if not vector.fits_in(self.capacity):
            return False
        return all(
            profile.min_free_between(start, end) >= vector.component(name)
            for name, profile in self._profiles.items()
        )

    def earliest_start(
        self, vector: ResourceVector, duration: float, earliest: float | None = None
    ) -> float:
        """Earliest time >= ``earliest`` at which the whole vector stays free for ``duration``."""
        if not vector.fits_in(self.capacity):
            raise ValueError(
                f"request {vector.as_dict()} exceeds group capacity {self.capacity.as_dict()}"
            )
        first = max(earliest if earliest is not None else self.origin, self.origin)
        candidates = {first}
        for profile in self._profiles.values():
            candidates.update(t for t in profile._times if t > first + _EPS)
        for start in sorted(candidates):
            if math.isinf(duration):
                if all(
                    all(f >= vector.component(name) for _, f in profile.steps()[
                        max(bisect_right(profile._times, start + _EPS) - 1, 0):
                    ])
                    for name, profile in self._profiles.items()
                ):
                    return start
                continue
            if self.fits_between(start, start + duration, vector):
                return start
        raise RuntimeError(
            f"no feasible start found for {vector.as_dict()} x {duration}s "
            "(group never frees enough capacity)"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VectorProfile(capacity={self.capacity.as_dict()})"


class GroupReservationProfile:
    """Availability profiles for every node group of a heterogeneous machine.

    The conservative discipline's planning surface: one :class:`VectorProfile`
    per group, plus the cross-group placement question "where does this job's
    reservation land earliest?".  Start-time ties break in the *caller's*
    group order (the allocator's eligibility order), which keeps planning
    deterministic and consistent with live placement.
    """

    def __init__(self, topology: ClusterTopology, origin: float = 0.0):
        self.topology = topology
        self.origin = float(origin)
        self._groups: Dict[str, VectorProfile] = {
            group.name: VectorProfile(group.capacity, origin=origin)
            for group in topology.groups
        }

    def group(self, name: str) -> VectorProfile:
        return self._groups[name]

    def reserve(self, group: str, start: float, duration: float, vector: ResourceVector) -> None:
        self._groups[group].reserve(start, duration, vector)

    def drain(self, group: str, start: float, duration: float, vector: ResourceVector) -> None:
        self._groups[group].drain(start, duration, vector)

    def earliest_start(
        self,
        vector: ResourceVector,
        duration: float,
        groups: Sequence[str],
        earliest: float | None = None,
    ) -> Tuple[float, str]:
        """Earliest ``(start, group)`` among ``groups`` hosting the vector for ``duration``."""
        best: Optional[Tuple[float, str]] = None
        for name in groups:
            try:
                start = self._groups[name].earliest_start(vector, duration, earliest)
            except RuntimeError:
                continue
            if best is None or start < best[0] - _EPS:
                best = (start, name)
        if best is None:
            raise RuntimeError(
                f"no feasible start found for {vector.as_dict()} x {duration}s "
                f"in groups {tuple(groups)}"
            )
        return best

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GroupReservationProfile(groups={self.topology.names})"
