"""Free-processor availability profile.

A step function over time recording how many processors are free, given the
currently running jobs (under a runtime estimator) and any reservations that
have been placed.  This is the standard data structure behind conservative
backfilling: every waiting job gets a reservation carved out of the profile,
and a candidate may only start now if doing so leaves every reservation
intact.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Iterable, List, Tuple

from repro.obs import get_metrics

__all__ = ["ResourceProfile"]

_EPS = 1e-9

# Conservative backfilling rebuilds a profile per candidate per decision
# point, which is the strategy's dominant cost; counting builds makes that
# rebuild pressure visible (a no-op branch while collection is disabled).
_PROFILE_BUILDS = get_metrics().counter("backfill_profile_builds_total")


class ResourceProfile:
    """Piecewise-constant free-processor profile on ``[origin, +inf)``."""

    def __init__(self, total_processors: int, origin: float = 0.0, initial_free: int | None = None):
        if total_processors <= 0:
            raise ValueError("total_processors must be positive")
        free0 = total_processors if initial_free is None else initial_free
        if not 0 <= free0 <= total_processors:
            raise ValueError(
                f"initial_free={free0} outside [0, {total_processors}]"
            )
        _PROFILE_BUILDS.inc()
        self.total = total_processors
        self.origin = float(origin)
        # Parallel arrays: breakpoint times and the free count from that time on.
        self._times: List[float] = [float(origin)]
        self._free: List[int] = [int(free0)]

    # -- queries -----------------------------------------------------------
    def free_at(self, time: float) -> int:
        """Free processors at ``time`` (clamped to the profile origin)."""
        if time < self.origin:
            time = self.origin
        idx = bisect_right(self._times, time + _EPS) - 1
        return self._free[max(idx, 0)]

    def steps(self) -> List[Tuple[float, int]]:
        """Return the (time, free) breakpoints (mainly for tests/plots)."""
        return list(zip(self._times, self._free))

    def min_free_between(self, start: float, end: float) -> int:
        """Minimum free processors over the half-open interval ``[start, end)``."""
        if end <= start:
            return self.free_at(start)
        lo = max(start, self.origin)
        idx = max(bisect_right(self._times, lo + _EPS) - 1, 0)
        minimum = self._free[idx]
        idx += 1
        while idx < len(self._times) and self._times[idx] < end - _EPS:
            minimum = min(minimum, self._free[idx])
            idx += 1
        return minimum

    # -- mutation ----------------------------------------------------------
    def _ensure_breakpoint(self, time: float) -> int:
        """Insert a breakpoint at ``time`` (if absent) and return its index."""
        time = max(time, self.origin)
        idx = bisect_right(self._times, time + _EPS) - 1
        if abs(self._times[idx] - time) <= _EPS:
            return idx
        self._times.insert(idx + 1, time)
        self._free.insert(idx + 1, self._free[idx])
        return idx + 1

    def reserve(self, start: float, duration: float, processors: int) -> None:
        """Subtract ``processors`` from the profile over ``[start, start+duration)``."""
        if processors <= 0:
            raise ValueError("processors must be positive")
        if duration <= 0:
            return
        if math.isinf(duration):
            end = math.inf
        else:
            end = start + duration
        start_idx = self._ensure_breakpoint(start)
        if math.isinf(end):
            end_idx = len(self._times)
        else:
            end_idx = self._ensure_breakpoint(end)
        for i in range(start_idx, end_idx):
            new_free = self._free[i] - processors
            if new_free < -_EPS:
                raise RuntimeError(
                    f"profile over-subscribed at t={self._times[i]}: "
                    f"free={self._free[i]}, reserving {processors}"
                )
            self._free[i] = new_free

    def drain(self, start: float, duration: float, processors: int) -> None:
        """Subtract ``processors`` over ``[start, start+duration)``, clipping at zero.

        Used for scheduled capacity drains (node downtime windows): a drain
        claims idle processors first, and where the profile is already busier
        than the remaining capacity -- jobs running on nodes that are being
        drained gracefully -- the free count bottoms out at zero instead of
        over-subscribing.  Regular job reservations must keep using
        :meth:`reserve`, which treats over-subscription as the bug it is.
        """
        if processors <= 0:
            raise ValueError("processors must be positive")
        if duration <= 0:
            return
        end = math.inf if math.isinf(duration) else start + duration
        start_idx = self._ensure_breakpoint(start)
        end_idx = len(self._times) if math.isinf(end) else self._ensure_breakpoint(end)
        for i in range(start_idx, end_idx):
            self._free[i] = max(self._free[i] - processors, 0)

    def earliest_start(self, processors: int, duration: float, earliest: float | None = None) -> float:
        """Earliest time >= ``earliest`` at which ``processors`` stay free for ``duration``."""
        if processors > self.total:
            raise ValueError(
                f"request for {processors} processors exceeds the machine size {self.total}"
            )
        candidate_times = [max(earliest if earliest is not None else self.origin, self.origin)]
        candidate_times.extend(t for t in self._times if t > candidate_times[0] + _EPS)
        for start in candidate_times:
            if math.isinf(duration):
                # Must stay free forever from `start` on.
                idx = max(bisect_right(self._times, start + _EPS) - 1, 0)
                if all(f >= processors for f in self._free[idx:]):
                    return start
                continue
            if self.min_free_between(start, start + duration) >= processors:
                return start
        raise RuntimeError(
            f"no feasible start found for {processors} processors x {duration}s "
            "(profile never frees enough capacity)"
        )

    @classmethod
    def from_running_jobs(
        cls,
        total_processors: int,
        now: float,
        running: Iterable[Tuple[float, int]],
    ) -> "ResourceProfile":
        """Build a profile from ``(estimated_end_time, processors)`` pairs of running jobs."""
        profile = cls(total_processors, origin=now)
        for end_time, processors in running:
            # A job whose estimate already elapsed still holds its processors;
            # the scheduler has no better information than "it will finish
            # very soon", so keep the processors held for at least one second
            # rather than pretending they are already free.
            end = max(end_time, now + 1.0)
            profile.reserve(now, end - now, processors)
        return profile

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResourceProfile(total={self.total}, steps={len(self._times)})"
