"""Conservative backfilling (Mu'alem & Feitelson 2001).

Unlike EASY, conservative backfilling guarantees that **no** waiting job is
delayed by a backfill: every waiting job holds a reservation in a
free-processor profile, and a candidate may only start now if, after
re-planning the whole queue with the candidate running, no higher-priority
job's reservation moves later.

The implementation re-derives the reservation plan at every decision point
from the availability profile (running jobs under the active estimator plus
the waiting queue in base-policy priority order).  That keeps the strategy
stateless between decision points, which is slower than an incremental
profile but easy to verify -- and decision points are rare relative to
simulated events.

For pathologically contended workloads (hundreds of waiting jobs) the full
re-plan is quadratic per decision; production schedulers bound it the same
way this class optionally does: ``reservation_depth`` plans reservations for
only the first N waiting jobs (Slurm's ``bf_max_job_test`` /Moab's
reservation depth -- the no-delay guarantee then covers those N jobs), and
``max_candidates`` caps how many backfill candidates are *tried* per
decision.  Both default to ``None`` (unbounded, the textbook algorithm).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cluster.allocator import job_request
from repro.prediction.predictors import RuntimeEstimator
from repro.scheduler.backfill.base import BackfillStrategy
from repro.scheduler.backfill.profile import GroupReservationProfile, ResourceProfile
from repro.scheduler.events import DecisionPoint
from repro.workloads.job import Job

__all__ = ["ConservativeBackfill"]


class ConservativeBackfill(BackfillStrategy):
    """Backfill only jobs that delay no reservation of any waiting job."""

    name = "conservative"

    def __init__(
        self,
        order: str = "fcfs",
        reservation_depth: int | None = None,
        max_candidates: int | None = None,
    ):
        if order not in ("fcfs", "sjf"):
            raise ValueError(f"unsupported candidate order {order!r}")
        if reservation_depth is not None and reservation_depth <= 0:
            raise ValueError("reservation_depth must be positive when given")
        if max_candidates is not None and max_candidates <= 0:
            raise ValueError("max_candidates must be positive when given")
        self.order = order
        self.reservation_depth = reservation_depth
        self.max_candidates = max_candidates

    # -- helpers -----------------------------------------------------------
    @staticmethod
    def _base_profile(decision: DecisionPoint, estimator: RuntimeEstimator) -> ResourceProfile:
        machine = decision.machine
        if machine is None:
            raise ValueError("conservative backfilling requires machine state on the decision point")
        running = [
            (r.estimated_end_time(estimator), r.allocation.processors)
            for r in machine.running_jobs
        ]
        profile = ResourceProfile.from_running_jobs(machine.num_processors, decision.time, running)
        # Scheduled capacity drains shape availability exactly like running
        # jobs do, except they may overlap processors already committed to
        # running jobs (graceful drain), hence the clipped subtraction.
        for start, end, processors in machine.capacity_drains(decision.time):
            profile.drain(start, end - start, processors)
        return profile

    @staticmethod
    def _hetero_base_profile(
        decision: DecisionPoint, estimator: RuntimeEstimator
    ) -> GroupReservationProfile:
        """Per-group vector profiles: running grants reserved where they live."""
        machine = decision.machine
        now = decision.time
        profile = GroupReservationProfile(machine.topology, origin=now)
        for record in machine.running_jobs:
            grant = machine.group_allocation(record.job.job_id)
            end = max(record.estimated_end_time(estimator), now + 1.0)
            profile.reserve(grant.group, now, end - now, grant.vector)
        for start, end, group, vector in machine.hetero_capacity_drains(now):
            profile.drain(group, start, end - start, vector)
        return profile

    @staticmethod
    def _hetero_plan(
        profile: GroupReservationProfile,
        queue: List[Job],
        estimator: RuntimeEstimator,
        machine,
    ) -> Dict[int, float]:
        """Greedy vector reservations over eligible groups; job_id -> start time."""
        allocator = machine.allocator
        plan: Dict[int, float] = {}
        for job in queue:
            request = job_request(job)
            duration = max(float(estimator(job)), 1.0)
            groups = [g.name for g in allocator.eligible_groups(request, job.partition)]
            start, group = profile.earliest_start(request, duration, groups)
            profile.reserve(group, start, duration, request)
            plan[job.job_id] = start
        return plan

    @staticmethod
    def _plan(
        profile: ResourceProfile,
        queue: List[Job],
        estimator: RuntimeEstimator,
    ) -> Dict[int, float]:
        """Greedily reserve every queued job in order; return job_id -> start time."""
        plan: Dict[int, float] = {}
        for job in queue:
            duration = max(float(estimator(job)), 1.0)
            start = profile.earliest_start(job.requested_processors, duration)
            profile.reserve(start, duration, job.requested_processors)
            plan[job.job_id] = start
        return plan

    def _queue_in_order(self, decision: DecisionPoint) -> List[Job]:
        # The reserved job is planned first (it is the base policy's pick);
        # the remaining queue keeps submission order, which is the ordering
        # conservative backfilling traditionally promises not to delay.
        rest = [j for j in decision.queue if j.job_id != decision.reserved_job.job_id]
        rest.sort(key=lambda j: (j.submit_time, j.job_id))
        return [decision.reserved_job] + rest

    # -- strategy ----------------------------------------------------------
    def select_backfill(
        self, decision: DecisionPoint, estimator: RuntimeEstimator
    ) -> Optional[Job]:
        queue = self._queue_in_order(decision)
        if self.reservation_depth is not None:
            # Reservations (and thus the no-delay guarantee) cover only the
            # first N waiting jobs, like Slurm's bf_max_job_test.
            queue = queue[: self.reservation_depth]
        machine = decision.machine
        hetero = machine is not None and getattr(machine, "topology", None) is not None
        if hetero:
            baseline_plan = self._hetero_plan(
                self._hetero_base_profile(decision, estimator), queue, estimator, machine
            )
        else:
            baseline_plan = self._plan(self._base_profile(decision, estimator), queue, estimator)

        candidates = list(decision.candidates)
        if self.order == "sjf":
            candidates.sort(key=lambda j: (estimator(j), j.submit_time, j.job_id))
        else:
            candidates.sort(key=lambda j: (j.submit_time, j.job_id))
        if self.max_candidates is not None:
            candidates = candidates[: self.max_candidates]

        graceful = machine is not None and bool(getattr(machine, "capacity_schedule", ()))
        for candidate in candidates:
            # Pretend the candidate starts right now.  Under a capacity
            # schedule the candidate may gracefully straddle a drain window it
            # starts before (the drain never preempts), so its reservation
            # uses the clipped drain-subtraction; the planner's own
            # reservations still go through the raising ``reserve``.
            remaining = [j for j in queue if j.job_id != candidate.job_id]
            if hetero:
                # The trial debits the group the allocator would actually pick
                # right now, keeping the what-if consistent with placement.
                group = machine.placement_group(candidate)
                if group is None:
                    continue
                hetero_profile = self._hetero_base_profile(decision, estimator)
                duration = max(float(estimator(candidate)), 1.0)
                request = job_request(candidate)
                if graceful:
                    hetero_profile.drain(group, decision.time, duration, request)
                else:
                    hetero_profile.reserve(group, decision.time, duration, request)
                new_plan = self._hetero_plan(hetero_profile, remaining, estimator, machine)
            else:
                profile = self._base_profile(decision, estimator)
                duration = max(float(estimator(candidate)), 1.0)
                if graceful:
                    profile.drain(decision.time, duration, candidate.requested_processors)
                else:
                    profile.reserve(decision.time, duration, candidate.requested_processors)
                new_plan = self._plan(profile, remaining, estimator)
            delayed = any(
                new_plan[j.job_id] > baseline_plan[j.job_id] + 1e-6 for j in remaining
            )
            if not delayed:
                return candidate
        return None
