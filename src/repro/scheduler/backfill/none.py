"""The no-backfilling strategy: strict priority-order scheduling.

When the highest-priority waiting job cannot start, the machine simply idles
until it can -- no lower-priority job may jump ahead.  This is the pure base
policy (FCFS/SJF/WFP3/F1) and the lower bound every backfilling strategy is
measured against: the gap between ``none`` and EASY on a trace is the whole
prize that backfilling (heuristic or learned) competes for.
"""

from __future__ import annotations

from typing import Optional

from repro.prediction.predictors import RuntimeEstimator
from repro.scheduler.backfill.base import BackfillStrategy
from repro.scheduler.events import DecisionPoint
from repro.workloads.job import Job

__all__ = ["NoBackfill"]


class NoBackfill(BackfillStrategy):
    """Never backfill; the machine idles until the reserved job can start.

    This is the pure base-policy scheduler and serves as the lower-bound
    baseline in the ablation benchmarks.
    """

    name = "none"

    def select_backfill(
        self, decision: DecisionPoint, estimator: RuntimeEstimator
    ) -> Optional[Job]:
        return None
