"""The no-backfilling strategy: strict priority-order scheduling."""

from __future__ import annotations

from typing import Optional

from repro.prediction.predictors import RuntimeEstimator
from repro.scheduler.backfill.base import BackfillStrategy
from repro.scheduler.events import DecisionPoint
from repro.workloads.job import Job

__all__ = ["NoBackfill"]


class NoBackfill(BackfillStrategy):
    """Never backfill; the machine idles until the reserved job can start.

    This is the pure base-policy scheduler and serves as the lower-bound
    baseline in the ablation benchmarks.
    """

    name = "none"

    def select_backfill(
        self, decision: DecisionPoint, estimator: RuntimeEstimator
    ) -> Optional[Job]:
        return None
