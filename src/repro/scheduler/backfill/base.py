"""Backfilling strategy interface.

A strategy is queried at every :class:`~repro.scheduler.events.DecisionPoint`
and returns the single job to backfill next (or ``None`` to stop backfilling
at this opportunity).  The simulator then starts the chosen job, recomputes
the candidate set, and queries again -- so a strategy that wants to backfill
several jobs simply keeps answering.  This per-job formulation is exactly the
action granularity of the paper's RL agent, which lets heuristics and the
learned policy share one simulation loop.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

from repro.prediction.predictors import RuntimeEstimator
from repro.scheduler.events import DecisionPoint
from repro.workloads.job import Job

__all__ = ["BackfillStrategy"]


class BackfillStrategy(ABC):
    """Chooses which waiting job (if any) to backfill at a decision point."""

    #: Label used in experiment tables ("EASY", "EASY-AR", "RLBF", ...).
    name: str = "backfill"

    @abstractmethod
    def select_backfill(
        self, decision: DecisionPoint, estimator: RuntimeEstimator
    ) -> Optional[Job]:
        """Return the candidate to start now, or ``None`` to pass.

        Implementations must only return jobs from ``decision.candidates``;
        the simulator validates this and raises otherwise.
        """

    def on_sequence_start(self) -> None:
        """Hook called once per simulated job sequence (reset caches)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
