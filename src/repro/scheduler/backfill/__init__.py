"""Backfilling strategies: none, EASY, conservative, greedy, and RL-driven.

The RL-driven strategy lives in :mod:`repro.core.rlbackfill` (it depends on
the agent); everything here is heuristic and usable without training.
"""

from repro.scheduler.backfill.base import BackfillStrategy
from repro.scheduler.backfill.none import NoBackfill
from repro.scheduler.backfill.easy import EasyBackfill, GreedyBackfill
from repro.scheduler.backfill.profile import ResourceProfile
from repro.scheduler.backfill.conservative import ConservativeBackfill

__all__ = [
    "BackfillStrategy",
    "NoBackfill",
    "EasyBackfill",
    "GreedyBackfill",
    "ResourceProfile",
    "ConservativeBackfill",
]
