"""Backfilling strategies: none, EASY, conservative, greedy, and RL-driven.

Every strategy answers one question at a
:class:`~repro.scheduler.events.DecisionPoint`: *which waiting job (if any)
may start right now without unacceptably delaying the blocked
highest-priority job?*  The per-job formulation (the simulator asks again
after every started job) is what lets heuristics and the paper's RL agent
share a single simulation loop -- and what the vectorized rollout engine
steps in lockstep across environments.

* :mod:`~repro.scheduler.backfill.none` -- never backfill (base-policy lower bound).
* :mod:`~repro.scheduler.backfill.easy` -- EASY (single reservation) and a
  greedy variant; candidate order configurable (fcfs/sjf/widest/narrowest).
* :mod:`~repro.scheduler.backfill.conservative` -- every waiting job holds a
  reservation; backfills may delay no one.
* :mod:`~repro.scheduler.backfill.profile` -- the free-processor step
  function behind conservative reservations.

The RL-driven strategy lives in :mod:`repro.core.rlbackfill` (it depends on
the agent); everything here is heuristic and usable without training.
"""

from repro.scheduler.backfill.base import BackfillStrategy
from repro.scheduler.backfill.none import NoBackfill
from repro.scheduler.backfill.easy import EasyBackfill, GreedyBackfill
from repro.scheduler.backfill.profile import ResourceProfile
from repro.scheduler.backfill.conservative import ConservativeBackfill

__all__ = [
    "BackfillStrategy",
    "NoBackfill",
    "EasyBackfill",
    "GreedyBackfill",
    "ResourceProfile",
    "ConservativeBackfill",
]
