"""Base job scheduling policies (the paper's Table 3).

A priority policy assigns a score to every waiting job; the scheduler picks
the job with the **lowest** score as the next job to run.  The four policies
evaluated in the paper are:

=======  =============================================================
FCFS     ``score = submit_time``
SJF      ``score = requested_time``
WFP3     ``score = -(wait_time / requested_time)^3 * requested_processors``
F1       ``score = log10(requested_time) * processors + 870 * log10(submit_time)``
=======  =============================================================

WFP3 (Tang et al. 2009) favours short, narrow, long-waiting jobs; F1
(Carastan-Santos & de Camargo, SC'17) is the best non-linear policy obtained
by simulation + regression for minimizing average bounded slowdown.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Callable, Dict, Sequence

from repro.workloads.job import Job

__all__ = [
    "PriorityPolicy",
    "FCFS",
    "SJF",
    "WFP3",
    "F1",
    "CustomPolicy",
    "get_policy",
    "available_policies",
]


class PriorityPolicy(ABC):
    """Assigns priority scores to waiting jobs (lower score = scheduled first)."""

    #: Human-readable policy name used in experiment tables.
    name: str = "policy"

    #: True when the policy's selection order (including tie-breaks) is
    #: exactly (submit_time, job_id).  The simulator keeps its waiting queue
    #: sorted that way, so such policies can select the queue head without a
    #: scan -- the hot path of rollout collection.
    selects_by_arrival: bool = False

    @abstractmethod
    def score(self, job: Job, now: float) -> float:
        """Priority score of ``job`` at simulation time ``now`` (lower is better)."""

    def select(self, queue: Sequence[Job], now: float) -> Job:
        """Return the highest-priority job in ``queue`` at time ``now``.

        Ties are broken by submission time then job id so the simulation is
        fully deterministic.
        """
        if not queue:
            raise ValueError(f"{self.name}: cannot select from an empty queue")
        return min(queue, key=lambda j: (self.score(j, now), j.submit_time, j.job_id))

    def sort(self, queue: Sequence[Job], now: float) -> list[Job]:
        """Return ``queue`` ordered from highest to lowest priority."""
        return sorted(queue, key=lambda j: (self.score(j, now), j.submit_time, j.job_id))

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class FCFS(PriorityPolicy):
    """First-Come-First-Serve: jobs run in submission order."""

    name = "FCFS"
    # score = submit_time with (submit_time, job_id) tie-breaks reduces the
    # selection order to exactly arrival order.
    selects_by_arrival = True

    def score(self, job: Job, now: float) -> float:
        return job.submit_time


class SJF(PriorityPolicy):
    """Shortest-Job-First by the user-requested wall time."""

    name = "SJF"

    def score(self, job: Job, now: float) -> float:
        return job.requested_time


class WFP3(PriorityPolicy):
    """Cubic waiting-time-over-runtime policy weighted by job width (Tang et al. 2009)."""

    name = "WFP3"

    def score(self, job: Job, now: float) -> float:
        wait = max(now - job.submit_time, 0.0)
        return -((wait / job.requested_time) ** 3) * job.requested_processors


class F1(PriorityPolicy):
    """Non-linear regression policy of Carastan-Santos & de Camargo (SC'17)."""

    name = "F1"

    def score(self, job: Job, now: float) -> float:
        # submit_time can legitimately be zero for the first job of a rebased
        # sequence; clamp so the logarithm stays finite.
        st = max(job.submit_time, 1.0)
        rt = max(job.requested_time, 1.0)
        return math.log10(rt) * job.requested_processors + 870.0 * math.log10(st)


class CustomPolicy(PriorityPolicy):
    """Wrap an arbitrary ``score(job, now)`` callable as a policy."""

    def __init__(self, fn: Callable[[Job, float], float], name: str = "custom"):
        self._fn = fn
        self.name = name

    def score(self, job: Job, now: float) -> float:
        return self._fn(job, now)


_POLICIES: Dict[str, Callable[[], PriorityPolicy]] = {
    "FCFS": FCFS,
    "SJF": SJF,
    "WFP3": WFP3,
    "F1": F1,
}


def available_policies() -> list[str]:
    """Names accepted by :func:`get_policy`."""
    return list(_POLICIES)


def get_policy(name: str | PriorityPolicy) -> PriorityPolicy:
    """Resolve a policy by name (case-insensitive); passes instances through."""
    if isinstance(name, PriorityPolicy):
        return name
    key = name.upper()
    if key not in _POLICIES:
        raise KeyError(f"unknown policy {name!r}; available: {', '.join(_POLICIES)}")
    return _POLICIES[key]()
