"""Event and decision-point types exchanged between the simulator and policies.

The simulator is a generator that yields :class:`DecisionPoint` objects
whenever a backfilling opportunity arises (the selected job cannot start).
Heuristic strategies and the RL agent both answer a decision point with the
job to backfill next, or ``None`` to pass; this single interface is what lets
the trained RL policy plug into exactly the same simulation loop that the
EASY baselines use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Mapping, Optional, Sequence

from repro.workloads.job import Job

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.cluster.machine import Machine
    from repro.cluster.resources import ResourceVector

__all__ = ["JobArrival", "JobCompletion", "DecisionPoint"]


@dataclass(frozen=True, slots=True)
class JobArrival:
    """A job entered the waiting queue at ``time``."""

    time: float
    job: Job


@dataclass(frozen=True, slots=True)
class JobCompletion:
    """A running job finished and released its processors at ``time``."""

    time: float
    job: Job
    start_time: float


@dataclass(slots=True)
class DecisionPoint:
    """A backfilling opportunity.

    Attributes
    ----------
    time:
        Current simulation time.
    reserved_job:
        The job selected by the base policy that cannot start yet (the
        paper's *rjob*); backfilled jobs should not delay it.
    reservation_time:
        The rjob's estimated earliest start time under the active runtime
        estimator.
    extra_processors:
        Processors that remain free at ``reservation_time`` after setting the
        rjob's processors aside; jobs at most this wide can never delay the
        reservation regardless of how long they run.
    candidates:
        Waiting jobs (excluding the rjob) that fit in the currently free
        processors and could be started immediately.
    queue:
        Snapshot of the full waiting queue (including the rjob), sorted by
        submission time -- the observation the RL agent sees.
    machine:
        Live machine state (read-only use expected).
    queue_sorted:
        Producer's promise that ``queue`` is already sorted by
        ``(submit_time, job_id)``; lets the observation encoder skip its
        defensive re-sort on the rollout hot path.  Leave ``False`` for
        hand-built decision points unless the ordering is guaranteed.
    spare_vectors:
        Heterogeneous clusters only: per-group resource vectors that remain
        free at ``reservation_time`` after setting the rjob aside (from
        :meth:`Machine.hetero_reservation`).  ``None`` on scalar machines,
        where ``extra_processors`` carries the whole story.
    """

    time: float
    reserved_job: Job
    reservation_time: float
    extra_processors: int
    candidates: List[Job]
    queue: List[Job] = field(default_factory=list)
    machine: Optional["Machine"] = None
    queue_sorted: bool = False
    spare_vectors: Optional[Mapping[str, "ResourceVector"]] = None

    @property
    def free_processors(self) -> int:
        return self.machine.free_processors if self.machine is not None else 0

    @property
    def free_fraction(self) -> float:
        return self.machine.free_fraction if self.machine is not None else 0.0

    def candidate_ids(self) -> Sequence[int]:
        return [job.job_id for job in self.candidates]

    def would_delay(self, job: Job, estimated_runtime: float) -> bool:
        """Whether backfilling ``job`` (believed to run ``estimated_runtime``)
        would delay the reserved job under the EASY rules.

        On heterogeneous machines (``spare_vectors`` set) the "fits beside the
        reservation" arm is per-resource: some eligible group must hold the
        candidate's full vector both right now and within the spare envelope
        at the reservation instant, so a long-running backfill can never eat
        into the resources the reservation counts on.
        """
        finishes_in_time = self.time + estimated_runtime <= self.reservation_time + 1e-9
        if self.spare_vectors is not None and self.machine is not None:
            if finishes_in_time:
                return False
            return not self._fits_beside_hetero(job)
        fits_beside_reservation = job.requested_processors <= self.extra_processors
        return not (finishes_in_time or fits_beside_reservation)

    def _fits_beside_hetero(self, job: Job) -> bool:
        from repro.cluster.allocator import job_request

        allocator = self.machine.allocator
        if allocator is None:  # pragma: no cover - defensive; spare_vectors implies hetero
            return job.requested_processors <= self.extra_processors
        request = job_request(job)
        free_now = self.machine.hetero_free_map()
        for group in allocator.eligible_groups(request, job.partition):
            spare = self.spare_vectors.get(group.name)
            if spare is None:
                continue
            if request.fits_in(spare) and request.fits_in(free_now[group.name]):
                return True
        return False
