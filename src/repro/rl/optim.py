"""Gradient-descent optimizers for autograd tensors."""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.rl.autograd import Tensor

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimizer over an explicit parameter list."""

    def __init__(self, parameters: Sequence[Tensor], lr: float):
        params = list(parameters)
        if not params:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        for p in params:
            if not p.requires_grad:
                raise ValueError("optimizer parameters must require gradients")
        self.parameters: List[Tensor] = params
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract by convention
        raise NotImplementedError

    def clip_grad_norm(self, max_norm: float) -> float:
        """Scale all gradients so their global L2 norm is at most ``max_norm``."""
        if max_norm <= 0:
            raise ValueError("max_norm must be positive")
        total = 0.0
        for param in self.parameters:
            if param.grad is not None:
                total += float(np.sum(param.grad**2))
        norm = float(np.sqrt(total))
        if norm > max_norm and norm > 0.0:
            scale = max_norm / norm
            for param in self.parameters:
                if param.grad is not None:
                    param.grad = param.grad * scale
        return norm


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Sequence[Tensor], lr: float = 1e-2, momentum: float = 0.0):
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must lie in [0, 1)")
        self.momentum = float(momentum)
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for param in self.parameters:
            if param.grad is None:
                continue
            update = param.grad
            if self.momentum > 0.0:
                velocity = self._velocity.get(id(param))
                velocity = (
                    self.momentum * velocity + update if velocity is not None else update.copy()
                )
                self._velocity[id(param)] = velocity
                update = velocity
            param.data = param.data - self.lr * update


class Adam(Optimizer):
    """Adam (Kingma & Ba 2015) with bias-corrected moment estimates."""

    def __init__(
        self,
        parameters: Sequence[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
    ):
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError("betas must lie in [0, 1)")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self._step_count = 0
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        self._step_count += 1
        t = self._step_count
        for param in self.parameters:
            if param.grad is None:
                continue
            grad = param.grad
            m = self._m.get(id(param))
            v = self._v.get(id(param))
            m = self.beta1 * m + (1 - self.beta1) * grad if m is not None else (1 - self.beta1) * grad
            v = (
                self.beta2 * v + (1 - self.beta2) * grad**2
                if v is not None
                else (1 - self.beta2) * grad**2
            )
            self._m[id(param)] = m
            self._v[id(param)] = v
            m_hat = m / (1 - self.beta1**t)
            v_hat = v / (1 - self.beta2**t)
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
