"""Multiprocess rollout lane pool with shared-memory batching.

:class:`ProcessLanePool` scales rollout collection across CPU cores: a
persistent pool of worker processes each hosts a contiguous **shard** of
simulator lanes, and the parent keeps running one batched policy forward pass
per round across every worker's ready lanes.  Per round:

1. the parent stacks the current observations of all running lanes
   (ascending lane order, exactly like :class:`~repro.rl.vec_env.VecBackfillEnv`),
   runs **one** ``ActorCritic.step_batch`` forward pass, and samples one
   action per lane from that lane's own rng;
2. the sampled actions are written into each worker's command frame in a
   shared-memory ring (:class:`~repro.rl.ipc.ShmRing`) -- fixed-layout
   ``int64``/``float64`` arrays, nothing is pickled on the hot path;
3. each worker steps its shard's environments, encodes the advanced lanes'
   next observations in one batched
   :meth:`~repro.core.observation.ObservationBuilder.encode_batch` pass, and
   writes observations/masks/rewards/terminal infos back through its result
   ring;
4. the parent stores the transition in per-lane trajectory buffers and
   merges finished episodes into the epoch buffer, in lane order.

**Pipelined cohorts** (``pipeline_depth=2``).  The lockstep round above has a
bubble on both sides: workers idle during the parent's forward pass, and the
parent idles while workers step.  With ``pipeline_depth=2`` the lanes are
split into two alternating **cohorts** (lane ``i`` belongs to cohort
``i % 2``) and the round loop becomes a two-stage software pipeline: the
parent issues cohort *A*'s round *t+1* commands immediately after reading
cohort *A*'s round *t* results, while the workers are still stepping cohort
*B* -- parent matmuls overlap worker simulator stepping.  Command and result
frames carry a cohort tag so either side detects a desynchronised pairing.
``pipeline_depth=1`` is today's lockstep loop, bit-identical to PR 2's
behaviour (and, with one worker and stealing off, to the in-process engine).

**Background episode pre-sampling.**  In pipelined mode, a worker that would
otherwise block on its command ring spends the gap **arming** idle lanes: it
pre-samples and pre-validates the lane's next episode start (the full
sampling loop, including up to ``max_reset_attempts`` baseline simulations)
so a subsequent sampled ``RESET`` pops the prepared start instead of burning
the baseline simulations inside the round while its shard-mates wait.
Arming consumes exactly the draws the in-round reset would have consumed, in
the same per-lane order, so trajectories are unchanged -- only *when* the
sampling work happens moves.  In pipelined mode workers do not auto-restart
finished lanes (no same-round credits): a finished lane goes idle for one
cohort round, gets armed in the gap, and restarts via an explicit reset that
hits the pre-sample queue.

**Drain-phase work stealing.**  At the tail of an epoch lanes finish at
different times and the forward-pass batch would shrink.  With
``work_stealing=True`` (the default for sampled-episode rollouts) a lane that
finishes an episode immediately starts an episode for the *next* epoch
instead of idling; episodes completed beyond the requested count -- and the
partial trajectories still in flight when :meth:`rollout` returns -- are
**banked** and credited to the next :meth:`rollout` call.  Batches stay full
through the drain phase at the cost of collecting a small, bounded amount of
next-epoch experience under the current policy (PPO's importance ratios
already account for slightly stale behaviour policies).

**Determinism contract** (see ``docs/simulator.md`` §4-§6): worker shards
preserve global lane indexing, workers process commands in ascending lane
order, and per-lane episode-sampling rngs live inside the worker's
environment while per-lane action rngs stay in the parent.  The policy
forward pass runs through the batch-invariant matmul kernel
(:func:`repro.rl.autograd.invariant_matmul`), so each lane's floats do not
depend on which other lanes share a forward batch, and completed episodes
are released into the epoch buffer in **canonical order** -- sorted by
``(lane decision count at completion, lane)``, the logical completion clock
-- rather than raw arrival order.  Together those make the pool
bit-identical to the in-process engine for the same lanes and seeds at *any*
worker count and *any* pipeline depth: trajectories, buffer contents, and
episode infos are equal bit for bit (asserted in ``tests/test_lane_pool.py``,
``tests/test_pipelined_pool.py``, and the cross-config matrix in
``tests/test_parity_matrix.py``).  Arrival order already equals canonical
order whenever every lane stores one decision per round (the common lockstep
case), so the queue usually drains immediately; it genuinely reorders
whenever a lane loses a round relative to its decision clock -- pipelined
cohorts completing rounds at interleaved times, and lockstep lanes whose
restart had to wait for an explicit parent RESET (multi-worker
``episode_jobs`` rounds, unclaimed credit grants) -- which is exactly what
keeps those schedules aligned with the in-process engine's inline restarts.
"""

from __future__ import annotations

import heapq
import multiprocessing
import os
import time
import weakref
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.faults.plan import FaultPlan
from repro.obs import WORKER_PUBLISHED_COUNTERS, get_metrics, get_tracer
from repro.obs.collect import sidecar_path, write_sidecar
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import trace_spool_dir
from repro.rl.buffer import TrajectoryBuffer
from repro.rl.env import Environment, StepResult
from repro.rl.ipc import Field, FrameLayout, RingTimeout, ShmRing
from repro.rl.ppo import ActorCritic
from repro.rl.vec_env import VecBackfillEnv, clone_lane_envs, validate_rollout_args
from repro.utils.rng import SeedLike, as_rng

__all__ = ["ProcessLanePool", "make_rollout_engine", "available_worker_count"]

# -- wire protocol -------------------------------------------------------------
#: Command-frame kinds.
_KIND_ROUND = 0
_KIND_SHUTDOWN = 1
#: Receive this rollout call's fixed episode sequences from the control pipe
#: (the parent pushes this frame *before* sending the payload, so a payload
#: larger than the OS pipe buffer can never deadlock against a worker that is
#: still blocked on the command ring).  No result frame is produced.
_KIND_RECV_JOBS = 2

#: Per-lane commands.
_CMD_NOOP = 0
_CMD_STEP = 1
_CMD_RESET = 2

#: ``arg`` values for ``_CMD_RESET`` beyond non-negative episode indices.
_RESET_SAMPLE = -1     # sample a sequence from the lane's own trace rng
_RESET_PIPE_JOBS = -2  # jobs for this reset arrive on the control pipe

#: Per-lane result statuses.
_LANE_IDLE = 0
_LANE_RUNNING = 1
_LANE_DONE_RESTARTED = 2
_LANE_DONE_IDLE = 3
#: The command for this lane raised a recoverable exception (bad action, a
#: sequence without backfilling opportunities, reset-sampling exhaustion).
#: The worker stays alive; details travel over the control pipe.
_LANE_FAILED = 4

#: Result-frame kinds.
_RES_OK = 0
_RES_ERROR = 1

#: Terminal-info columns mirrored through shared memory.
_INFO_FIELDS = ("bsld", "baseline_bsld", "violations", "steps")


def available_worker_count() -> int:
    """CPU cores usable by this process (affinity-aware, at least 1)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


def _command_layout(shard: int) -> FrameLayout:
    return FrameLayout(
        [
            Field("kind", (), "int64"),
            Field("cohort", (), "int64"),
            Field("presample", (), "int64"),
            Field("credit_base", (), "int64"),
            Field("credits", (), "int64"),
            # 1 on frames re-issued from the recovery history (so a respawned
            # worker's catch-up spans are tagged in the merged trace), 0 on
            # first-run rounds.  Every ROUND push site writes it explicitly:
            # ShmRing.push leaves unwritten fields holding stale slot bytes.
            Field("replay", (), "int64"),
            Field("cmd", (shard,), "int64"),
            Field("arg", (shard,), "int64"),
        ]
    )


def _result_layout(shard: int, observation_size: int, num_actions: int) -> FrameLayout:
    return FrameLayout(
        [
            Field("kind", (), "int64"),
            Field("cohort", (), "int64"),
            Field("claimed", (), "int64"),
            Field("presampled", (), "int64"),
            Field("wait_ns", (), "int64"),
            Field("step_ns", (), "int64"),
            Field("encode_ns", (), "int64"),
            # Per-frame deltas of the worker's process-global observability
            # counters (one int64 slot per WORKER_PUBLISHED_COUNTERS name);
            # the parent folds them into its own registry, so global metric
            # totals cover simulator work done inside worker processes.
            Field("published", (len(WORKER_PUBLISHED_COUNTERS),), "int64"),
            Field("status", (shard,), "int64"),
            Field("reward", (shard,), "float64"),
            Field("info", (shard, len(_INFO_FIELDS)), "float64"),
            Field("obs", (shard, observation_size), "float64"),
            Field("mask", (shard, num_actions), "float64"),
        ]
    )


# -- worker process ------------------------------------------------------------
def _worker_main(
    envs,
    cmd_ring: ShmRing,
    res_ring: ShmRing,
    pipe,
    worker_index: int = 0,
    generation: int = 0,
) -> None:
    """Host a shard of lane environments; loop over command frames forever.

    Lanes are processed in ascending (local == global) order, mirroring the
    in-process engine's active-list iteration; all advanced or restarted
    lanes of one round share a single batched feature-encoding pass.

    Between rounds the worker polls its command ring non-blockingly and, when
    the parent allowed it (the ``presample`` flag of the last round frame),
    spends the idle gap **arming** idle lanes: one full pre-sampled,
    pre-validated episode start per poll, stored as the lane's prepared
    next episode.  A sampled ``RESET`` pops the armed start (or its stashed
    sampling error) instead of running the sampling loop inside the round;
    an explicit-jobs ``RESET`` discards the armed state, mirroring the
    parent-side abandonment of any other in-flight episode.
    """
    import traceback

    shard = len(envs)
    builder = envs[0].builder
    # Metric publication: each result frame carries this worker's deltas of
    # the process-global counters named in WORKER_PUBLISHED_COUNTERS.  The
    # baseline is taken at worker start so only simulator work done *inside*
    # this process is published upstream (the parent counted its own
    # construction-time work directly).  While the global registry is
    # disabled (the default) every handle stays at zero and the deltas are
    # all-zero writes into an already-mapped frame.
    pub_handles = [get_metrics().counter(name) for name in WORKER_PUBLISHED_COUNTERS]
    pub_last = [handle.value for handle in pub_handles]
    # Span collection: this worker's tracer ring (enabled through the
    # REPRO_OBS_TRACE environment variable under spawn, or inherited live
    # under fork) records per-round step/encode spans and drains into a
    # sidecar file at shutdown when a spool directory is configured -- see
    # repro.obs.collect for the merge side.  generation > 0 marks a respawn.
    tracer = get_tracer()
    span_args = {"worker": worker_index}
    replay_span_args = {"worker": worker_index, "replay": True}
    episode_jobs = None
    running = [False] * shard
    armed_masks: Dict[int, np.ndarray] = {}
    armed_errors: Dict[int, tuple] = {}
    presample_enabled = False
    wait_ns = 0
    try:
        while True:
            # -- gap phase: poll for the next command; arm idle lanes while
            # none is pending.  One arming per poll bounds the latency a
            # command arriving mid-gap can see to a single episode reset.
            while True:
                t0 = time.monotonic_ns()
                if presample_enabled:
                    candidates = [
                        lane
                        for lane in range(shard)
                        if not running[lane]
                        and lane not in armed_masks
                        and lane not in armed_errors
                    ]
                else:
                    candidates = []
                if not candidates:
                    frame = cmd_ring.pop()
                    wait_ns += time.monotonic_ns() - t0
                    break
                try:
                    frame = cmd_ring.pop(timeout=0.0)
                    wait_ns += time.monotonic_ns() - t0
                    break
                except RingTimeout:
                    wait_ns += time.monotonic_ns() - t0
                    lane = candidates[0]
                    try:
                        _, armed_masks[lane] = envs[lane].reset(encode=False)
                    except Exception as exc:
                        # Delivered on the lane's next sampled reset, where
                        # the in-round sampling loop would have raised it.
                        armed_errors[lane] = (
                            type(exc).__name__,
                            traceback.format_exc(),
                        )
            kind = int(frame["kind"])
            if kind == _KIND_SHUTDOWN:
                break
            if kind == _KIND_RECV_JOBS:
                # Cold-path payloads ride the pipe, never the hot ring.  The
                # parent pushed this frame before sending, so blocking here
                # is what lets an arbitrarily large payload drain through the
                # bounded pipe buffer without deadlocking either side.
                _, episode_jobs = pipe.recv()
                continue
            cohort = int(frame["cohort"])
            presample_enabled = bool(int(frame["presample"]))
            replay_round = bool(int(frame["replay"]))
            credits = int(frame["credits"])
            next_index = int(frame["credit_base"])
            claimed = 0
            presampled = 0
            status = np.full(shard, _LANE_IDLE, dtype=np.int64)
            reward = np.zeros(shard, dtype=np.float64)
            info = np.zeros((shard, len(_INFO_FIELDS)), dtype=np.float64)
            obs = np.zeros((shard, envs[0].observation_size), dtype=np.float64)
            mask = np.zeros((shard, envs[0].num_actions), dtype=np.float64)
            encode_lanes: List[int] = []

            cmd, arg = frame["cmd"], frame["arg"]
            lane_errors: Dict[int, tuple] = {}
            t_step = time.monotonic_ns()
            for lane, env in enumerate(envs):
                op = int(cmd[lane])
                if op == _CMD_NOOP:
                    continue
                if op == _CMD_RESET:
                    index = int(arg[lane])
                    try:
                        if index == _RESET_PIPE_JOBS:
                            # One-off sequence for this reset, sent after the
                            # command frame (same no-deadlock ordering as above).
                            armed_masks.pop(lane, None)
                            armed_errors.pop(lane, None)
                            _, reset_jobs = pipe.recv()
                            _, mask[lane] = env.reset(jobs=reset_jobs, encode=False)
                        elif index >= 0:
                            armed_masks.pop(lane, None)
                            armed_errors.pop(lane, None)
                            _, mask[lane] = env.reset(jobs=episode_jobs[index], encode=False)
                        elif lane in armed_masks:
                            # Pre-sampled start: the episode is already
                            # resident at its first decision point.
                            mask[lane] = armed_masks.pop(lane)
                            presampled += 1
                        elif lane in armed_errors:
                            status[lane] = _LANE_FAILED
                            lane_errors[lane] = armed_errors.pop(lane)
                            continue
                        else:
                            _, mask[lane] = env.reset(encode=False)
                    except Exception as exc:
                        # Recoverable (e.g. a sequence without backfilling
                        # opportunities): the lane stays idle, the worker and
                        # its other lanes stay usable, the parent re-raises.
                        status[lane] = _LANE_FAILED
                        lane_errors[lane] = (type(exc).__name__, traceback.format_exc())
                        running[lane] = False
                        continue
                    status[lane] = _LANE_RUNNING
                    running[lane] = True
                    encode_lanes.append(lane)
                    continue
                try:
                    result = env.step(int(arg[lane]), encode=False)
                except Exception as exc:
                    # validate_action raises before mutating, so the episode
                    # is still intact and the lane can be stepped again.
                    status[lane] = _LANE_FAILED
                    lane_errors[lane] = (type(exc).__name__, traceback.format_exc())
                    continue
                reward[lane] = result.reward
                if result.done:
                    info[lane] = [float(result.info[key]) for key in _INFO_FIELDS]
                    if credits != 0:
                        # Auto-restart in the same round, exactly where the
                        # in-process engine restarts a finished lane.
                        if episode_jobs is not None:
                            _, mask[lane] = env.reset(
                                jobs=episode_jobs[next_index], encode=False
                            )
                        else:
                            _, mask[lane] = env.reset(encode=False)
                        next_index += 1
                        claimed += 1
                        if credits > 0:
                            credits -= 1
                        status[lane] = _LANE_DONE_RESTARTED
                        encode_lanes.append(lane)
                    else:
                        status[lane] = _LANE_DONE_IDLE
                        running[lane] = False
                else:
                    mask[lane] = result.mask
                    status[lane] = _LANE_RUNNING
                    encode_lanes.append(lane)
            step_ns = time.monotonic_ns() - t_step
            if tracer.enabled:
                # Re-uses the timestamps already taken for the result frame's
                # step_ns/encode_ns counters: zero extra clock reads.
                tracer.complete(
                    "worker.step",
                    t_step,
                    step_ns,
                    cat="worker",
                    args=replay_span_args if replay_round else span_args,
                )

            encode_ns = 0
            if encode_lanes:
                t_encode = time.monotonic_ns()
                encoded = builder.encode_batch(
                    [envs[lane].pending_encode() for lane in encode_lanes]
                )
                for row, lane in enumerate(encode_lanes):
                    obs[lane] = encoded[row]
                encode_ns = time.monotonic_ns() - t_encode
                if tracer.enabled:
                    tracer.complete(
                        "worker.encode",
                        t_encode,
                        encode_ns,
                        cat="worker",
                        args=replay_span_args if replay_round else span_args,
                    )

            if lane_errors:
                # Sent before the result frame so the parent's follow-up
                # recv finds it already queued.
                pipe.send(("lane_errors", lane_errors))
            published = np.zeros(len(WORKER_PUBLISHED_COUNTERS), dtype=np.int64)
            for slot, handle in enumerate(pub_handles):
                value = handle.value
                published[slot] = value - pub_last[slot]
                pub_last[slot] = value
            res_ring.push(
                {
                    "kind": _RES_OK,
                    "cohort": cohort,
                    "claimed": claimed,
                    "presampled": presampled,
                    "wait_ns": wait_ns,
                    "step_ns": step_ns,
                    "encode_ns": encode_ns,
                    "published": published,
                    "status": status,
                    "reward": reward,
                    "info": info,
                    "obs": obs,
                    "mask": mask,
                }
            )
            wait_ns = 0
    except Exception:  # pragma: no cover - exercised via the error-path test
        detail = traceback.format_exc()
        try:
            pipe.send(("error", detail))
        except Exception:
            pass
        try:
            res_ring.push({"kind": _RES_ERROR}, timeout=1.0)
        except Exception:
            pass
    finally:
        spool = trace_spool_dir()
        if spool is not None and tracer.recorded > 0:
            # Drain this worker's span ring into its sidecar file for the
            # parent-side merge.  Best-effort: a failed export must never
            # mask the real teardown (or error) path.  A SIGKILLed worker
            # skips this entirely -- its ring is simply lost; the respawned
            # replacement exports under a generation-tagged label instead.
            label = f"lane-pool-worker-{worker_index}"
            if generation:
                label = f"{label}.r{generation}"
            try:
                write_sidecar(sidecar_path(spool, label), tracer, label=label)
            except Exception:  # pragma: no cover - defensive
                pass
        cmd_ring.detach()
        res_ring.detach()
        pipe.close()


class _WorkerDied(RuntimeError):
    """A worker process exited; carries the worker index for recovery."""

    def __init__(self, worker: int, message: str):
        super().__init__(message)
        self.worker = worker


def _shutdown_pool(processes, cmd_rings, res_rings, pipes) -> None:
    """Best-effort teardown shared by ``close()`` and the GC finalizer."""
    for process, ring in zip(processes, cmd_rings):
        if process.is_alive():
            try:
                ring.push({"kind": _KIND_SHUTDOWN}, timeout=0.5)
            except Exception:
                pass
    deadline = time.monotonic() + 5.0
    for process in processes:
        process.join(timeout=max(0.1, deadline - time.monotonic()))
        if process.is_alive():  # pragma: no cover - defensive
            process.terminate()
            process.join(timeout=1.0)
    for ring in (*cmd_rings, *res_rings):
        ring.close()
    for pipe in pipes:
        try:
            pipe.close()
        except Exception:  # pragma: no cover - already closed
            pass


class _LaneState:
    """Parent-side view of one lane."""

    __slots__ = ("running", "observation", "mask", "episode_reward", "episode_steps")

    def __init__(self) -> None:
        self.running = False
        self.observation: Optional[np.ndarray] = None
        self.mask: Optional[np.ndarray] = None
        self.episode_reward = 0.0
        self.episode_steps = 0

    def start(self, observation: Optional[np.ndarray], mask: np.ndarray) -> None:
        self.running = True
        self.observation = observation
        self.mask = mask
        self.episode_reward = 0.0
        self.episode_steps = 0

    def retire(self) -> None:
        self.running = False
        self.observation = None
        self.mask = None


class ProcessLanePool:
    """Persistent pool of worker processes hosting simulator lane shards.

    Implements the same ``reset_lane`` / ``step_lane`` / ``rollout`` surface
    as :class:`~repro.rl.vec_env.VecBackfillEnv`; construct one through
    :func:`make_rollout_engine` with ``backend="process"``.

    ``pipeline_depth=1`` (default) runs the lockstep round loop;
    ``pipeline_depth=2`` overlaps the parent's batched forward pass with
    worker simulator stepping via double-buffered lane cohorts and enables
    worker-side background episode pre-sampling (see the module docstring
    and ``docs/simulator.md`` §5).  ``presample`` overrides the pre-sampling
    default (on iff pipelined).
    """

    def __init__(
        self,
        envs: Sequence[Environment],
        num_workers: int | None = None,
        work_stealing: bool = True,
        start_method: str | None = None,
        ring_capacity: int = 2,
        round_timeout: float = 120.0,
        pipeline_depth: int = 1,
        presample: bool | None = None,
        respawn: bool = True,
        max_respawns: int = 8,
        fault_plan: FaultPlan | None = None,
    ):
        if not envs:
            raise ValueError("ProcessLanePool needs at least one environment lane")
        sizes = {(env.observation_size, env.num_actions) for env in envs}
        if len(sizes) != 1:
            raise ValueError(
                f"environment lanes disagree on observation/action sizes: {sorted(sizes)}"
            )
        if len({id(env) for env in envs}) != len(envs):
            raise ValueError("environment lanes must be distinct instances")
        for env in envs:
            if not hasattr(env, "pending_encode"):
                raise TypeError(
                    "the process backend requires deferred-encoding environments "
                    f"(reset/step with encode=False); {type(env).__name__} has no pending_encode()"
                )
        if pipeline_depth not in (1, 2):
            raise ValueError(
                f"pipeline_depth must be 1 (lockstep) or 2 (double-buffered cohorts), "
                f"got {pipeline_depth}"
            )

        self._num_envs = len(envs)
        self._observation_size = int(envs[0].observation_size)
        self._num_actions = int(envs[0].num_actions)
        self.work_stealing = bool(work_stealing)
        self.round_timeout = float(round_timeout)
        self.pipeline_depth = int(pipeline_depth)
        self.presample = (self.pipeline_depth >= 2) if presample is None else bool(presample)

        num_workers = num_workers if num_workers is not None else available_worker_count()
        self.num_workers = max(1, min(int(num_workers), self._num_envs))
        bounds = np.linspace(0, self._num_envs, self.num_workers + 1).astype(int)
        #: ``shards[w] = (first_lane, one_past_last_lane)`` -- contiguous, so
        #: global lane order equals (worker order, local lane order).
        self.shards = [(int(bounds[w]), int(bounds[w + 1])) for w in range(self.num_workers)]

        if start_method is None:
            start_method = os.environ.get("REPRO_MP_START_METHOD")
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        ctx = multiprocessing.get_context(start_method)
        self.start_method = start_method

        # Double-buffering needs one in-flight frame per cohort plus headroom
        # for the cold-path RECV_JOBS frame.
        self._ring_capacity = max(int(ring_capacity), self.pipeline_depth + 1)
        self._ctx = ctx

        # Crash-recovery state.  The parent retains the lane environments it
        # handed to the workers: under fork the children get copy-on-write
        # views and under spawn they get pickled copies, so these objects
        # stay pristine no matter what the workers do to their shards.  A
        # respawned worker restarts from them and replays the lane's recorded
        # command history (resets consume the same per-lane rng draws they
        # consumed the first time; steps replay the current episode's
        # actions), reconstructing the dead worker's shard bit for bit.
        self.respawn = bool(respawn)
        self.max_respawns = int(max_respawns)
        self.fault_plan = fault_plan
        self._lane_envs = list(envs)
        self._reset_history: List[List[tuple]] = [[] for _ in range(self._num_envs)]
        self._action_history: List[List[int]] = [[] for _ in range(self._num_envs)]
        self._pending_reset_spec: Dict[int, tuple] = {}
        self._inflight: List[List[dict]] = [[] for _ in range(self.num_workers)]
        self._respawn_counts = [0] * self.num_workers
        self._rounds_completed = 0

        self._cmd_rings: List[ShmRing] = []
        self._res_rings: List[ShmRing] = []
        self._pipes = []
        self._processes = []
        try:
            for worker in range(self.num_workers):
                self._spawn_worker(worker)
        except BaseException:
            # A mid-loop failure (e.g. unpicklable environment under spawn)
            # must not leak the rings and workers already created.
            _shutdown_pool(
                self._processes, self._cmd_rings, self._res_rings, self._pipes
            )
            raise

        self._closed = False
        self._desynced = False
        # finalize() both backs close() and runs at interpreter exit / GC, so
        # worker processes and shared-memory segments can never leak.  The
        # containers are the live lists (not snapshots): worker respawn
        # replaces entries in place, and the finalizer must tear down the
        # current generation, not the original one.
        self._finalizer = weakref.finalize(
            self,
            _shutdown_pool,
            self._processes,
            self._cmd_rings,
            self._res_rings,
            self._pipes,
        )

        # Parent-side rollout state (persists across rollout() calls so
        # stolen in-flight episodes can resume next epoch).
        self._lanes = [_LaneState() for _ in range(self._num_envs)]
        self._lane_buffers: Optional[List[TrajectoryBuffer]] = None
        self._bank: List[tuple] = []  # [(info, TrajectoryBuffer)] completed, uncredited
        self._shipped_jobs: List[Optional[object]] = [None] * self.num_workers
        # Canonical episode-release state, reset per rollout() call: per-lane
        # decision clocks, the min-heap of completed-but-unreleased episodes
        # keyed by (clock at completion, lane), and the lanes whose RESET
        # command is in flight (they will start an episode, so they gate
        # releases exactly like running lanes).
        self._release_clocks: List[int] = [0] * self._num_envs
        self._release_pending: List[tuple] = []
        self._pending_starts: Set[int] = set()
        #: Workers whose first result frame of the current rollout() has been
        #: seen.  ``None`` outside rollouts.  A worker accrues command-ring
        #: wait continuously, so the wait reported by its *first* frame of a
        #: rollout covers the inter-rollout gap (PPO updates, pool idle time)
        #: and must not count toward the in-rollout idle fraction.
        self._rollout_wait_credit: Optional[set] = None
        # Engine statistics live in a pool-private, always-enabled registry:
        # the aggregate counters back stats() (same keys and values as the
        # old plain-int dict), while per-worker labelled counters expose the
        # shard-level breakdown through metrics snapshots / exposition.
        self.metrics = MetricsRegistry(enabled=True)
        self._counters = {
            key: self.metrics.counter(f"engine_{key}_total", engine="process")
            for key in (
                "rollouts",
                "rounds",
                "decisions",
                "episodes",
                "steal_banked",
                "steal_credited",
                "presampled_resets",
                "respawns",
                "replayed_commands",
                "forward_ns",
                "result_wait_ns",
                "worker_wait_ns",
                "worker_step_ns",
                "worker_encode_ns",
                "rollout_ns",
            )
        }
        self._worker_counters = [
            {
                key: self.metrics.counter(
                    f"engine_worker_{key}_total",
                    engine="process",
                    worker=str(worker),
                )
                for key in ("wait_ns", "step_ns", "encode_ns", "presampled_resets")
            }
            for worker in range(self.num_workers)
        ]
        # Parent-side handles the workers' published deltas fold into; these
        # are the same global-registry counters the simulator increments
        # in-process, so totals are engine-agnostic.
        self._published_handles = tuple(
            get_metrics().counter(name) for name in WORKER_PUBLISHED_COUNTERS
        )

    # -- construction ----------------------------------------------------------
    @classmethod
    def from_template(
        cls,
        env: Environment,
        num_envs: int,
        seed: SeedLike = None,
        **kwargs,
    ) -> "ProcessLanePool":
        """Build ``num_envs`` lanes from one template environment.

        Lane construction is shared with
        :meth:`VecBackfillEnv.from_template` (same helper, same rng draws),
        so a pool and an in-process engine built from the same template and
        seed host bit-identical lane environments.
        """
        return cls(clone_lane_envs(env, num_envs, seed=seed), **kwargs)

    # -- properties ------------------------------------------------------------
    @property
    def num_envs(self) -> int:
        return self._num_envs

    @property
    def observation_size(self) -> int:
        return self._observation_size

    @property
    def num_actions(self) -> int:
        return self._num_actions

    @property
    def pending_banked_episodes(self) -> int:
        """Completed next-epoch episodes waiting to be credited."""
        return len(self._bank)

    @property
    def pending_inflight_lanes(self) -> int:
        """Lanes currently mid-episode (stolen work resumes next call)."""
        return sum(1 for lane in self._lanes if lane.running)

    # -- statistics ------------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        """Cumulative engine statistics (see ``docs/simulator.md`` §5).

        ``worker_idle_fraction`` is the mean fraction of worker wall time
        spent blocked on command frames during rollouts -- the pipeline's
        target: it shrinks when parent forwards overlap worker stepping.
        """
        c = self._counters
        wall_ns = c["rollout_ns"].value
        idle = (
            c["worker_wait_ns"].value / (self.num_workers * wall_ns) if wall_ns else 0.0
        )
        return {
            "engine": "process",
            "pipeline_depth": self.pipeline_depth,
            "num_workers": self.num_workers,
            "rollouts": c["rollouts"].value,
            "rounds": c["rounds"].value,
            "decisions": c["decisions"].value,
            "episodes": c["episodes"].value,
            "steal_banked": c["steal_banked"].value,
            "steal_credited": c["steal_credited"].value,
            "presampled_resets": c["presampled_resets"].value,
            "respawns": c["respawns"].value,
            "replayed_commands": c["replayed_commands"].value,
            "worker_idle_fraction": round(idle, 4),
            "forward_s": c["forward_ns"].value / 1e9,
            "encode_s": c["worker_encode_ns"].value / 1e9,
            "step_s": c["worker_step_ns"].value / 1e9,
            "result_wait_s": c["result_wait_ns"].value / 1e9,
            "worker_wait_s": c["worker_wait_ns"].value / 1e9,
            "rollout_s": c["rollout_ns"].value / 1e9,
        }

    # -- plumbing --------------------------------------------------------------
    def _worker_of(self, lane: int) -> int:
        for worker, (lo, hi) in enumerate(self.shards):
            if lo <= lane < hi:
                return worker
        raise IndexError(f"lane {lane} outside [0, {self._num_envs})")

    def _spawn_worker(self, worker: int) -> None:
        """(Re)create ``worker``'s rings, pipe, and process from pristine envs.

        Replaces the entries in the live ``_cmd_rings``/``_res_rings``/
        ``_pipes``/``_processes`` lists (the GC finalizer holds those same
        lists), appending during initial construction.
        """
        lo, hi = self.shards[worker]
        shard = hi - lo
        cmd_ring = ShmRing(_command_layout(shard), self._ring_capacity, self._ctx)
        if len(self._cmd_rings) > worker:
            self._cmd_rings[worker] = cmd_ring
        else:
            self._cmd_rings.append(cmd_ring)
        res_ring = ShmRing(
            _result_layout(shard, self._observation_size, self._num_actions),
            self._ring_capacity,
            self._ctx,
        )
        if len(self._res_rings) > worker:
            self._res_rings[worker] = res_ring
        else:
            self._res_rings.append(res_ring)
        parent_pipe, child_pipe = self._ctx.Pipe()
        if len(self._pipes) > worker:
            self._pipes[worker] = parent_pipe
        else:
            self._pipes.append(parent_pipe)
        process = self._ctx.Process(
            target=_worker_main,
            # The respawn count doubles as the span-export generation tag: a
            # replacement worker's sidecar is labelled ``...-N.rG`` so its
            # recovery-replay spans are distinguishable in the merged trace.
            args=(
                list(self._lane_envs[lo:hi]),
                cmd_ring,
                res_ring,
                child_pipe,
                worker,
                self._respawn_counts[worker],
            ),
            name=f"lane-pool-worker-{worker}",
            daemon=True,
        )
        process.start()
        child_pipe.close()
        if len(self._processes) > worker:
            self._processes[worker] = process
        else:
            self._processes.append(process)

    def _death(self, worker: int) -> _WorkerDied:
        return _WorkerDied(
            worker,
            f"lane-pool worker {worker} died unexpectedly" + self._drain_error(worker),
        )

    def _check_alive(self) -> None:
        if self._closed:
            raise RuntimeError("ProcessLanePool is closed")
        if self._desynced:
            raise RuntimeError(
                "ProcessLanePool is desynchronized (a previous round was aborted "
                "between command and result frames); close() it and build a new pool"
            )
        for worker, process in enumerate(self._processes):
            if not process.is_alive():
                raise self._death(worker)

    def _check_worker(self, worker: int) -> None:
        """Liveness probe scoped to one worker (used during recovery replay)."""
        if not self._processes[worker].is_alive():
            raise self._death(worker)

    def _ensure_alive(self) -> None:
        """Entry-point liveness check: recover dead workers when allowed."""
        while True:
            try:
                self._check_alive()
                return
            except _WorkerDied as exc:
                self._handle_death(exc)

    def _handle_death(self, exc: _WorkerDied) -> None:
        """Respawn the dead worker, or re-raise when recovery is off/exhausted."""
        if not self.respawn:
            raise exc
        if self._respawn_counts[exc.worker] >= self.max_respawns:
            raise RuntimeError(
                f"lane-pool worker {exc.worker} exceeded max_respawns="
                f"{self.max_respawns}; giving up: {exc}"
            )
        self._recover_worker(exc.worker)

    def _recover_worker(self, worker: int) -> None:
        """Deterministically rebuild ``worker`` after its process died.

        Fresh rings + process from the pristine lane envs, then replay each
        shard lane's recorded reset history (consuming exactly the rng draws
        the dead worker consumed) and the current episode's actions, re-ship
        this rollout's fixed episode sequences if any, and finally re-push
        every command frame that was in flight when the worker died.  The
        replacement worker ends bit-identical to the dead one at its last
        acknowledged state, so the interrupted round simply re-executes.
        """
        self._respawn_counts[worker] += 1
        self._counters["respawns"].inc()
        process = self._processes[worker]
        if process.is_alive():  # pragma: no cover - raced liveness probe
            process.terminate()
        process.join(timeout=5.0)
        # Old rings hold stale/partial frames; discard them wholesale.
        self._cmd_rings[worker].close()
        self._res_rings[worker].close()
        try:
            self._pipes[worker].close()
        except OSError:  # pragma: no cover - already closed
            pass
        self._spawn_worker(worker)
        if self._rollout_wait_credit is not None:
            # The replacement's first frame reports setup/replay wait, not
            # in-rollout idling; re-establish its baseline like a first frame.
            self._rollout_wait_credit.discard(worker)
        self._replay_worker(worker)
        jobs = self._shipped_jobs[worker]
        if jobs is not None and not any(
            int(entry["values"].get("kind", _KIND_ROUND)) == _KIND_RECV_JOBS
            for entry in self._inflight[worker]
        ):
            self._raw_push(worker, {"kind": _KIND_RECV_JOBS})
            self._pipes[worker].send(("jobs", jobs))
        for entry in self._inflight[worker]:
            self._raw_push(worker, entry["values"])
            if entry["payload"] is not None:
                self._pipes[worker].send(entry["payload"])

    def _replay_worker(self, worker: int) -> None:
        """Drive a fresh worker's lanes back to their last acknowledged state."""
        lo, hi = self.shards[worker]
        for lane in range(lo, hi):
            for entry in self._reset_history[lane]:
                if entry[0] == "sample":
                    self._replay_command(lane, _CMD_RESET, _RESET_SAMPLE)
                else:
                    self._replay_command(
                        lane, _CMD_RESET, _RESET_PIPE_JOBS,
                        payload=("reset_jobs", entry[1]),
                    )
            for action in self._action_history[lane]:
                self._replay_command(lane, _CMD_STEP, int(action))

    def _replay_command(self, lane: int, op: int, arg: int, payload=None) -> None:
        """Re-execute one historical command on a respawned worker's lane.

        Replay frames disable pre-sampling so arming cannot consume draws the
        history does not account for, and their result frames are popped raw:
        published counter deltas and timing are NOT folded into the parent
        registries, so recovery leaves global metric totals equal to an
        unfailed run's (the original execution was already counted).
        """
        worker = self._worker_of(lane)
        lo, hi = self.shards[worker]
        cmd = np.zeros(hi - lo, dtype=np.int64)
        args = np.zeros(hi - lo, dtype=np.int64)
        cmd[lane - lo] = op
        args[lane - lo] = arg
        self._raw_push(
            worker,
            {
                "kind": _KIND_ROUND,
                "cohort": 0,
                "presample": 0,
                "credit_base": 0,
                "credits": 0,
                "replay": 1,
                "cmd": cmd,
                "arg": args,
            },
        )
        if payload is not None:
            self._pipes[worker].send(payload)
        frame = self._raw_pop(worker)
        self._counters["replayed_commands"].inc()
        if int(frame["status"][lane - lo]) == _LANE_FAILED:
            # The original command failed the same (recoverable) way; drain
            # the detail message so the pipe stays frame-aligned.
            pipe = self._pipes[worker]
            if pipe.poll(5.0):
                pipe.recv()

    def _raw_push(self, worker: int, values: Dict[str, np.ndarray]) -> None:
        self._cmd_rings[worker].push(
            values,
            timeout=self.round_timeout,
            liveness=lambda: self._check_worker(worker),
        )

    def _raw_pop(self, worker: int) -> Dict[str, np.ndarray]:
        frame = self._res_rings[worker].pop(
            timeout=self.round_timeout,
            liveness=lambda: self._check_worker(worker),
        )
        if int(frame["kind"]) == _RES_ERROR:
            raise RuntimeError(
                f"lane-pool worker {worker} failed" + self._drain_error(worker)
            )
        return frame

    def _inject_kills(self) -> None:
        """SIGKILL workers the fault plan schedules after the completed round.

        Round indices count completed result-collection rounds over the
        pool's lifetime (lockstep rounds and pipelined cohort rounds alike);
        recovery happens lazily on the next ring operation that notices the
        death, exercising the same path an organic crash takes.
        """
        if self.fault_plan is None or not self.fault_plan.has_worker_kills:
            return
        kills = self.fault_plan.kills_for_round(self._rounds_completed)
        self._rounds_completed += 1
        for index in kills:
            process = self._processes[index % self.num_workers]
            if process.is_alive():
                process.kill()
                process.join(timeout=5.0)

    def _drain_error(self, worker: int) -> str:
        pipe = self._pipes[worker]
        try:
            while pipe.poll(0):
                tag, payload = pipe.recv()
                if tag == "error":
                    return f"; worker traceback:\n{payload}"
        except (EOFError, OSError):
            pass
        return ""

    def _push_round(
        self, worker: int, values: Dict[str, np.ndarray], payload=None
    ) -> None:
        """Record ``values`` as in flight, then deliver it (surviving deaths).

        Every pushed frame stays on the worker's in-flight list until the
        result that answers it is popped (``_KIND_RECV_JOBS`` frames, which
        produce no result, are dropped alongside the next answered round).
        If the worker dies mid-delivery -- or died earlier and the ring op is
        what notices -- recovery re-pushes the whole in-flight list onto the
        replacement's fresh ring, this frame included.
        """
        entry = {"values": values, "payload": payload}
        self._inflight[worker].append(entry)
        while True:
            try:
                self._cmd_rings[worker].push(
                    values, timeout=self.round_timeout, liveness=self._check_alive
                )
                break
            except _WorkerDied as exc:
                self._handle_death(exc)
                if exc.worker == worker:
                    # Recovery already delivered every in-flight frame
                    # (payloads included) to the replacement worker.
                    return
        if payload is not None:
            try:
                self._pipes[worker].send(payload)
            except (BrokenPipeError, EOFError, OSError):
                # The worker died between ring push and pipe send; the next
                # ring operation notices and recovery resends the payload.
                if not self.respawn:
                    raise

    def _pop_result(self, worker: int) -> Dict[str, np.ndarray]:
        t0 = time.perf_counter_ns()
        while True:
            try:
                frame = self._res_rings[worker].pop(
                    timeout=self.round_timeout, liveness=self._check_alive
                )
                break
            except _WorkerDied as exc:
                # Any dead worker surfaces here (the liveness probe scans the
                # whole pool).  Recover it and retry: if it was this worker,
                # its in-flight frames were re-pushed and the replacement is
                # producing the result we were waiting for.
                self._handle_death(exc)
        self._counters["result_wait_ns"].inc(time.perf_counter_ns() - t0)
        if int(frame["kind"]) == _RES_ERROR:
            raise RuntimeError(
                f"lane-pool worker {worker} failed" + self._drain_error(worker)
            )
        # This result answers the oldest in-flight round frame; everything up
        # to and including it (RECV_JOBS frames produce no result and are
        # necessarily consumed first) is now acknowledged.
        inflight = self._inflight[worker]
        while inflight:
            entry = inflight.pop(0)
            if int(entry["values"].get("kind", _KIND_ROUND)) == _KIND_ROUND:
                break
        per_worker = self._worker_counters[worker]
        if self._rollout_wait_credit is not None:
            if worker in self._rollout_wait_credit:
                wait_ns = int(frame["wait_ns"])
                self._counters["worker_wait_ns"].inc(wait_ns)
                per_worker["wait_ns"].inc(wait_ns)
            else:
                # First frame of this rollout: its wait spans the
                # inter-rollout gap, not in-rollout idling.
                self._rollout_wait_credit.add(worker)
        step_ns = int(frame["step_ns"])
        encode_ns = int(frame["encode_ns"])
        presampled = int(frame["presampled"])
        self._counters["worker_step_ns"].inc(step_ns)
        per_worker["step_ns"].inc(step_ns)
        self._counters["worker_encode_ns"].inc(encode_ns)
        per_worker["encode_ns"].inc(encode_ns)
        self._counters["presampled_resets"].inc(presampled)
        per_worker["presampled_resets"].inc(presampled)
        # Fold the worker's published global-counter deltas into ours.
        for handle, delta in zip(self._published_handles, frame["published"]):
            if delta:
                handle.inc(int(delta))
        return frame

    def _raise_lane_failures(self, worker: int, frame: Dict[str, np.ndarray]) -> None:
        """Re-raise a recoverable per-lane failure reported by ``worker``.

        The worker (and its other lanes) remain usable -- this mirrors the
        local engine, where e.g. a sequence without backfilling
        opportunities raises ``ValueError`` without harming the engine.
        """
        if not np.any(frame["status"] == _LANE_FAILED):
            return
        pipe = self._pipes[worker]
        if not pipe.poll(5.0):  # pragma: no cover - worker sent before pushing
            raise RuntimeError(f"lane-pool worker {worker} reported a failure without detail")
        tag, lane_errors = pipe.recv()
        assert tag == "lane_errors", tag
        lo, _ = self.shards[worker]
        local, (exc_type, detail) = next(iter(sorted(lane_errors.items())))
        exc_class = ValueError if exc_type == "ValueError" else RuntimeError
        raise exc_class(
            f"lane {lo + local} command failed in worker {worker} ({exc_type}):\n{detail}"
        )

    def _ship_jobs(self, episode_jobs) -> None:
        """Send this rollout call's fixed episode sequences to every worker.

        The ``_KIND_RECV_JOBS`` frame goes out first and the (possibly large,
        pickled) payload second: the worker is guaranteed to be draining the
        pipe by the time the send needs buffer space, so the transfer cannot
        deadlock no matter how big the episode list is.
        """
        for worker in range(self.num_workers):
            if self._shipped_jobs[worker] is not episode_jobs:
                self._push_round(
                    worker, {"kind": _KIND_RECV_JOBS}, payload=("jobs", episode_jobs)
                )
                self._shipped_jobs[worker] = episode_jobs

    # -- lane access -----------------------------------------------------------
    def _single_lane_round(self, lane: int, op: int, arg: int, jobs=None):
        """Drive one command for one lane through its worker; returns the frame.

        When ``jobs`` is given the command frame is pushed *first* and the
        pickled payload second (see :meth:`_ship_jobs` for why this ordering
        is deadlock-free).
        """
        self._ensure_alive()
        worker = self._worker_of(lane)
        lo, hi = self.shards[worker]
        cmd = np.zeros(hi - lo, dtype=np.int64)
        args = np.zeros(hi - lo, dtype=np.int64)
        cmd[lane - lo] = op
        args[lane - lo] = arg
        try:
            self._push_round(
                worker,
                {
                    "kind": _KIND_ROUND,
                    "cohort": 0,
                    "presample": 0,
                    "credit_base": 0,
                    "credits": 0,
                    "replay": 0,
                    "cmd": cmd,
                    "arg": args,
                },
                payload=None if jobs is None else ("reset_jobs", jobs),
            )
            return self._pop_result(worker), lane - lo
        except BaseException:
            # An abort between command and result frames leaves an unconsumed
            # frame in flight; a later pop would pair it with the wrong
            # command.  Poison the pool so every subsequent call fails loudly
            # instead of silently desynchronizing.
            self._desynced = True
            raise

    def _record_reset(self, lane: int, spec: tuple) -> None:
        """Append an acknowledged reset to the lane's replay history.

        A reset starts a new episode, so the previous episode's replayed
        actions become irrelevant (the reset discards simulator state; only
        the sampling rng draws persist, and those are captured by the reset
        entries themselves).
        """
        self._reset_history[lane].append(spec)
        self._action_history[lane].clear()

    def reset_lane(self, lane: int, **kwargs):
        """Reset one lane; returns its ``(observation, mask)``."""
        jobs = kwargs.pop("jobs", None)
        if kwargs:
            raise TypeError(f"unsupported reset_lane arguments: {sorted(kwargs)}")
        if jobs is not None:
            jobs = list(jobs)
            frame, local = self._single_lane_round(
                lane, _CMD_RESET, _RESET_PIPE_JOBS, jobs=jobs
            )
            self._record_reset(lane, ("jobs", jobs))
        else:
            frame, local = self._single_lane_round(lane, _CMD_RESET, _RESET_SAMPLE)
            # Recorded even when the reset failed: the sampling loop consumed
            # rng draws before raising, and a respawn replay must consume the
            # same draws (the replayed failure is tolerated).
            self._record_reset(lane, ("sample",))
        self._raise_lane_failures(self._worker_of(lane), frame)
        if self._lane_buffers is not None:
            # The lane may hold a stolen in-flight episode's partial steps;
            # an explicit reset abandons that episode, so its steps must not
            # splice into the next finish_path().
            self._lane_buffers[lane].clear()
        observation = frame["obs"][local].copy()
        mask = frame["mask"][local].copy()
        self._lanes[lane].start(observation, mask)
        return observation, mask

    def step_lane(self, lane: int, action: int) -> StepResult:
        """Advance one lane with ``action``.

        Refuses to step a lane that still holds a stolen in-flight rollout
        episode: its partial trajectory lives in the pool's lane buffer, and
        direct stepping would orphan those stored transitions (splicing them
        into a later episode's GAE path).  ``reset_lane`` first to abandon
        the in-flight episode explicitly.
        """
        if not self._lanes[lane].running:
            raise RuntimeError(f"lane {lane} has no active episode; call reset_lane first")
        if self._lane_buffers is not None and len(self._lane_buffers[lane]):
            raise RuntimeError(
                f"lane {lane} holds an in-flight rollout episode (drain-phase work "
                "stealing); reset_lane() it before stepping it directly"
            )
        frame, local = self._single_lane_round(lane, _CMD_STEP, int(action))
        self._raise_lane_failures(self._worker_of(lane), frame)
        self._action_history[lane].append(int(action))
        state = self._lanes[lane]
        reward = float(frame["reward"][local])
        state.episode_reward += reward
        state.episode_steps += 1
        if int(frame["status"][local]) == _LANE_DONE_IDLE:
            self._action_history[lane].clear()
            info = self._terminal_info(frame["info"][local], state, lane)
            state.retire()
            return StepResult(
                observation=np.zeros(self._observation_size, dtype=np.float64),
                mask=np.zeros(self._num_actions, dtype=np.float64),
                reward=reward,
                done=True,
                info={key: info[key] for key in _INFO_FIELDS},
            )
        observation = frame["obs"][local].copy()
        mask = frame["mask"][local].copy()
        state.observation = observation
        state.mask = mask
        return StepResult(observation=observation, mask=mask, reward=reward, done=False, info={})

    @staticmethod
    def _terminal_info(row: np.ndarray, state: "_LaneState", lane: int) -> Dict:
        return {
            "bsld": float(row[0]),
            "baseline_bsld": float(row[1]),
            "violations": int(round(row[2])),
            "steps": int(round(row[3])),
            "episode_reward": state.episode_reward,
            "episode_steps": state.episode_steps,
            "lane": lane,
        }

    # -- rollout ---------------------------------------------------------------
    def _ensure_lane_buffers(self, buffer: TrajectoryBuffer) -> List[TrajectoryBuffer]:
        if self._lane_buffers is not None:
            head = self._lane_buffers[0]
            if (head.gamma, head.lam) != (buffer.gamma, buffer.lam):
                if any(len(b) for b in self._lane_buffers) or self._bank:
                    raise ValueError(
                        "cannot change buffer gamma/lam while stolen episodes are in flight"
                    )
                self._lane_buffers = None
        if self._lane_buffers is None:
            self._lane_buffers = [
                TrajectoryBuffer(gamma=buffer.gamma, lam=buffer.lam)
                for _ in range(self._num_envs)
            ]
        return self._lane_buffers

    def rollout(
        self,
        actor_critic: ActorCritic,
        num_trajectories: int,
        buffer: TrajectoryBuffer,
        rngs: Sequence[np.random.Generator] | None = None,
        deterministic: bool = False,
        episode_jobs: Optional[Sequence] = None,
    ) -> List[Dict]:
        """Collect ``num_trajectories`` episodes across all workers' lanes.

        Same contract as :meth:`VecBackfillEnv.rollout`.  With work stealing
        enabled (sampled episodes only), completed-but-surplus episodes and
        in-flight partial trajectories carry over to the next call instead of
        letting the batch drain.
        """
        rngs = validate_rollout_args(self._num_envs, num_trajectories, rngs, episode_jobs)
        self._ensure_alive()

        if episode_jobs is not None or deterministic:
            # Fixed sequences or deterministic evaluation: stolen stochastic
            # work in flight is moot (its early steps were sampled under the
            # wrong action regime) -- discard partial trajectories; their
            # lanes restart fresh.  Banked sampled episodes stay banked for
            # the next stochastic training call.  This happens *before* the
            # gamma/lam reconciliation below so an evaluation with different
            # buffer hyper-parameters is accepted (only the bank genuinely
            # pins gamma/lam).
            for lane, state in enumerate(self._lanes):
                if state.running:
                    if self._lane_buffers is not None:
                        self._lane_buffers[lane].clear()
                    state.retire()
        else:
            # A lane that was driven manually through reset_lane/step_lane
            # holds environment progress the pool never stored; adopting it
            # would splice a partial trajectory into the epoch buffer.  Only
            # lanes that are untouched since their (re)start, or that hold a
            # stolen in-flight episode's stored steps, stay resident --
            # everything else restarts, matching VecBackfillEnv which owns
            # every episode start it collects.
            for lane, state in enumerate(self._lanes):
                stored = (
                    0 if self._lane_buffers is None else len(self._lane_buffers[lane])
                )
                if state.running and stored == 0 and state.episode_steps > 0:
                    state.retire()

        lane_buffers = self._ensure_lane_buffers(buffer)
        # Stealing (and crediting previously stolen work) only makes sense
        # when this call collects the same kind of experience the bank holds:
        # sampled episodes under the stochastic policy.
        stealing = self.work_stealing and episode_jobs is None and not deterministic
        infos: List[Dict] = []

        if episode_jobs is None and not deterministic:
            # Credit banked episodes (next-epoch work collected during the
            # previous call's drain phase) before stepping anything.
            while self._bank and len(infos) < num_trajectories:
                info, episode_buffer = self._bank.pop(0)
                buffer.absorb(episode_buffer)
                infos.append(info)
                self._counters["steal_credited"].inc()
            if len(infos) >= num_trajectories:
                return infos

        self._ship_jobs(episode_jobs)

        # Episodes already in flight count toward the quota of episode starts.
        in_flight = sum(1 for state in self._lanes if state.running)
        quota = max(0, num_trajectories - len(infos) - in_flight)

        self._counters["rollouts"].inc()
        self._rollout_wait_credit = set()
        # Fresh canonical-release state: clocks count decisions stored during
        # *this* call (resumed in-flight episodes keep their earlier steps in
        # the lane buffers but re-enter the ordering at clock 0, which is
        # exactly the lockstep arrival order for resumed lanes).
        self._release_clocks = [0] * self._num_envs
        self._release_pending = []
        self._pending_starts = set()
        t_rollout = time.perf_counter_ns()
        try:
            if self.pipeline_depth == 1:
                self._rollout_lockstep(
                    actor_critic, num_trajectories, buffer, rngs, deterministic,
                    episode_jobs, lane_buffers, stealing, infos, quota,
                )
            else:
                self._rollout_pipelined(
                    actor_critic, num_trajectories, buffer, rngs, deterministic,
                    episode_jobs, lane_buffers, stealing, infos, quota,
                )
            # Episodes completed beyond the requested count (drain-phase
            # stealing) that were still gated by the canonical order when the
            # loop exited: release them unconditionally, smallest key first.
            self._drain_release_queue(
                False, 0, buffer, infos, num_trajectories, final=True
            )
        except BaseException:
            # An abort mid-round (KeyboardInterrupt, one worker timing out
            # after another's frame was pushed) can leave unconsumed frames
            # in the rings; a retried rollout would pair stale results with
            # new commands.  Poison the pool so later calls fail loudly.
            self._desynced = True
            raise
        finally:
            rollout_ns = time.perf_counter_ns() - t_rollout
            self._counters["rollout_ns"].inc(rollout_ns)
            get_tracer().complete(
                "engine.rollout",
                t_rollout,
                rollout_ns,
                cat="engine",
                args={
                    "engine": "process",
                    "lanes": self._num_envs,
                    "workers": self.num_workers,
                    "pipeline_depth": self.pipeline_depth,
                },
            )
            self._rollout_wait_credit = None
        return infos

    def _rollout_lockstep(
        self,
        actor_critic: ActorCritic,
        num_trajectories: int,
        buffer: TrajectoryBuffer,
        rngs: Sequence[np.random.Generator],
        deterministic: bool,
        episode_jobs: Optional[Sequence],
        lane_buffers: List[TrajectoryBuffer],
        stealing: bool,
        infos: List[Dict],
        quota: int,
    ) -> None:
        """The ``pipeline_depth=1`` round loop (PR 2's lockstep behaviour)."""
        next_index = 0  # next episode_jobs index to hand out
        # Credits let workers restart finished lanes inside the same round
        # (the in-process engine's inline restart).  With several workers and
        # fixed sequences, index disjointness cannot be guaranteed without a
        # shared counter, so restarts fall back to explicit resets issued by
        # the parent one round later.
        allow_credits = episode_jobs is None or self.num_workers == 1
        presample_flag = 1 if (self.presample and episode_jobs is None) else 0

        while len(infos) < num_trajectories:
            running = [lane for lane in range(self._num_envs) if self._lanes[lane].running]
            starts: List[int] = []
            budget = self._num_envs if stealing else quota
            for lane in range(self._num_envs):
                if len(starts) >= budget:
                    break
                if not self._lanes[lane].running:
                    starts.append(lane)
            if not running and not starts:  # pragma: no cover - defensive
                raise RuntimeError(
                    f"lane pool stalled with {len(infos)}/{num_trajectories} episodes collected"
                )
            quota -= 0 if stealing else len(starts)
            self._pending_starts.update(starts)

            actions, values, log_probs = self._forward(
                actor_critic, running, rngs, deterministic
            )

            # One command frame per worker: STEP running lanes, RESET the
            # idle lanes chosen to start, plus same-round restart credits.
            # Workers with nothing to do this round (fully drained shard) are
            # skipped entirely -- no frame, no round-trip.
            frames: List[Dict[str, np.ndarray]] = []
            step_counts: List[int] = []
            engaged: List[bool] = []
            for worker, (lo, hi) in enumerate(self.shards):
                shard = hi - lo
                cmd = np.zeros(shard, dtype=np.int64)
                arg = np.zeros(shard, dtype=np.int64)
                steps_here = 0
                resets_here = 0
                for lane in range(lo, hi):
                    if lane in actions:
                        cmd[lane - lo] = _CMD_STEP
                        arg[lane - lo] = actions[lane]
                        steps_here += 1
                    elif lane in starts:
                        cmd[lane - lo] = _CMD_RESET
                        resets_here += 1
                        if episode_jobs is not None:
                            arg[lane - lo] = next_index
                            self._pending_reset_spec[lane] = (
                                "jobs", episode_jobs[next_index],
                            )
                            next_index += 1
                        else:
                            arg[lane - lo] = _RESET_SAMPLE
                            self._pending_reset_spec[lane] = ("sample",)
                frames.append({"cmd": cmd, "arg": arg})
                step_counts.append(steps_here)
                engaged.append(steps_here > 0 or resets_here > 0)
            # Explicit reset indices are assigned above, so worker auto-claims
            # (one-worker case) start at the first unassigned index.
            grant_pool = self._num_envs if stealing else quota
            for worker, frame_values in enumerate(frames):
                if not engaged[worker]:
                    continue
                if allow_credits and step_counts[worker]:
                    credits = -1 if stealing else min(grant_pool, step_counts[worker])
                    grant_pool -= 0 if stealing else max(credits, 0)
                else:
                    credits = 0
                frame_values.update(
                    {
                        "kind": _KIND_ROUND,
                        "cohort": 0,
                        "presample": presample_flag,
                        "credit_base": next_index,
                        "credits": credits,
                        "replay": 0,
                    }
                )
                self._push_round(worker, frame_values)
            self._counters["rounds"].inc()

            # Collect results in worker order == ascending global lane order.
            for worker, (lo, hi) in enumerate(self.shards):
                if not engaged[worker]:
                    continue
                frame = self._pop_result(worker)
                self._raise_lane_failures(worker, frame)
                claimed = int(frame["claimed"])
                if not stealing:
                    quota -= claimed
                restart_specs = self._restart_specs(
                    worker, frame, episode_jobs, next_index
                )
                if episode_jobs is not None and claimed:
                    next_index += claimed
                self._apply_result(
                    worker, frame, actions, values, log_probs, set(starts),
                    lane_buffers, buffer, infos, num_trajectories,
                    allow_restarts=True, stealing=stealing, quota=quota,
                    restart_specs=restart_specs,
                )
            self._inject_kills()

    def _rollout_pipelined(
        self,
        actor_critic: ActorCritic,
        num_trajectories: int,
        buffer: TrajectoryBuffer,
        rngs: Sequence[np.random.Generator],
        deterministic: bool,
        episode_jobs: Optional[Sequence],
        lane_buffers: List[TrajectoryBuffer],
        stealing: bool,
        infos: List[Dict],
        quota: int,
    ) -> None:
        """The ``pipeline_depth=2`` two-stage software pipeline.

        Lanes split into alternating cohorts (lane ``i`` -> cohort
        ``i % 2``); the parent issues cohort *c*'s next commands right after
        collecting cohort *c*'s previous results, so its batched forward for
        one cohort runs while the workers step the other.  Workers never
        auto-restart in this mode (credits are 0): a finished lane sits out
        one cohort round, is armed by gap-time pre-sampling, and restarts
        through an explicit reset that pops the prepared start.
        """
        depth = self.pipeline_depth
        cohort_lanes = [
            [lane for lane in range(self._num_envs) if lane % depth == c]
            for c in range(depth)
        ]
        presample_flag = 1 if (self.presample and episode_jobs is None) else 0
        #: Per cohort: ``None`` or the issue context whose results are in flight.
        outstanding: List[Optional[Dict]] = [None] * depth
        next_index = 0
        cohort = 0
        idle_sweeps = 0

        while True:
            pending = outstanding[cohort]
            if pending is not None:
                outstanding[cohort] = None
                for worker in pending["workers"]:
                    frame = self._pop_result(worker)
                    if int(frame["cohort"]) != cohort:
                        raise RuntimeError(
                            f"pipelined lane pool desynchronized: worker {worker} "
                            f"returned cohort {int(frame['cohort'])} results for a "
                            f"cohort {cohort} round"
                        )
                    self._raise_lane_failures(worker, frame)
                    self._apply_result(
                        worker, frame, pending["actions"], pending["values"],
                        pending["log_probs"], pending["starts"],
                        lane_buffers, buffer, infos, num_trajectories,
                        allow_restarts=False, stealing=stealing, quota=quota,
                    )
                self._inject_kills()
                idle_sweeps = 0
            if len(infos) >= num_trajectories:
                if all(entry is None for entry in outstanding):
                    return
                cohort = (cohort + 1) % depth
                continue

            issued, quota, next_index = self._issue_cohort(
                cohort, cohort_lanes[cohort], actor_critic, rngs, deterministic,
                episode_jobs, stealing, quota, next_index, presample_flag,
            )
            if issued is not None:
                outstanding[cohort] = issued
                idle_sweeps = 0
            else:
                idle_sweeps += 1
                if idle_sweeps >= depth and all(
                    entry is None for entry in outstanding
                ):  # pragma: no cover - defensive
                    raise RuntimeError(
                        f"lane pool stalled with {len(infos)}/{num_trajectories} "
                        "episodes collected"
                    )
            cohort = (cohort + 1) % depth

    def _forward(
        self,
        actor_critic: ActorCritic,
        running: List[int],
        rngs: Sequence[np.random.Generator],
        deterministic: bool,
    ) -> Tuple[Dict[int, int], Dict[int, float], Dict[int, float]]:
        """One batched forward pass over ``running`` lanes (may be empty)."""
        actions: Dict[int, int] = {}
        values: Dict[int, float] = {}
        log_probs: Dict[int, float] = {}
        if running:
            t0 = time.perf_counter_ns()
            obs_batch = np.stack([self._lanes[lane].observation for lane in running])
            mask_batch = np.stack([self._lanes[lane].mask for lane in running])
            acts, vals, lps = actor_critic.step_batch(
                obs_batch,
                mask_batch,
                rngs=None if deterministic else [rngs[lane] for lane in running],
                deterministic=deterministic,
            )
            dt = time.perf_counter_ns() - t0
            self._counters["forward_ns"].inc(dt)
            get_tracer().complete("engine.forward", t0, dt, cat="engine")
            act_list, val_list, lp_list = acts.tolist(), vals.tolist(), lps.tolist()
            for row, lane in enumerate(running):
                actions[lane] = act_list[row]
                values[lane] = val_list[row]
                log_probs[lane] = lp_list[row]
        return actions, values, log_probs

    def _issue_cohort(
        self,
        cohort: int,
        lanes: List[int],
        actor_critic: ActorCritic,
        rngs: Sequence[np.random.Generator],
        deterministic: bool,
        episode_jobs: Optional[Sequence],
        stealing: bool,
        quota: int,
        next_index: int,
        presample_flag: int,
    ) -> Tuple[Optional[Dict], int, int]:
        """Forward + push one cohort round; returns (context, quota, next_index).

        ``context`` is ``None`` when the cohort has nothing to do (no running
        lanes and no starts within budget) -- no frames are pushed then.
        """
        running = [lane for lane in lanes if self._lanes[lane].running]
        starts: List[int] = []
        budget = len(lanes) if stealing else quota
        for lane in lanes:
            if len(starts) >= budget:
                break
            if not self._lanes[lane].running:
                starts.append(lane)
        if not running and not starts:
            return None, quota, next_index
        if not stealing:
            quota -= len(starts)
        self._pending_starts.update(starts)

        actions, values, log_probs = self._forward(
            actor_critic, running, rngs, deterministic
        )

        workers: List[int] = []
        for worker, (lo, hi) in enumerate(self.shards):
            shard = hi - lo
            cmd = np.zeros(shard, dtype=np.int64)
            arg = np.zeros(shard, dtype=np.int64)
            engaged = False
            for lane in lanes:
                if lane < lo or lane >= hi:
                    continue
                if lane in actions:
                    cmd[lane - lo] = _CMD_STEP
                    arg[lane - lo] = actions[lane]
                    engaged = True
                elif lane in starts:
                    cmd[lane - lo] = _CMD_RESET
                    engaged = True
                    if episode_jobs is not None:
                        arg[lane - lo] = next_index
                        self._pending_reset_spec[lane] = (
                            "jobs", episode_jobs[next_index],
                        )
                        next_index += 1
                    else:
                        arg[lane - lo] = _RESET_SAMPLE
                        self._pending_reset_spec[lane] = ("sample",)
            if not engaged:
                continue
            self._push_round(
                worker,
                {
                    "kind": _KIND_ROUND,
                    "cohort": cohort,
                    "presample": presample_flag,
                    "credit_base": 0,
                    "credits": 0,  # pipelined rounds never auto-restart
                    "replay": 0,
                    "cmd": cmd,
                    "arg": arg,
                },
            )
            workers.append(worker)
        self._counters["rounds"].inc()
        context = {
            "workers": workers,
            "actions": actions,
            "values": values,
            "log_probs": log_probs,
            "starts": set(starts),
        }
        return context, quota, next_index

    def _restart_specs(
        self, worker: int, frame: Dict[str, np.ndarray], episode_jobs, base: int
    ) -> Dict[int, tuple]:
        """Reset-history specs for the worker's same-round auto-restarts.

        The worker hands out claimed indices starting at the frame's credit
        base in ascending lane order, which is exactly the order restarted
        statuses appear in; sampled restarts need no index.
        """
        specs: Dict[int, tuple] = {}
        lo, hi = self.shards[worker]
        order = 0
        for local in range(hi - lo):
            if int(frame["status"][local]) == _LANE_DONE_RESTARTED:
                if episode_jobs is not None:
                    specs[lo + local] = ("jobs", episode_jobs[base + order])
                    order += 1
                else:
                    specs[lo + local] = ("sample",)
        return specs

    def _apply_result(
        self,
        worker: int,
        frame: Dict[str, np.ndarray],
        actions: Dict[int, int],
        values: Dict[int, float],
        log_probs: Dict[int, float],
        starts: Set[int],
        lane_buffers: List[TrajectoryBuffer],
        buffer: TrajectoryBuffer,
        infos: List[Dict],
        num_trajectories: int,
        allow_restarts: bool,
        stealing: bool,
        quota: int,
        restart_specs: Optional[Dict[int, tuple]] = None,
    ) -> None:
        """Fold one worker's result frame into parent-side rollout state.

        Stores transitions, adopts restarted or newly started lanes, and
        pushes finished episodes onto the canonical release queue -- ascending
        lane order, identical for the lockstep and pipelined paths (pipelined
        rounds set ``credits=0`` so ``allow_restarts`` only ever fires on the
        lockstep path).  Episodes enter the epoch buffer through
        :meth:`_drain_release_queue`, never directly.
        """
        lo, hi = self.shards[worker]
        for lane in range(lo, hi):
            local = lane - lo
            status = int(frame["status"][local])
            state = self._lanes[lane]
            if lane in actions:
                reward = float(frame["reward"][local])
                lane_buffers[lane].store(
                    state.observation,
                    state.mask,
                    actions[lane],
                    reward,
                    values[lane],
                    log_probs[lane],
                )
                self._counters["decisions"].inc()
                self._release_clocks[lane] += 1
                self._action_history[lane].append(int(actions[lane]))
                state.episode_reward += reward
                state.episode_steps += 1
                if status in (_LANE_DONE_RESTARTED, _LANE_DONE_IDLE):
                    lane_buffers[lane].finish_path(last_value=0.0)
                    info = self._terminal_info(frame["info"][local], state, lane)
                    self._counters["episodes"].inc()
                    episode_buffer = TrajectoryBuffer(
                        gamma=buffer.gamma, lam=buffer.lam
                    )
                    episode_buffer.absorb(lane_buffers[lane])
                    heapq.heappush(
                        self._release_pending,
                        (self._release_clocks[lane], lane, info, episode_buffer),
                    )
                    if status == _LANE_DONE_RESTARTED and allow_restarts:
                        # The worker's same-round restart consumed either the
                        # next fixed sequence or the lane's own sampling
                        # draws; record it so a respawn replays it.
                        self._record_reset(lane, (restart_specs or {})[lane])
                        state.start(
                            frame["obs"][local].copy(), frame["mask"][local].copy()
                        )
                    else:
                        self._action_history[lane].clear()
                        state.retire()
                else:
                    state.observation = frame["obs"][local].copy()
                    state.mask = frame["mask"][local].copy()
            elif lane in starts and status == _LANE_RUNNING:
                self._pending_starts.discard(lane)
                self._record_reset(
                    lane, self._pending_reset_spec.pop(lane, ("sample",))
                )
                state.start(frame["obs"][local].copy(), frame["mask"][local].copy())
        self._drain_release_queue(stealing, quota, buffer, infos, num_trajectories)

    def _drain_release_queue(
        self,
        stealing: bool,
        quota: int,
        buffer: TrajectoryBuffer,
        infos: List[Dict],
        num_trajectories: int,
        final: bool = False,
    ) -> None:
        """Release completed episodes in canonical ``(clock, lane)`` order.

        An episode keyed ``(c, l)`` -- lane ``l`` finished it after storing
        its ``c``-th decision of this rollout -- is released only once no
        other lane can still complete an episode with a smaller key.  A lane
        ``m`` that may yet finish an episode (it is running, its RESET is in
        flight, or it is idle but restartable because stealing is on or quota
        remains) finishes no earlier than ``(clock_m + 1, m)``.  Arrival
        order already satisfies this whenever every lane stores one decision
        per round, so the queue usually drains immediately; it holds entries
        back exactly when a lane lost a round relative to its decision clock
        (pipelined cohorts, lockstep explicit-RESET restarts), which is what
        makes the epoch buffer identical across schedulers.  Released
        episodes are credited while the call's quota of ``num_trajectories``
        lasts and banked (work stealing) afterwards.  ``final=True`` (the
        post-loop flush) releases unconditionally -- no lane can produce
        further completions once the round loop has exited.
        """
        pending = self._release_pending
        while pending:
            if not final:
                key = (pending[0][0], pending[0][1])
                blocked = False
                for m, state in enumerate(self._lanes):
                    may_finish = (
                        state.running
                        or m in self._pending_starts
                        or stealing
                        or quota > 0
                    )
                    if may_finish and (self._release_clocks[m] + 1, m) <= key:
                        blocked = True
                        break
                if blocked:
                    return
            _, _, info, episode_buffer = heapq.heappop(pending)
            if len(infos) < num_trajectories:
                infos.append(info)
                buffer.absorb(episode_buffer)
            else:
                self._bank.append((info, episode_buffer))
                self._counters["steal_banked"].inc()

    # -- lifecycle -------------------------------------------------------------
    def close(self) -> None:
        """Shut workers down and release every shared-memory segment."""
        if self._closed:
            return
        self._closed = True
        self._finalizer()

    def __enter__(self) -> "ProcessLanePool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ProcessLanePool(num_envs={self._num_envs}, num_workers={self.num_workers}, "
            f"work_stealing={self.work_stealing}, pipeline_depth={self.pipeline_depth}, "
            f"start_method={self.start_method!r})"
        )


def make_rollout_engine(
    environment: Environment,
    num_envs: int,
    seed: SeedLike = None,
    backend: str = "local",
    num_workers: int | None = None,
    work_stealing: bool = True,
    start_method: str | None = None,
    pipeline_depth: int = 1,
    presample: bool | None = None,
    respawn: bool = True,
    fault_plan: FaultPlan | None = None,
):
    """Build a rollout engine over ``num_envs`` lanes cloned from a template.

    ``backend="local"`` returns the in-process
    :class:`~repro.rl.vec_env.VecBackfillEnv`; ``backend="process"`` returns
    a :class:`ProcessLanePool` whose lanes live in worker processes.  Both
    backends derive lane seeds identically from ``seed``, so for one worker
    (stealing off) they produce bit-identical trajectories.

    ``pipeline_depth`` selects the process backend's round scheduling:
    1 = lockstep (the bit-identical path), 2 = double-buffered cohorts that
    overlap the parent's batched forward pass with worker simulator stepping
    (plus background episode pre-sampling; ``presample`` overrides its
    default of "on iff pipelined").  The local backend steps lanes in this
    process, so the knob does not apply and is ignored.

    ``work_stealing`` is deliberately NOT forwarded to the local backend
    either, even though :class:`~repro.rl.vec_env.VecBackfillEnv` now has a
    stealing mode: the trainer's default config sets ``work_stealing=True``,
    and wiring it through here would silently change every local-backend
    training run's trajectory stream.  The local stealing mode is a parity
    *reference* -- construct ``VecBackfillEnv`` with ``work_stealing=True``
    directly when you want it (as ``tests/test_parity_matrix.py`` does).
    """
    if backend == "local":
        return VecBackfillEnv.from_template(environment, num_envs, seed=seed)
    if backend == "process":
        return ProcessLanePool.from_template(
            environment,
            num_envs,
            seed=seed,
            num_workers=num_workers,
            work_stealing=work_stealing,
            start_method=start_method,
            pipeline_depth=pipeline_depth,
            presample=presample,
            respawn=respawn,
            fault_plan=fault_plan,
        )
    raise ValueError(f"unknown rollout backend {backend!r}; use 'local' or 'process'")
