"""Minimal reverse-mode automatic differentiation over NumPy arrays.

Supports exactly the operations the RLBackfilling networks and the PPO loss
need: dense affine layers, tanh/relu activations, log-softmax with masking,
elementwise arithmetic with broadcasting, clipping, elementwise min, exp/log,
and sum/mean reductions.  Gradients are accumulated into ``Tensor.grad`` by
:meth:`Tensor.backward`, which performs a topological sort of the recorded
computation graph.

The engine intentionally stays small (single dtype, no views/in-place ops, 2-D
matmul only): it is an execution substrate for the paper's models, not a
general deep-learning framework.

Two matrix products are provided: :meth:`Tensor.matmul` (plain BLAS, fastest,
but output rows can vary in the last ulp with batch size because the library
picks its algorithm from the product shape) and :meth:`Tensor.matmul_invariant`
(the **batch-invariant kernel** built on :func:`invariant_matmul`, whose
output rows are bit-identical regardless of how many rows share the batch).
The model layers (:class:`~repro.rl.nn.Linear`) use the invariant kernel, so
policy and value outputs -- and therefore rollout trajectories and PPO
updates -- do not depend on rollout lane count, worker shard layout, pipeline
depth, or minibatch composition.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, List, Optional, Sequence, Union

import numpy as np

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "invariant_matmul",
    "INVARIANT_ROW_BLOCK",
]

ArrayLike = Union[float, int, Sequence, np.ndarray, "Tensor"]

_GRAD_ENABLED = True

#: Fixed row-block size of :func:`invariant_matmul`.  Every BLAS call made by
#: the kernel multiplies exactly this many rows, so the library's
#: shape-dependent algorithm choice (gemv vs gemm, K-blocking, threading) is
#: pinned once and for all instead of varying with the caller's batch size.
#: 16 keeps the padding waste of small rollout batches low while the stacked
#: 3-D matmul stays within ~1.1-1.5x of a raw ``np.matmul`` at rollout batch
#: sizes (measured by ``benchmarks/test_bench_invariant_matmul.py``).
INVARIANT_ROW_BLOCK = 16


def invariant_matmul(
    a: np.ndarray, b: np.ndarray, row_block: Optional[int] = None
) -> np.ndarray:
    """``a @ b`` with batch-invariant output rows.

    Row-blocked BLAS kernels choose their algorithm (gemv vs gemm, K-panel
    blocking, threading) from the *shape* of the product, so the floats of
    output row ``i`` of a plain ``a @ b`` can differ in the last ulp depending
    on how many other rows share the batch.  This kernel removes that degree
    of freedom: rows are processed in fixed blocks of
    :data:`INVARIANT_ROW_BLOCK` (the tail block zero-padded) and multiplied
    through one stacked 3-D ``np.matmul``, so **every** underlying BLAS call
    has the identical ``(INVARIANT_ROW_BLOCK, k) @ (k, n)`` shape no matter
    how many rows the caller batched.  GEMM arithmetic never mixes rows, and
    with the call shape fixed the per-row accumulation order is fixed too;
    hence

    ``invariant_matmul(a[i : i + 1], b)[0] == invariant_matmul(a, b)[i]``

    bit for bit, for any batch composition (asserted over randomized shapes
    in ``tests/test_rl_autograd.py``).  This is what makes policy outputs
    identical across rollout lane count, worker shard layout, and pipeline
    depth -- see the determinism contract in ``docs/simulator.md``.

    ``row_block`` is a **per-call-site hint** overriding the default block
    size.  Batch invariance holds *within* a call site -- any fixed block
    puts row ``i`` at the fixed position ``i % block`` of block
    ``i // block`` -- but two sites using different blocks may disagree in
    the last ulp, so a site must pin one value for its lifetime.  Serial
    deployment sites (one decision forwarded at a time, e.g. the scenario
    harness's :class:`~repro.core.rlbackfill.RLBackfillPolicy`) use
    ``row_block=1`` to stop padding one row to 16, which recovers the
    3-5x single-row overhead measured by
    ``benchmarks/test_bench_invariant_matmul.py``.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError(
            f"invariant_matmul supports 2-D arrays only, got {a.shape} @ {b.shape}"
        )
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"shape mismatch for matmul: {a.shape} @ {b.shape}")
    rows = a.shape[0]
    cols = b.shape[1]
    if rows == 0:
        return np.zeros((0, cols), dtype=np.float64)
    block = INVARIANT_ROW_BLOCK if row_block is None else int(row_block)
    if block <= 0:
        raise ValueError(f"row_block must be positive, got {row_block}")
    num_blocks = -(-rows // block)
    padded = num_blocks * block
    if rows == padded:
        stacked = a.reshape(num_blocks, block, a.shape[1])
    else:
        stacked = np.zeros((num_blocks, block, a.shape[1]), dtype=np.float64)
        stacked.reshape(padded, a.shape[1])[:rows] = a
    return np.matmul(stacked, b).reshape(padded, cols)[:rows]


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph recording (used for rollouts)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    return _GRAD_ENABLED


def _as_array(value: ArrayLike) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=np.float64)


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` after a broadcasted forward op."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions that were added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A dense array with an optional gradient and a backward closure."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        parents: tuple["Tensor", ...] = (),
        backward: Optional[Callable[[np.ndarray], None]] = None,
        name: str = "",
    ):
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: Optional[np.ndarray] = None
        self._parents = parents if self.requires_grad else ()
        self._backward = backward if self.requires_grad else None
        self.name = name

    # -- construction helpers ----------------------------------------------
    @classmethod
    def zeros(cls, *shape: int, requires_grad: bool = False) -> "Tensor":
        return cls(np.zeros(shape), requires_grad=requires_grad)

    @classmethod
    def from_numpy(cls, array: np.ndarray, requires_grad: bool = False) -> "Tensor":
        return cls(np.asarray(array, dtype=np.float64), requires_grad=requires_grad)

    # -- basic introspection -------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        return self.data

    def item(self) -> float:
        if self.data.size != 1:
            raise ValueError(f"item() requires a single-element tensor, got shape {self.data.shape}")
        return float(self.data.reshape(()))

    def detach(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:
        return f"Tensor(shape={self.data.shape}, requires_grad={self.requires_grad})"

    # -- graph construction ---------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(p for p in parents if p.requires_grad)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.array(grad, dtype=np.float64, copy=True)
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor (must be scalar unless ``grad`` given)."""
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without an explicit gradient requires a scalar")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)

        # Topological order of the graph reachable from self.
        order: List[Tensor] = []
        visited: set[int] = set()
        stack: List[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # -- elementwise arithmetic -------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        data = self.data + other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.data.shape))
            if other_t.requires_grad:
                other_t._accumulate(_unbroadcast(grad, other_t.data.shape))

        return Tensor._make(data, (self, other_t), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        return self + (-other_t)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(_as_array(other)) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        data = self.data * other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other_t.data, self.data.shape))
            if other_t.requires_grad:
                other_t._accumulate(_unbroadcast(grad * self.data, other_t.data.shape))

        return Tensor._make(data, (self, other_t), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        data = self.data / other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other_t.data, self.data.shape))
            if other_t.requires_grad:
                other_t._accumulate(
                    _unbroadcast(-grad * self.data / (other_t.data**2), other_t.data.shape)
                )

        return Tensor._make(data, (self, other_t), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(_as_array(other)) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported")
        exponent = float(exponent)
        data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1.0))

        return Tensor._make(data, (self,), backward)

    # -- matrix ops -------------------------------------------------------------
    def matmul(self, other: "Tensor") -> "Tensor":
        if not isinstance(other, Tensor):
            other = Tensor(_as_array(other))
        if self.data.ndim != 2 or other.data.ndim != 2:
            raise ValueError(
                f"matmul supports 2-D tensors only, got {self.data.shape} @ {other.data.shape}"
            )
        data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad @ other.data.T)
            if other.requires_grad:
                other._accumulate(self.data.T @ grad)

        return Tensor._make(data, (self, other), backward)

    __matmul__ = matmul

    def matmul_invariant(self, other: "Tensor", row_block: Optional[int] = None) -> "Tensor":
        """Matrix product with batch-invariant rows (see :func:`invariant_matmul`).

        Forward and both backward products go through the fixed-block kernel:
        the gradient w.r.t. this tensor (``grad @ other.T``) keeps per-row
        batch invariance, and the gradient w.r.t. ``other`` (``self.T @
        grad``) reduces over the batch with the same fixed blocking, so the
        whole op is bitwise reproducible for a given batch.  ``Linear``
        layers route through this op, which is what makes policy/value
        outputs independent of rollout batch composition.

        ``row_block`` is the per-call-site block-size hint of
        :func:`invariant_matmul`; all three products of this op use it, so a
        site that pins a value stays internally bit-reproducible.
        """
        if not isinstance(other, Tensor):
            other = Tensor(_as_array(other))
        data = invariant_matmul(self.data, other.data, row_block=row_block)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(invariant_matmul(grad, other.data.T, row_block=row_block))
            if other.requires_grad:
                other._accumulate(invariant_matmul(self.data.T, grad, row_block=row_block))

        return Tensor._make(data, (self, other), backward)

    def reshape(self, *shape: int) -> "Tensor":
        original = self.data.shape
        data = self.data.reshape(*shape)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return Tensor._make(data, (self,), backward)

    # -- nonlinearities -----------------------------------------------------------
    def relu(self) -> "Tensor":
        mask = self.data > 0.0
        data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(data, (self,), backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - data**2))

        return Tensor._make(data, (self,), backward)

    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * data)

        return Tensor._make(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._make(data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        data = np.clip(self.data, low, high)
        inside = (self.data >= low) & (self.data <= high)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * inside)

        return Tensor._make(data, (self,), backward)

    def minimum(self, other: "Tensor") -> "Tensor":
        if not isinstance(other, Tensor):
            other = Tensor(_as_array(other))
        take_self = self.data <= other.data
        data = np.where(take_self, self.data, other.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * take_self, self.data.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * ~take_self, other.data.shape))

        return Tensor._make(data, (self, other), backward)

    def maximum(self, other: "Tensor") -> "Tensor":
        if not isinstance(other, Tensor):
            other = Tensor(_as_array(other))
        take_self = self.data >= other.data
        data = np.where(take_self, self.data, other.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * take_self, self.data.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * ~take_self, other.data.shape))

        return Tensor._make(data, (self, other), backward)

    # -- reductions ----------------------------------------------------------------
    def sum(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)
        shape = self.data.shape

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = np.asarray(grad, dtype=np.float64)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, shape).copy())

        return Tensor._make(data, (self,), backward)

    def mean(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    # -- softmax family -------------------------------------------------------------
    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        log_norm = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        data = shifted - log_norm
        softmax = np.exp(data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                grad_sum = grad.sum(axis=axis, keepdims=True)
                self._accumulate(grad - softmax * grad_sum)

        return Tensor._make(data, (self,), backward)

    def softmax(self, axis: int = -1) -> "Tensor":
        return self.log_softmax(axis=axis).exp()


def stack_rows(tensors: Iterable[Tensor]) -> np.ndarray:
    """Stack detached tensor data row-wise (helper for diagnostics)."""
    return np.stack([t.data for t in tensors], axis=0)
