"""Minimal environment interface for masked discrete-action RL.

The interface mirrors the Gym/Spinning-Up convention but adds an explicit
**action mask** to every observation: RLBackfilling's action space is "one of
the first MAX_OBSV_SIZE queue slots" and only slots holding a job that fits
the free processors are valid at any decision point (§3.2-§3.4).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

import numpy as np

__all__ = ["StepResult", "Environment"]


@dataclass(frozen=True, slots=True)
class StepResult:
    """Outcome of one environment step.

    ``observation`` may be ``None`` when the environment supports deferred
    encoding and was stepped with ``encode=False``; the vectorized rollout
    engine then encodes the observations of all lanes in one batched pass.
    """

    observation: Optional[np.ndarray]
    mask: np.ndarray
    reward: float
    done: bool
    info: Dict[str, Any] = field(default_factory=dict)


class Environment(ABC):
    """Episodic environment with a masked discrete action space."""

    @property
    @abstractmethod
    def observation_size(self) -> int:
        """Length of the flattened observation vector."""

    @property
    @abstractmethod
    def num_actions(self) -> int:
        """Size of the (fixed) discrete action space."""

    @abstractmethod
    def reset(self) -> Tuple[np.ndarray, np.ndarray]:
        """Start a new episode; returns ``(observation, action_mask)``."""

    @abstractmethod
    def step(self, action: int) -> StepResult:
        """Apply ``action`` and advance to the next decision point."""

    def validate_action(self, action: int, mask: np.ndarray) -> None:
        """Raise if ``action`` is out of range or masked out."""
        if not 0 <= action < self.num_actions:
            raise ValueError(f"action {action} outside [0, {self.num_actions})")
        if mask[action] <= 0:
            raise ValueError(f"action {action} is masked out at this decision point")
