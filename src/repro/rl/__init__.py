"""Reinforcement-learning substrate: autograd, neural nets, Adam, PPO.

The paper implements RLBackfilling with PyTorch and the OpenAI Spinning Up
PPO.  Neither is available offline, so this subpackage provides the same
building blocks from scratch on top of NumPy:

* :mod:`repro.rl.autograd` -- a small reverse-mode automatic differentiation
  engine over dense arrays.
* :mod:`repro.rl.nn` -- parameterized modules (Linear, activations, MLP).
* :mod:`repro.rl.optim` -- SGD and Adam.
* :mod:`repro.rl.buffer` -- trajectory buffer with GAE-lambda advantages.
* :mod:`repro.rl.ppo` -- the clipped-surrogate PPO update.
* :mod:`repro.rl.env` -- the minimal environment interface the trainer expects.
* :mod:`repro.rl.vec_env` -- the vectorized multi-environment rollout engine.
* :mod:`repro.rl.ipc` -- shared-memory ring buffers for the lane pool.
* :mod:`repro.rl.lane_pool` -- the multiprocess rollout lane pool.
"""

from repro.rl.autograd import Tensor, no_grad
from repro.rl.nn import Module, Linear, Tanh, ReLU, Sequential, MLP
from repro.rl.optim import Optimizer, SGD, Adam
from repro.rl.buffer import TrajectoryBuffer
from repro.rl.ppo import PPO, PPOConfig, ActorCritic
from repro.rl.env import Environment, StepResult
from repro.rl.vec_env import VecBackfillEnv
from repro.rl.lane_pool import ProcessLanePool, make_rollout_engine
from repro.rl.running_stat import RunningMeanStd

__all__ = [
    "Tensor",
    "no_grad",
    "Module",
    "Linear",
    "Tanh",
    "ReLU",
    "Sequential",
    "MLP",
    "Optimizer",
    "SGD",
    "Adam",
    "TrajectoryBuffer",
    "PPO",
    "PPOConfig",
    "ActorCritic",
    "Environment",
    "StepResult",
    "VecBackfillEnv",
    "ProcessLanePool",
    "make_rollout_engine",
    "RunningMeanStd",
]
