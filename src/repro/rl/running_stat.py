"""Running mean/variance estimator (Welford) for streaming normalization."""

from __future__ import annotations

import numpy as np

__all__ = ["RunningMeanStd"]


class RunningMeanStd:
    """Tracks mean and variance of a stream of scalars or vectors."""

    def __init__(self, shape: tuple[int, ...] = ()):
        self.mean = np.zeros(shape, dtype=np.float64)
        self._m2 = np.zeros(shape, dtype=np.float64)
        self.count = 0

    def update(self, value) -> None:
        """Add one observation (scalar or array matching ``shape``)."""
        value = np.asarray(value, dtype=np.float64)
        self.count += 1
        delta = value - self.mean
        self.mean = self.mean + delta / self.count
        self._m2 = self._m2 + delta * (value - self.mean)

    def update_batch(self, values) -> None:
        for value in np.asarray(values, dtype=np.float64):
            self.update(value)

    @property
    def variance(self) -> np.ndarray:
        if self.count < 2:
            return np.ones_like(self.mean)
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> np.ndarray:
        return np.sqrt(np.maximum(self.variance, 1e-12))

    def normalize(self, value) -> np.ndarray:
        """Return ``(value - mean) / std`` with a numerical floor on std."""
        return (np.asarray(value, dtype=np.float64) - self.mean) / self.std
