"""Neural-network modules on top of the autograd engine.

Provides the pieces the paper's networks need: dense layers with sensible
initialization, tanh/relu activations, sequential containers, and a
convenience MLP builder.  Parameters are :class:`~repro.rl.autograd.Tensor`
objects with ``requires_grad=True``; optimizers consume ``module.parameters()``.

:class:`Linear` computes its affine map through the **batch-invariant matmul
kernel** (:meth:`Tensor.matmul_invariant`): every output row is bit-identical
whether it is forwarded alone or inside any larger batch.  Since all model
matmuls go through ``Linear``, the networks' outputs are invariant to rollout
batch composition -- the property the vectorized/multiprocess/pipelined
rollout engines' bit-parity contract rests on.

State is (de)serialized by **qualified attribute path** (e.g.
``network.0.weight`` for the first layer of an :class:`MLP`), so a checkpoint
can never load into the wrong layer of an architecture that merely happens to
match in parameter count and shapes.  Flat-index keys (``"0"``, ``"1"``, ...)
from older checkpoints are still accepted as a deprecated fallback.
"""

from __future__ import annotations

import warnings
from typing import Callable, Dict, Iterable, Iterator, List, Sequence, Tuple

import numpy as np

from repro.rl.autograd import Tensor
from repro.utils.rng import SeedLike, as_rng

__all__ = ["Module", "Linear", "Tanh", "ReLU", "Identity", "Sequential", "MLP"]


class Module:
    """Base class for parameterized computations."""

    def _named_members(self) -> Iterable[Tuple[str, "Tensor | Module"]]:
        """Direct children as ``(name, tensor-or-module)`` in attribute order.

        List/tuple attributes contribute their module items as
        ``attr.<index>``; containers with a natural indexing (e.g.
        :class:`Sequential`) override this to expose bare indices instead.
        """
        for name, value in self.__dict__.items():
            if isinstance(value, Tensor) and value.requires_grad:
                yield name, value
            elif isinstance(value, Module):
                yield name, value
            elif isinstance(value, (list, tuple)):
                for index, item in enumerate(value):
                    if isinstance(item, Module):
                        yield f"{name}.{index}", item

    def named_parameters(self) -> List[Tuple[str, Tensor]]:
        """``(qualified_path, tensor)`` pairs, in ``parameters()`` order.

        The qualified path is the dotted attribute route to the tensor (e.g.
        ``network.0.weight``); a tensor shared between two attributes appears
        once, under the first path that reaches it.
        """
        named: List[Tuple[str, Tensor]] = []
        seen: set[int] = set()
        self._collect_named(named, seen, "")
        return named

    def _collect_named(
        self, named: List[Tuple[str, Tensor]], seen: set, prefix: str
    ) -> None:
        for name, value in self._named_members():
            if isinstance(value, Tensor):
                if id(value) not in seen:
                    seen.add(id(value))
                    named.append((f"{prefix}{name}", value))
            else:
                value._collect_named(named, seen, f"{prefix}{name}.")

    def parameters(self) -> List[Tensor]:
        """All trainable tensors owned by this module (recursively)."""
        return [param for _, param in self.named_parameters()]

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # -- state (de)serialization -------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Mapping of qualified attribute path -> array (``named_parameters()`` order)."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameter arrays, keyed by qualified path.

        Keys must match :meth:`named_parameters` exactly (missing or
        unexpected entries raise ``ValueError`` naming them) and every array
        must match its parameter's shape.  A state dict whose keys are all
        flat indices (``"0"``, ``"1"``, ... -- the pre-path checkpoint
        format) is accepted as a deprecated fallback and mapped by
        ``parameters()`` order; such a mapping cannot detect a reordered
        architecture whose shapes happen to line up, which is why it warns.
        """
        named = self.named_parameters()
        if state and all(key.isdigit() for key in state):
            warnings.warn(
                "loading an index-keyed state dict; index keys cannot detect "
                "architecture mismatches and will be removed -- re-save the "
                "checkpoint to upgrade it to qualified-path keys",
                DeprecationWarning,
                stacklevel=2,
            )
            if len(state) != len(named):
                raise ValueError(
                    f"state dict has {len(state)} arrays but the module has "
                    f"{len(named)} parameters"
                )
            entries = [(str(i), param) for i, (_, param) in enumerate(named)]
        else:
            known = {name for name, _ in named}
            missing = [name for name, _ in named if name not in state]
            unexpected = [key for key in state if key not in known]
            if missing or unexpected:
                raise ValueError(
                    "state dict keys do not match the module's parameters: "
                    f"missing {missing or 'none'}, unexpected {unexpected or 'none'}"
                )
            entries = named
        for key, param in entries:
            array = np.asarray(state[key], dtype=np.float64)
            if array.shape != param.data.shape:
                raise ValueError(
                    f"parameter {key!r} shape mismatch: module has "
                    f"{param.data.shape}, state has {array.shape}"
                )
            param.data = array.copy()

    def set_forward_row_block(self, row_block: int | None) -> None:
        """Pin the matmul row-block hint of every :class:`Linear` child.

        ``row_block`` is the per-call-site hint of
        :func:`repro.rl.autograd.invariant_matmul`: any fixed value keeps the
        module batch-invariant per row, but *changing* it changes the floats
        in the last ulp, so set it once when a model is instantiated for a
        new site (e.g. ``1`` for serial deployment, where padding one row to
        the default block of 16 costs 3-5x) and never mid-run.  ``None``
        restores the default block.
        """
        for name, value in list(self.__dict__.items()):
            if isinstance(value, Module):
                value.set_forward_row_block(row_block)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        item.set_forward_row_block(row_block)
        if isinstance(self, Linear):
            self.row_block = row_block

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract by convention
        raise NotImplementedError


class Linear(Module):
    """Affine layer ``y = x @ W + b`` with scaled-uniform (Xavier) initialization.

    The product runs through the batch-invariant matmul kernel
    (:meth:`Tensor.matmul_invariant`), so each output row is bit-identical no
    matter how many rows share the forward batch; the bias add and every
    activation are elementwise, which leaves whole-network outputs
    batch-invariant per row.

    ``row_block`` is the layer's per-call-site block-size hint (see
    :func:`repro.rl.autograd.invariant_matmul`): ``None`` uses the default
    ``INVARIANT_ROW_BLOCK``; serial deployment sites pin ``1`` -- typically
    via :meth:`Module.set_forward_row_block` on the whole model -- to skip
    the 1-row-to-16 padding.  Invariance holds for any fixed value; only
    changing it mid-run changes floats.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        seed: SeedLike = None,
        row_block: int | None = None,
    ):
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Linear layer dimensions must be positive")
        rng = as_rng(seed)
        bound = np.sqrt(6.0 / (in_features + out_features))
        self.in_features = in_features
        self.out_features = out_features
        self.row_block = row_block
        self.weight = Tensor(
            rng.uniform(-bound, bound, size=(in_features, out_features)), requires_grad=True
        )
        self.bias = Tensor(np.zeros(out_features), requires_grad=True) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x.matmul_invariant(self.weight, row_block=self.row_block)
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return (
            f"Linear({self.in_features}, {self.out_features}, bias={self.bias is not None}"
            + (f", row_block={self.row_block}" if self.row_block is not None else "")
            + ")"
        )


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x


class Sequential(Module):
    """Apply modules in order."""

    def __init__(self, *modules: Module):
        self.modules = list(modules)

    def _named_members(self) -> Iterable[Tuple[str, "Tensor | Module"]]:
        # Children are addressed by bare position (``network.0.weight``
        # rather than ``network.modules.0.weight``), mirroring the usual
        # sequential-container convention.
        for index, module in enumerate(self.modules):
            yield str(index), module

    def forward(self, x: Tensor) -> Tensor:
        for module in self.modules:
            x = module(x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self.modules)

    def __len__(self) -> int:
        return len(self.modules)

    def __repr__(self) -> str:
        inner = ", ".join(repr(m) for m in self.modules)
        return f"Sequential({inner})"


_ACTIVATIONS: Dict[str, Callable[[], Module]] = {
    "tanh": Tanh,
    "relu": ReLU,
    "identity": Identity,
}


class MLP(Module):
    """Fully connected network with a configurable activation.

    ``sizes=[in, h1, h2, out]`` builds three Linear layers with the activation
    between hidden layers and ``output_activation`` after the last one.
    """

    def __init__(
        self,
        sizes: Sequence[int],
        activation: str = "tanh",
        output_activation: str = "identity",
        seed: SeedLike = None,
    ):
        if len(sizes) < 2:
            raise ValueError("MLP needs at least an input and an output size")
        if activation not in _ACTIVATIONS or output_activation not in _ACTIVATIONS:
            raise KeyError(
                f"unknown activation; available: {', '.join(_ACTIVATIONS)}"
            )
        rng = as_rng(seed)
        layers: List[Module] = []
        for i, (fan_in, fan_out) in enumerate(zip(sizes[:-1], sizes[1:])):
            layers.append(Linear(fan_in, fan_out, seed=rng))
            is_last = i == len(sizes) - 2
            layers.append(_ACTIVATIONS[output_activation if is_last else activation]())
        self.network = Sequential(*layers)
        self.sizes = tuple(sizes)

    def forward(self, x: Tensor) -> Tensor:
        return self.network(x)

    def __repr__(self) -> str:
        return f"MLP(sizes={self.sizes})"
