"""Neural-network modules on top of the autograd engine.

Provides the pieces the paper's networks need: dense layers with sensible
initialization, tanh/relu activations, sequential containers, and a
convenience MLP builder.  Parameters are :class:`~repro.rl.autograd.Tensor`
objects with ``requires_grad=True``; optimizers consume ``module.parameters()``.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Sequence

import numpy as np

from repro.rl.autograd import Tensor
from repro.utils.rng import SeedLike, as_rng

__all__ = ["Module", "Linear", "Tanh", "ReLU", "Identity", "Sequential", "MLP"]


class Module:
    """Base class for parameterized computations."""

    def parameters(self) -> List[Tensor]:
        """All trainable tensors owned by this module (recursively)."""
        params: List[Tensor] = []
        seen: set[int] = set()
        for value in self.__dict__.values():
            found: Iterable[Tensor]
            if isinstance(value, Tensor) and value.requires_grad:
                found = [value]
            elif isinstance(value, Module):
                found = value.parameters()
            elif isinstance(value, (list, tuple)):
                found = [p for item in value if isinstance(item, Module) for p in item.parameters()]
            else:
                continue
            for param in found:
                if id(param) not in seen:
                    seen.add(id(param))
                    params.append(param)
        return params

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # -- state (de)serialization -------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Flat mapping of parameter index -> array (order of ``parameters()``)."""
        return {str(i): p.data.copy() for i, p in enumerate(self.parameters())}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        params = self.parameters()
        if len(state) != len(params):
            raise ValueError(
                f"state dict has {len(state)} arrays but the module has {len(params)} parameters"
            )
        for i, param in enumerate(params):
            array = np.asarray(state[str(i)], dtype=np.float64)
            if array.shape != param.data.shape:
                raise ValueError(
                    f"parameter {i} shape mismatch: module has {param.data.shape}, "
                    f"state has {array.shape}"
                )
            param.data = array.copy()

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract by convention
        raise NotImplementedError


class Linear(Module):
    """Affine layer ``y = x @ W + b`` with scaled-uniform (Xavier) initialization."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True, seed: SeedLike = None):
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Linear layer dimensions must be positive")
        rng = as_rng(seed)
        bound = np.sqrt(6.0 / (in_features + out_features))
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Tensor(
            rng.uniform(-bound, bound, size=(in_features, out_features)), requires_grad=True
        )
        self.bias = Tensor(np.zeros(out_features), requires_grad=True) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features}, bias={self.bias is not None})"


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x


class Sequential(Module):
    """Apply modules in order."""

    def __init__(self, *modules: Module):
        self.modules = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for module in self.modules:
            x = module(x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self.modules)

    def __len__(self) -> int:
        return len(self.modules)

    def __repr__(self) -> str:
        inner = ", ".join(repr(m) for m in self.modules)
        return f"Sequential({inner})"


_ACTIVATIONS: Dict[str, Callable[[], Module]] = {
    "tanh": Tanh,
    "relu": ReLU,
    "identity": Identity,
}


class MLP(Module):
    """Fully connected network with a configurable activation.

    ``sizes=[in, h1, h2, out]`` builds three Linear layers with the activation
    between hidden layers and ``output_activation`` after the last one.
    """

    def __init__(
        self,
        sizes: Sequence[int],
        activation: str = "tanh",
        output_activation: str = "identity",
        seed: SeedLike = None,
    ):
        if len(sizes) < 2:
            raise ValueError("MLP needs at least an input and an output size")
        if activation not in _ACTIVATIONS or output_activation not in _ACTIVATIONS:
            raise KeyError(
                f"unknown activation; available: {', '.join(_ACTIVATIONS)}"
            )
        rng = as_rng(seed)
        layers: List[Module] = []
        for i, (fan_in, fan_out) in enumerate(zip(sizes[:-1], sizes[1:])):
            layers.append(Linear(fan_in, fan_out, seed=rng))
            is_last = i == len(sizes) - 2
            layers.append(_ACTIVATIONS[output_activation if is_last else activation]())
        self.network = Sequential(*layers)
        self.sizes = tuple(sizes)

    def forward(self, x: Tensor) -> Tensor:
        return self.network(x)

    def __repr__(self) -> str:
        return f"MLP(sizes={self.sizes})"
