"""Proximal Policy Optimization (clipped surrogate objective).

Follows the Spinning Up reference implementation the paper uses: an
actor-critic model, GAE-lambda advantages from :class:`TrajectoryBuffer`, 80
policy/value update iterations per epoch with early stopping on approximate
KL divergence, and Adam for both networks.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.obs import get_metrics, get_tracer
from repro.rl.autograd import Tensor, no_grad
from repro.rl.optim import Adam
from repro.utils.rng import SeedLike, as_rng

__all__ = ["ActorCritic", "PPOConfig", "PPOUpdateStats", "PPO"]

#: Additive logit penalty applied to masked-out actions before the softmax.
MASK_PENALTY = 1e8


class ActorCritic(ABC):
    """Actor-critic model interface consumed by :class:`PPO`.

    The actor produces one logit per discrete action; invalid actions are
    suppressed by the caller through the action mask.  The critic maps the
    same observation to a scalar state value.
    """

    @abstractmethod
    def policy_logits(self, observations: Tensor) -> Tensor:
        """Batch of unmasked action logits, shape ``(batch, num_actions)``."""

    @abstractmethod
    def value(self, observations: Tensor) -> Tensor:
        """Batch of state values, shape ``(batch,)``."""

    @abstractmethod
    def policy_parameters(self) -> List[Tensor]:
        ...

    @abstractmethod
    def value_parameters(self) -> List[Tensor]:
        ...

    # -- rollout helpers ------------------------------------------------------
    def masked_log_probs(self, observations: Tensor, masks: np.ndarray) -> Tensor:
        """Log-probabilities over actions with masked actions pushed to -inf."""
        logits = self.policy_logits(observations)
        penalty = Tensor((1.0 - np.asarray(masks, dtype=np.float64)) * -MASK_PENALTY)
        return (logits + penalty).log_softmax(axis=-1)

    def step_batch(
        self,
        observations: np.ndarray,
        masks: np.ndarray,
        rngs: Sequence[np.random.Generator] | None = None,
        deterministic: bool = False,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sample (or argmax) one action per row in a single forward pass.

        This is the vectorized rollout primitive: ``observations`` has shape
        ``(num_lanes, observation_size)`` and the policy/value networks run
        once for the whole batch.  ``rngs`` supplies one generator per row so
        each lane's action stream is independent of how many other lanes are
        in the batch and of their order -- lane ``i`` always consumes exactly
        one uniform draw from ``rngs[i]`` per decision.  Row ``i``'s floats
        are **batch-invariant**: the networks' matmuls run through
        :meth:`Tensor.matmul_invariant` and the masking/softmax/sampling math
        is elementwise or per-row, so ``step_batch(obs[i:i+1], ...)`` returns
        bit-identical ``(action, value, log_prob)`` to row ``i`` of any
        larger batch containing it.

        Returns ``(actions, values, log_probs)`` arrays of length
        ``num_lanes``; runs under ``no_grad``.
        """
        obs_batch = np.asarray(observations, dtype=np.float64)
        mask_batch = np.asarray(masks, dtype=np.float64)
        if obs_batch.ndim != 2 or mask_batch.ndim != 2:
            raise ValueError("step_batch expects 2-D (batch, features) inputs")
        batch = obs_batch.shape[0]
        with no_grad():
            obs_t = Tensor(obs_batch)
            log_probs = self.masked_log_probs(obs_t, mask_batch).numpy()
            values = self.value(obs_t).numpy()
        if deterministic:
            actions = np.argmax(log_probs, axis=1)
        else:
            if rngs is None or len(rngs) != batch:
                raise ValueError(
                    f"step_batch needs one rng per row ({batch}), got "
                    f"{0 if rngs is None else len(rngs)}"
                )
            probs = np.exp(log_probs)
            probs /= probs.sum(axis=1, keepdims=True)
            cdfs = np.cumsum(probs, axis=1)
            # Inverse-CDF sampling: exactly one uniform per lane (drawn from
            # that lane's own rng, so lanes stay order-independent), rescaled
            # by the actual cdf total so rounding in the cumsum cannot push
            # the draw past the last action.  Counting cdf entries <= draw is
            # searchsorted(side="right"), vectorized over the batch.
            uniforms = np.fromiter((rng.random() for rng in rngs), dtype=np.float64, count=batch)
            draws = uniforms * cdfs[:, -1]
            actions = np.minimum(
                (cdfs <= draws[:, None]).sum(axis=1), cdfs.shape[1] - 1
            ).astype(np.int64)
        chosen = log_probs[np.arange(batch), actions]
        return actions, values, chosen

    def step(
        self,
        observation: np.ndarray,
        mask: np.ndarray,
        rng: np.random.Generator | None = None,
        deterministic: bool = False,
    ) -> Tuple[int, float, float]:
        """Sample (or argmax) an action for a single observation.

        Delegates to :meth:`step_batch` with a batch of one; since
        ``step_batch`` is batch-invariant per row, this agrees bit for bit
        with the same observation forwarded inside any batch -- the serial
        rollout path, the vectorized engine at any ``num_envs``, and the
        worker pools at any shard layout or pipeline depth all see identical
        floats.
        """
        rng = as_rng(rng)
        actions, values, log_probs = self.step_batch(
            np.asarray(observation, dtype=np.float64)[None, :],
            np.asarray(mask, dtype=np.float64)[None, :],
            rngs=None if deterministic else [rng],
            deterministic=deterministic,
        )
        return int(actions[0]), float(values[0]), float(log_probs[0])


@dataclass(frozen=True, slots=True)
class PPOConfig:
    """Hyper-parameters of the PPO update (paper §4.1.1 defaults)."""

    clip_ratio: float = 0.2
    policy_lr: float = 1e-3
    value_lr: float = 1e-3
    policy_iterations: int = 80
    value_iterations: int = 80
    target_kl: float = 0.05
    entropy_coefficient: float = 0.01
    max_grad_norm: float | None = 10.0
    #: Discount factor.  The backfilling reward is episodic (only the terminal
    #: step carries the bsld improvement), so no discounting is applied by
    #: default -- otherwise early decisions in a multi-hundred-step episode
    #: would receive a vanishing share of the credit.
    gamma: float = 1.0
    #: GAE lambda.  With a terminal-only reward the full-return advantage
    #: (lambda = 1) is required for every decision in the episode to receive
    #: credit for the final bsld improvement.
    lam: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.clip_ratio < 1.0:
            raise ValueError(f"clip_ratio must lie in (0, 1), got {self.clip_ratio}")
        if self.policy_iterations <= 0 or self.value_iterations <= 0:
            raise ValueError("iteration counts must be positive")
        if self.target_kl <= 0:
            raise ValueError("target_kl must be positive")


@dataclass(frozen=True, slots=True)
class PPOUpdateStats:
    """Diagnostics of one epoch's PPO update."""

    policy_loss: float
    value_loss: float
    approximate_kl: float
    entropy: float
    clip_fraction: float
    policy_iterations_run: int


class PPO:
    """Clipped-surrogate PPO over an :class:`ActorCritic` model."""

    def __init__(self, actor_critic: ActorCritic, config: PPOConfig | None = None, seed: SeedLike = None):
        self.actor_critic = actor_critic
        self.config = config or PPOConfig()
        self.rng = as_rng(seed)
        self.policy_optimizer = Adam(actor_critic.policy_parameters(), lr=self.config.policy_lr)
        self.value_optimizer = Adam(actor_critic.value_parameters(), lr=self.config.value_lr)

    # -- loss pieces ----------------------------------------------------------
    def _policy_loss(
        self,
        observations: np.ndarray,
        masks: np.ndarray,
        actions: np.ndarray,
        advantages: np.ndarray,
        log_probs_old: np.ndarray,
    ) -> Tuple[Tensor, Dict[str, float]]:
        cfg = self.config
        obs_t = Tensor(observations)
        log_probs_all = self.actor_critic.masked_log_probs(obs_t, masks)
        one_hot = np.zeros_like(masks, dtype=np.float64)
        one_hot[np.arange(actions.shape[0]), actions] = 1.0
        log_probs = (log_probs_all * Tensor(one_hot)).sum(axis=1)

        adv_t = Tensor(advantages)
        ratio = (log_probs - Tensor(log_probs_old)).exp()
        clipped_ratio = ratio.clip(1.0 - cfg.clip_ratio, 1.0 + cfg.clip_ratio)
        surrogate = (ratio * adv_t).minimum(clipped_ratio * adv_t)
        loss = -surrogate.mean()

        probs = log_probs_all.exp()
        entropy = -(probs * log_probs_all).sum(axis=1).mean()
        if cfg.entropy_coefficient > 0.0:
            loss = loss - entropy * cfg.entropy_coefficient

        ratio_values = ratio.numpy()
        stats = {
            "approximate_kl": float(np.mean(log_probs_old - log_probs.numpy())),
            "entropy": float(entropy.numpy()),
            "clip_fraction": float(
                np.mean(
                    (ratio_values > 1.0 + cfg.clip_ratio) | (ratio_values < 1.0 - cfg.clip_ratio)
                )
            ),
        }
        return loss, stats

    def _value_loss(self, observations: np.ndarray, returns: np.ndarray) -> Tensor:
        values = self.actor_critic.value(Tensor(observations))
        diff = values - Tensor(returns)
        return (diff * diff).mean()

    # -- update ----------------------------------------------------------------
    def update(self, data: Dict[str, np.ndarray]) -> PPOUpdateStats:
        """Run the PPO update on one epoch of trajectories (output of ``TrajectoryBuffer.get``)."""
        cfg = self.config
        observations = data["observations"]
        masks = data["masks"]
        actions = data["actions"]
        advantages = data["advantages"]
        returns = data["returns"]
        log_probs_old = data["log_probs"]

        # Update timing is diagnostic only: clocks are read when collection
        # or tracing is on, and nothing below feeds a timestamp back into the
        # gradient math, so enabling observability cannot perturb training.
        registry = get_metrics()
        tracer = get_tracer()
        observing = registry.enabled or tracer.enabled
        if observing:
            policy_hist = registry.histogram("ppo_policy_iteration_seconds")
            value_hist = registry.histogram("ppo_value_iteration_seconds")
            t_update = time.perf_counter_ns()

        policy_loss_value = 0.0
        last_stats = {"approximate_kl": 0.0, "entropy": 0.0, "clip_fraction": 0.0}
        iterations_run = 0
        for _ in range(cfg.policy_iterations):
            t_iter = time.perf_counter_ns() if observing else 0
            self.policy_optimizer.zero_grad()
            loss, stats = self._policy_loss(observations, masks, actions, advantages, log_probs_old)
            last_stats = stats
            if stats["approximate_kl"] > 1.5 * cfg.target_kl:
                # Early stopping as in Spinning Up: the new policy drifted far
                # enough from the sampling policy that further steps would be
                # off-policy.
                break
            loss.backward()
            if cfg.max_grad_norm is not None:
                self.policy_optimizer.clip_grad_norm(cfg.max_grad_norm)
            self.policy_optimizer.step()
            policy_loss_value = float(loss.numpy())
            iterations_run += 1
            if observing:
                dt = time.perf_counter_ns() - t_iter
                policy_hist.observe(dt / 1e9)
                tracer.complete("ppo.policy_iteration", t_iter, dt, cat="train")

        value_loss_value = 0.0
        for _ in range(cfg.value_iterations):
            t_iter = time.perf_counter_ns() if observing else 0
            self.value_optimizer.zero_grad()
            value_loss = self._value_loss(observations, returns)
            value_loss.backward()
            if cfg.max_grad_norm is not None:
                self.value_optimizer.clip_grad_norm(cfg.max_grad_norm)
            self.value_optimizer.step()
            value_loss_value = float(value_loss.numpy())
            if observing:
                dt = time.perf_counter_ns() - t_iter
                value_hist.observe(dt / 1e9)
                tracer.complete("ppo.value_iteration", t_iter, dt, cat="train")

        if observing:
            registry.counter("ppo_updates_total").inc()
            registry.counter("ppo_policy_iterations_total").inc(iterations_run)
            registry.counter("ppo_value_iterations_total").inc(cfg.value_iterations)
            tracer.complete(
                "ppo.update",
                t_update,
                time.perf_counter_ns() - t_update,
                cat="train",
                args={"policy_iterations_run": iterations_run},
            )

        return PPOUpdateStats(
            policy_loss=policy_loss_value,
            value_loss=value_loss_value,
            approximate_kl=last_stats["approximate_kl"],
            entropy=last_stats["entropy"],
            clip_fraction=last_stats["clip_fraction"],
            policy_iterations_run=iterations_run,
        )
