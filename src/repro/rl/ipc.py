"""Shared-memory IPC primitives for the multiprocess rollout lane pool.

The parent process and each lane-pool worker exchange **fixed-layout frames**
through :class:`ShmRing`, a single-producer/single-consumer ring buffer laid
out in one :class:`multiprocessing.shared_memory.SharedMemory` segment.  A
frame is a packed struct of named numpy fields (:class:`FrameLayout`); the
hot path writes observation/action/reward arrays directly into the mapped
slot and never pickles anything.

Synchronization uses two counting semaphores per ring (classic
bounded-buffer): ``_free`` counts empty slots (producer acquires before
writing), ``_full`` counts ready frames (consumer acquires before reading).
Both sides track their own slot index locally -- with exactly one producer
and one consumer the indices advance monotonically and never race.

A ring with ``capacity >= 2`` supports **multiple frames in flight**, which
is what the pipelined lane pool's double-buffered cohorts build on: the
parent pushes round *t+1*'s command frame for one cohort while the worker is
still stepping the other cohort's round *t*, and frames carry a cohort tag
in their header so each side can pair commands with results (see
``docs/simulator.md`` §5).  ``timeout=0`` on :meth:`push`/:meth:`pop` is a
non-blocking poll -- the consumer can check for a pending frame and spend
idle gaps on background work (worker-side episode pre-sampling) instead of
blocking.

The ring object is construct-in-parent, attach-in-child: it pickles its
geometry and the segment *name* (never the mapping), and the child re-maps
the segment lazily on first use.  Child attachments deregister themselves
from the :mod:`multiprocessing.resource_tracker` so only the creating parent
unlinks the segment.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np
from multiprocessing import resource_tracker, shared_memory

__all__ = ["Field", "FrameLayout", "ShmRing", "RingClosed", "RingTimeout"]


class RingClosed(RuntimeError):
    """The ring's shared-memory segment is gone (peer shut down)."""


class RingTimeout(TimeoutError):
    """No frame arrived (or no slot freed) within the allotted time."""


@dataclass(frozen=True)
class Field:
    """One named array field of a frame."""

    name: str
    shape: Tuple[int, ...]
    dtype: str = "float64"

    @property
    def nbytes(self) -> int:
        return int(np.dtype(self.dtype).itemsize * int(np.prod(self.shape, dtype=np.int64)))


class FrameLayout:
    """Byte layout of one frame: named fields packed back to back.

    Every field is aligned to 8 bytes (all frame dtypes are 8-byte scalars
    anyway), so a frame can be mapped as numpy views with zero copies.
    """

    def __init__(self, fields: Sequence[Field]):
        if not fields:
            raise ValueError("a frame needs at least one field")
        names = [f.name for f in fields]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate frame field names: {names}")
        self.fields: Tuple[Field, ...] = tuple(fields)
        self.offsets: Dict[str, int] = {}
        offset = 0
        for field in self.fields:
            self.offsets[field.name] = offset
            offset += -(-field.nbytes // 8) * 8  # round up to 8-byte alignment
        self.nbytes = offset

    def views(self, buffer, base: int) -> Dict[str, np.ndarray]:
        """Map one frame at byte offset ``base`` of ``buffer`` as numpy views."""
        out: Dict[str, np.ndarray] = {}
        for field in self.fields:
            start = base + self.offsets[field.name]
            view = np.ndarray(field.shape, dtype=field.dtype, buffer=buffer, offset=start)
            out[field.name] = view
        return out


class ShmRing:
    """SPSC ring of fixed-layout frames in one shared-memory segment.

    One side calls :meth:`push` (producer), the other :meth:`pop`
    (consumer); each ring is used in exactly one direction.  ``ctx`` is the
    :mod:`multiprocessing` context whose semaphores are inheritable by the
    worker processes (fork or spawn).
    """

    def __init__(self, layout: FrameLayout, capacity: int, ctx, name: str | None = None):
        if capacity <= 0:
            raise ValueError(f"ring capacity must be positive, got {capacity}")
        self.layout = layout
        self.capacity = int(capacity)
        self._free = ctx.Semaphore(self.capacity)
        self._full = ctx.Semaphore(0)
        self._shm: Optional[shared_memory.SharedMemory] = shared_memory.SharedMemory(
            create=True, size=self.layout.nbytes * self.capacity, name=name
        )
        self.name = self._shm.name
        self._owner = True
        self._closed = False
        self._write_idx = 0
        self._read_idx = 0

    # -- pickling: geometry + names travel, the mapping does not ---------------
    def __getstate__(self):
        state = self.__dict__.copy()
        state["_shm"] = None
        state["_owner"] = False
        # A child starts with fresh local indices only if it is the sole user
        # of its role; the pool protocol guarantees that (parent produces
        # commands / consumes results, worker the reverse), and indices are
        # synchronized because the child is forked/spawned before any frame
        # is pushed.
        return state

    def _segment(self) -> shared_memory.SharedMemory:
        if self._closed:
            raise RingClosed(f"ring {self.name} is closed")
        if self._shm is None:
            try:
                self._shm = shared_memory.SharedMemory(name=self.name)
            except FileNotFoundError as exc:  # pragma: no cover - peer died early
                raise RingClosed(f"ring segment {self.name} has been unlinked") from exc
            # The tracker would otherwise unlink the segment when *this*
            # (child) process exits; only the creating parent owns cleanup.
            try:
                resource_tracker.unregister(self._shm._name, "shared_memory")
            except Exception:  # pragma: no cover - tracker is an implementation detail
                pass
        return self._shm

    def _frame(self, index: int) -> Dict[str, np.ndarray]:
        shm = self._segment()
        return self.layout.views(shm.buf, (index % self.capacity) * self.layout.nbytes)

    @staticmethod
    def _acquire(semaphore, timeout: Optional[float], liveness=None) -> bool:
        """Acquire ``semaphore``, polling ``liveness`` while blocked.

        Uses short bounded waits so a dead peer is noticed within ~100ms
        instead of hanging forever; returns False on timeout.  The immediate
        non-blocking attempt makes ``timeout=0`` a true poll: a ready frame
        is taken even when no wait budget remains.
        """
        if semaphore.acquire(block=False):
            return True
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            slice_timeout = 0.1
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                slice_timeout = min(slice_timeout, remaining)
            if semaphore.acquire(timeout=slice_timeout):
                return True
            if liveness is not None:
                liveness()

    # -- producer side ---------------------------------------------------------
    def push(self, values: Dict[str, np.ndarray], timeout: Optional[float] = None,
             liveness=None) -> None:
        """Copy ``values`` into the next free slot and publish it.

        ``values`` maps field names to arrays (or scalars); missing fields
        keep whatever bytes the slot last held, so producers should write
        every field they expect the consumer to read.
        """
        if not self._acquire(self._free, timeout, liveness):
            raise RingTimeout(f"no free slot in ring {self.name} after {timeout}s")
        frame = self._frame(self._write_idx)
        for key, value in values.items():
            try:
                frame[key][...] = value
            except KeyError:
                # A producer built against a different layout generation --
                # name the mismatch instead of surfacing a bare KeyError.
                raise KeyError(
                    f"unknown frame field {key!r}; ring {self.name} layout has "
                    f"{[field.name for field in self.layout.fields]}"
                ) from None
        self._write_idx += 1
        self._full.release()

    # -- consumer side ---------------------------------------------------------
    def pop(self, timeout: Optional[float] = None, liveness=None) -> Dict[str, np.ndarray]:
        """Wait for the next frame and return a private copy of its fields."""
        if not self._acquire(self._full, timeout, liveness):
            raise RingTimeout(f"no frame in ring {self.name} after {timeout}s")
        frame = self._frame(self._read_idx)
        out = {key: view.copy() for key, view in frame.items()}
        self._read_idx += 1
        self._free.release()
        return out

    # -- lifecycle -------------------------------------------------------------
    def detach(self) -> None:
        """Drop this process's mapping without unlinking the segment.

        Workers call this on exit: under ``fork`` they inherit the parent's
        ring object (``_owner`` included), and only the creating parent may
        unlink the segment the surviving side still maps.
        """
        if self._closed:
            return
        self._closed = True
        if self._shm is not None:
            self._shm.close()
            self._shm = None

    def close(self) -> None:
        """Detach this process's mapping; the owner also unlinks the segment."""
        if self._closed:
            return
        self._closed = True
        if self._shm is not None:
            self._shm.close()
            if self._owner:
                try:
                    self._shm.unlink()
                except FileNotFoundError:  # pragma: no cover - already unlinked
                    pass
            self._shm = None

    def __repr__(self) -> str:
        return (
            f"ShmRing(name={self.name!r}, capacity={self.capacity}, "
            f"frame_bytes={self.layout.nbytes})"
        )
