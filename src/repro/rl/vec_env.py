"""Vectorized multi-environment rollout engine.

:class:`VecBackfillEnv` steps N independent scheduling environments (each one
wrapping its own :class:`~repro.scheduler.simulator.Simulator` generator) in
lockstep.  At every iteration the current observations of all still-active
lanes are stacked into one ``(lanes, observation_size)`` matrix, the policy
and value networks run **once** for the whole batch
(:meth:`~repro.rl.ppo.ActorCritic.step_batch`), and each lane's environment
is advanced with its sampled action.  Trajectories stream into per-lane
:class:`~repro.rl.buffer.TrajectoryBuffer` instances and are merged into the
epoch buffer as episodes complete.

Determinism contract (enforced by ``tests/test_vec_env.py`` and the
cross-config matrix in ``tests/test_parity_matrix.py``):

* **Serial parity** -- with one lane, the engine performs exactly the same
  environment interactions, rng draws, and buffer writes as the serial
  ``Trainer.run_trajectory`` path, bit for bit.  The serial path is literally
  the ``num_envs=1`` case.
* **Lane independence** -- each lane owns its environment and its action rng,
  so the trajectory produced for a given (sequence, rng) pair does not depend
  on which lane index it occupies or on what the other lanes are doing.
  Independence is exact down to the floats: the policy/value forward pass
  runs through the batch-invariant matmul kernel
  (:func:`repro.rl.autograd.invariant_matmul`) and every other op in the
  observation-encode/forward/sample path is elementwise or per-row, so a
  lane's stored values and log-probs are bit-identical whether it is
  forwarded alone or batched with any number of other lanes.

The design follows Decima-style vectorized trainers (``VecDagSchedEnv``):
batching across environments amortizes the per-forward-pass overhead, which
dominates rollout collection for the paper's tiny kernel networks.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs import get_tracer
from repro.obs.metrics import MetricsRegistry
from repro.rl.buffer import TrajectoryBuffer
from repro.rl.env import Environment, StepResult
from repro.rl.ppo import ActorCritic
from repro.utils.rng import SeedLike, as_rng, spawn_rngs

__all__ = ["VecBackfillEnv", "clone_lane_envs", "validate_rollout_args"]


def clone_lane_envs(
    env: Environment, num_envs: int, seed: SeedLike = None
) -> List[Environment]:
    """Build ``num_envs`` lane environments from one template.

    Lane 0 is the template itself; lanes 1..N-1 are independent clones seeded
    from ``seed`` via ``env.clone(seed)``.  The ``num_envs == 1`` case draws
    nothing from ``seed``, so a one-lane engine consumes exactly the same rng
    stream as the serial path.  Shared by :meth:`VecBackfillEnv.from_template`
    and the multiprocess :class:`~repro.rl.lane_pool.ProcessLanePool`, which
    is what keeps both backends' lane seeding bit-identical.
    """
    if num_envs <= 0:
        raise ValueError(f"num_envs must be positive, got {num_envs}")
    if num_envs == 1:
        return [env]
    clone = getattr(env, "clone", None)
    if clone is None:
        raise TypeError(
            f"{type(env).__name__} has no clone(); pass explicit lanes instead"
        )
    lane_rngs = spawn_rngs(as_rng(seed), num_envs - 1)
    return [env] + [clone(seed=rng) for rng in lane_rngs]


def validate_rollout_args(
    num_envs: int,
    num_trajectories: int,
    rngs: Sequence[np.random.Generator] | None,
    episode_jobs: Optional[Sequence],
) -> Sequence[np.random.Generator]:
    """Validate the shared ``rollout`` contract; returns the effective rngs.

    Both rollout engines (:class:`VecBackfillEnv` and
    :class:`~repro.rl.lane_pool.ProcessLanePool`) promise the same surface,
    so the argument contract lives in one place.
    """
    if num_trajectories <= 0:
        raise ValueError(f"num_trajectories must be positive, got {num_trajectories}")
    if episode_jobs is not None and len(episode_jobs) != num_trajectories:
        raise ValueError(
            f"episode_jobs has {len(episode_jobs)} sequences for "
            f"{num_trajectories} trajectories"
        )
    if rngs is None:
        rngs = [as_rng(None) for _ in range(num_envs)]
    if len(rngs) != num_envs:
        raise ValueError(f"need one rng per lane ({num_envs}), got {len(rngs)}")
    return rngs


class VecBackfillEnv:
    """Steps N independent backfilling environments in lockstep."""

    def __init__(self, envs: Sequence[Environment], work_stealing: bool = False):
        """``work_stealing=True`` enables the always-restart crediting scheme
        of the process pool (see :meth:`rollout`); the default keeps the
        historical fixed-assignment behaviour, which is what the trainer's
        local backend uses."""
        if not envs:
            raise ValueError("VecBackfillEnv needs at least one environment lane")
        sizes = {(env.observation_size, env.num_actions) for env in envs}
        if len(sizes) != 1:
            raise ValueError(
                f"environment lanes disagree on observation/action sizes: {sorted(sizes)}"
            )
        if len({id(env) for env in envs}) != len(envs):
            raise ValueError("environment lanes must be distinct instances")
        self.envs: List[Environment] = list(envs)
        self.work_stealing = bool(work_stealing)
        # The engine's cumulative statistics live in a private always-enabled
        # registry (the global on/off switch gates *extra* instrumentation,
        # never the stats() surface existing tests and tools rely on);
        # stats() is a view over these counters.
        self.metrics = MetricsRegistry(enabled=True)
        self._counters: Dict[str, object] = {
            key: self.metrics.counter(f"engine_{key}_total", engine="local")
            for key in (
                "rollouts",
                "rounds",
                "decisions",
                "episodes",
                "steal_discarded",
                "forward_ns",
                "encode_ns",
                "step_ns",
                "rollout_ns",
            )
        }

    # -- construction --------------------------------------------------------
    @classmethod
    def from_template(
        cls,
        env: Environment,
        num_envs: int,
        seed: SeedLike = None,
        work_stealing: bool = False,
    ) -> "VecBackfillEnv":
        """Build ``num_envs`` lanes from one template environment.

        Lane 0 is the template itself (so the ``num_envs=1`` engine is the
        serial environment, unchanged); the other lanes are independent
        clones seeded from ``seed``.  The template must expose ``clone(seed)``
        (as :class:`~repro.core.environment.BackfillEnvironment` does).
        """
        return cls(clone_lane_envs(env, num_envs, seed=seed), work_stealing=work_stealing)

    # -- properties -----------------------------------------------------------
    @property
    def num_envs(self) -> int:
        return len(self.envs)

    @property
    def observation_size(self) -> int:
        return self.envs[0].observation_size

    @property
    def num_actions(self) -> int:
        return self.envs[0].num_actions

    # -- statistics ------------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        """Cumulative engine statistics, same keys as the process backend.

        Most pool-only counters (pre-sampling, worker idle) are structurally
        zero here: the in-process engine has no workers to idle.  In
        work-stealing mode, surplus episodes completed in the final round are
        *discarded* rather than banked for a future call (there is no
        persistent worker to hold them), so they are reported under
        ``steal_banked`` -- the pool's count of the same surplus -- while
        ``steal_credited`` stays zero (no bank ever pays out locally).
        """
        c = self._counters
        return {
            "engine": "local",
            "pipeline_depth": 1,
            "num_workers": 0,
            "rollouts": c["rollouts"].value,
            "rounds": c["rounds"].value,
            "decisions": c["decisions"].value,
            "episodes": c["episodes"].value,
            "steal_banked": c["steal_discarded"].value,
            "steal_credited": 0,
            "presampled_resets": 0,
            "respawns": 0,
            "replayed_commands": 0,
            "worker_idle_fraction": 0.0,
            "forward_s": c["forward_ns"].value / 1e9,
            "encode_s": c["encode_ns"].value / 1e9,
            "step_s": c["step_ns"].value / 1e9,
            "result_wait_s": 0.0,
            "worker_wait_s": 0.0,
            "rollout_s": c["rollout_ns"].value / 1e9,
        }

    # -- lane access ----------------------------------------------------------
    def reset_lane(self, lane: int, **kwargs) -> Tuple[np.ndarray, np.ndarray]:
        """Reset one lane; returns its ``(observation, mask)``."""
        return self.envs[lane].reset(**kwargs)

    def step_lane(self, lane: int, action: int) -> StepResult:
        """Advance one lane with ``action``."""
        return self.envs[lane].step(action)

    # -- lockstep rollout ------------------------------------------------------
    def rollout(
        self,
        actor_critic: ActorCritic,
        num_trajectories: int,
        buffer: TrajectoryBuffer,
        rngs: Sequence[np.random.Generator] | None = None,
        deterministic: bool = False,
        episode_jobs: Optional[Sequence] = None,
    ) -> List[Dict]:
        """Collect ``num_trajectories`` episodes across all lanes.

        Each iteration batches the observations of every active lane into one
        matrix, runs a single forward pass through ``actor_critic``, and steps
        each lane with its sampled action.  A lane that finishes an episode
        immediately starts the next one while other lanes keep running, so no
        lane ever idles waiting for a barrier.

        Parameters
        ----------
        actor_critic:
            Policy/value model driven through :meth:`ActorCritic.step_batch`.
        num_trajectories:
            Total episodes to collect across all lanes.
        buffer:
            Epoch buffer receiving every completed trajectory (via
            :meth:`TrajectoryBuffer.absorb`, in completion order).
        rngs:
            One action-sampling generator per lane.  Defaults to fresh
            generators (only acceptable for throwaway rollouts).
        deterministic:
            Argmax actions instead of sampling (evaluation mode).
        episode_jobs:
            Optional list of ``num_trajectories`` fixed job sequences; episode
            ``k`` is started with ``reset(jobs=episode_jobs[k])`` instead of
            sampling from the lane's trace.  Episodes are handed to lanes in
            order as lanes become free.

        Returns one info dict per completed episode (the environment's
        terminal info plus ``episode_reward``/``episode_steps``), in
        completion order.

        **Work-stealing mode** (``work_stealing=True`` at construction,
        effective only for sampled non-deterministic rollouts, exactly like
        the process pool): every lane always restarts after finishing an
        episode instead of parking once the remaining quota is below the lane
        count, and completed episodes are credited in completion order --
        within a lockstep round, ascending lane order, which is the pool's
        canonical ``(lane decision clock, lane)`` release order -- until
        ``num_trajectories`` are credited.  Surplus episodes finished in the
        final round are discarded (the pool banks them for its next call; a
        local engine has no next-call state, see :meth:`stats`).  For one
        fresh rollout call the credited episode stream is therefore
        bit-identical to a fresh stealing pool's at any worker count or
        pipeline depth, which is what makes this the single-process parity
        reference for the stealing matrix in ``tests/test_parity_matrix.py``.
        """
        rngs = validate_rollout_args(self.num_envs, num_trajectories, rngs, episode_jobs)
        stealing = self.work_stealing and episode_jobs is None and not deterministic

        lane_buffers = [
            TrajectoryBuffer(gamma=buffer.gamma, lam=buffer.lam) for _ in self.envs
        ]
        observations: List[Optional[np.ndarray]] = [None] * self.num_envs
        masks: List[Optional[np.ndarray]] = [None] * self.num_envs
        episode_rewards = [0.0] * self.num_envs
        episode_steps = [0] * self.num_envs
        infos: List[Dict] = []
        # Environments that support deferred encoding let us batch the
        # observation feature pass across lanes as well as the forward pass.
        deferred = all(hasattr(env, "pending_encode") for env in self.envs)
        builder = getattr(self.envs[0], "builder", None) if deferred else None

        def start_episode(lane: int, episode_index: int) -> None:
            """Begin the next episode on ``lane``.

            In the deferred regime the first observation is *not* encoded
            here: the lane joins ``encode_lanes`` and its features are
            computed in the same batched :meth:`encode_batch` pass as the
            stepped lanes' -- restarts never fall back to a batch-of-one
            encode and never break the encoded-matrix reuse.
            """
            env = self.envs[lane]
            kwargs = {} if episode_jobs is None else {"jobs": episode_jobs[episode_index]}
            if deferred:
                obs, mask = env.reset(encode=False, **kwargs)
            else:
                obs, mask = env.reset(**kwargs)
            observations[lane] = obs
            masks[lane] = mask
            episode_rewards[lane] = 0.0
            episode_steps[lane] = 0

        # Stealing keeps every lane running regardless of the remaining
        # quota; the fixed-assignment mode never starts more episodes than
        # it will credit.
        started = self.num_envs if stealing else min(self.num_envs, num_trajectories)
        active = list(range(started))
        encode_lanes: List[int] = []
        counters = self._counters
        counters["rollouts"].inc()
        tracer = get_tracer()
        t_rollout = time.perf_counter_ns()
        try:
            return self._rollout_loop(
                actor_critic, num_trajectories, buffer, rngs, deterministic,
                episode_jobs, lane_buffers, observations, masks,
                episode_rewards, episode_steps, infos, deferred, builder,
                start_episode, started, active, encode_lanes, stealing,
            )
        finally:
            # Wall time must stay consistent with the per-phase counters
            # even when a recoverable error aborts the rollout mid-loop.
            rollout_ns = time.perf_counter_ns() - t_rollout
            counters["rollout_ns"].inc(rollout_ns)
            tracer.complete(
                "engine.rollout", t_rollout, rollout_ns, cat="engine",
                args={"engine": "local", "lanes": self.num_envs},
            )

    def _rollout_loop(
        self,
        actor_critic,
        num_trajectories,
        buffer,
        rngs,
        deterministic,
        episode_jobs,
        lane_buffers,
        observations,
        masks,
        episode_rewards,
        episode_steps,
        infos,
        deferred,
        builder,
        start_episode,
        started,
        active,
        encode_lanes,
        stealing=False,
    ) -> List[Dict]:
        """The round loop of :meth:`rollout`, extracted so the caller can
        account wall time in a ``finally`` (consistent counters even when a
        recoverable error aborts the rollout mid-loop)."""
        counters = self._counters
        tracer = get_tracer()
        for lane in active:
            start_episode(lane, lane)
            if deferred:
                encode_lanes.append(lane)

        while active:
            counters["rounds"].inc()
            if encode_lanes:
                # One feature-encoding pass for every lane that advanced or
                # (re)started an episode since the previous forward pass.  In
                # the deferred regime this covers every active lane, so the
                # encoded matrix *is* the forward-pass input, row for row.
                t0 = time.perf_counter_ns()
                encoded = builder.encode_batch(
                    [self.envs[lane].pending_encode() for lane in encode_lanes]
                )
                for row, lane in enumerate(encode_lanes):
                    observations[lane] = encoded[row]
                dt = time.perf_counter_ns() - t0
                counters["encode_ns"].inc(dt)
                tracer.complete("engine.encode", t0, dt, cat="engine")
            if encode_lanes == active and encode_lanes:
                obs_batch = encoded
            else:
                obs_batch = np.stack([observations[lane] for lane in active])
            mask_batch = np.stack([masks[lane] for lane in active])
            t0 = time.perf_counter_ns()
            actions, values, log_probs = actor_critic.step_batch(
                obs_batch,
                mask_batch,
                rngs=None if deterministic else [rngs[lane] for lane in active],
                deterministic=deterministic,
            )
            dt = time.perf_counter_ns() - t0
            counters["forward_ns"].inc(dt)
            tracer.complete("engine.forward", t0, dt, cat="engine")
            action_list = actions.tolist()
            value_list = values.tolist()
            log_prob_list = log_probs.tolist()
            still_active: List[int] = []
            encode_lanes = []
            t_step = time.perf_counter_ns()
            for row, lane in enumerate(active):
                action = action_list[row]
                env = self.envs[lane]
                result = env.step(action, encode=False) if deferred else env.step(action)
                lane_buffers[lane].store(
                    observations[lane],
                    masks[lane],
                    action,
                    result.reward,
                    value_list[row],
                    log_prob_list[row],
                )
                episode_rewards[lane] += result.reward
                episode_steps[lane] += 1
                counters["decisions"].inc()
                if result.done:
                    lane_buffers[lane].finish_path(last_value=0.0)
                    counters["episodes"].inc()
                    info = dict(result.info)
                    info.update(
                        {
                            "episode_reward": episode_rewards[lane],
                            "episode_steps": episode_steps[lane],
                            "lane": lane,
                        }
                    )
                    if stealing:
                        # Credit in completion order up to the quota; surplus
                        # from the final round is discarded (the pool would
                        # bank it for its next call).  Lanes always restart.
                        if len(infos) < num_trajectories:
                            infos.append(info)
                            buffer.absorb(lane_buffers[lane])
                        else:
                            counters["steal_discarded"].inc()
                            lane_buffers[lane].clear()
                        start_episode(lane, started)
                        still_active.append(lane)
                        if deferred:
                            encode_lanes.append(lane)
                    else:
                        infos.append(info)
                        buffer.absorb(lane_buffers[lane])
                        if started < num_trajectories:
                            start_episode(lane, started)
                            started += 1
                            still_active.append(lane)
                            if deferred:
                                encode_lanes.append(lane)
                        else:
                            # The lane has exhausted the episode quota: drop
                            # its observation and mask so it contributes no
                            # further rows to the encode or forward batches.
                            observations[lane] = None
                            masks[lane] = None
                else:
                    masks[lane] = result.mask
                    if deferred:
                        encode_lanes.append(lane)
                    else:
                        observations[lane] = result.observation
                    still_active.append(lane)
            dt = time.perf_counter_ns() - t_step
            counters["step_ns"].inc(dt)
            tracer.complete("engine.step", t_step, dt, cat="engine")
            active = still_active
            if stealing and len(infos) >= num_trajectories:
                # Stealing lanes never park themselves, so the quota check
                # terminates the round loop (matching the pool, which stops
                # issuing step commands once its credit count fills).
                break
        return infos

    def __repr__(self) -> str:
        return f"VecBackfillEnv(num_envs={self.num_envs}, envs={type(self.envs[0]).__name__})"
