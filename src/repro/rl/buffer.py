"""Trajectory storage with Generalized Advantage Estimation (GAE-lambda).

The trainer fills one buffer per epoch with many trajectories (the paper uses
100 trajectories of 256 scheduled jobs per epoch).  ``finish_path`` closes a
trajectory, computing discounted returns and GAE advantages; ``get`` returns
the stacked arrays with advantages normalized across the whole epoch, the
variance-reduction trick the paper's §3.3.2 describes (learning from the
improvement over the value baseline rather than the raw return).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

__all__ = ["TrajectoryBuffer"]


def discount_cumsum(values: np.ndarray, discount: float) -> np.ndarray:
    """Reverse discounted cumulative sum: out[t] = sum_k discount^k * values[t+k]."""
    out = np.zeros_like(values, dtype=np.float64)
    running = 0.0
    for i in range(len(values) - 1, -1, -1):
        running = values[i] + discount * running
        out[i] = running
    return out


@dataclass
class TrajectoryBuffer:
    """Stores (observation, mask, action, reward, value, log-prob) tuples."""

    gamma: float = 1.0
    lam: float = 1.0
    observations: List[np.ndarray] = field(default_factory=list)
    masks: List[np.ndarray] = field(default_factory=list)
    actions: List[int] = field(default_factory=list)
    rewards: List[float] = field(default_factory=list)
    values: List[float] = field(default_factory=list)
    log_probs: List[float] = field(default_factory=list)
    advantages: List[float] = field(default_factory=list)
    returns: List[float] = field(default_factory=list)
    _path_start: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.gamma <= 1.0:
            raise ValueError(f"gamma must lie in [0, 1], got {self.gamma}")
        if not 0.0 <= self.lam <= 1.0:
            raise ValueError(f"lam must lie in [0, 1], got {self.lam}")

    def __len__(self) -> int:
        return len(self.rewards)

    @property
    def num_complete(self) -> int:
        """Number of steps already folded into finished trajectories."""
        return len(self.advantages)

    def store(
        self,
        observation: np.ndarray,
        mask: np.ndarray,
        action: int,
        reward: float,
        value: float,
        log_prob: float,
    ) -> None:
        """Append one interaction step of the current trajectory."""
        self.observations.append(np.asarray(observation, dtype=np.float64))
        self.masks.append(np.asarray(mask, dtype=np.float64))
        self.actions.append(int(action))
        self.rewards.append(float(reward))
        self.values.append(float(value))
        self.log_probs.append(float(log_prob))

    def finish_path(self, last_value: float = 0.0) -> None:
        """Close the current trajectory, bootstrapping with ``last_value``.

        For terminated trajectories ``last_value`` is 0; for truncated ones it
        is the critic's estimate of the final state.
        """
        path = slice(self._path_start, len(self.rewards))
        if path.start == path.stop:
            return
        rewards = np.asarray(self.rewards[path] + [last_value], dtype=np.float64)
        values = np.asarray(self.values[path] + [last_value], dtype=np.float64)
        # GAE-lambda advantages and rewards-to-go returns.
        deltas = rewards[:-1] + self.gamma * values[1:] - values[:-1]
        advantages = discount_cumsum(deltas, self.gamma * self.lam)
        returns = discount_cumsum(rewards, self.gamma)[:-1]
        self.advantages.extend(advantages.tolist())
        self.returns.extend(returns.tolist())
        self._path_start = len(self.rewards)

    def absorb(self, other: "TrajectoryBuffer") -> None:
        """Append ``other``'s finished trajectories to this buffer and clear it.

        The vectorized rollout engine gives every environment lane its own
        small buffer (so GAE paths never interleave across lanes) and merges
        each episode into the epoch buffer as it completes.  Both buffers must
        have no open trajectory and identical (gamma, lam).
        """
        if other is self:
            raise ValueError("cannot absorb a buffer into itself")
        if (self.gamma, self.lam) != (other.gamma, other.lam):
            raise ValueError(
                f"buffer hyper-parameters differ: gamma/lam {(self.gamma, self.lam)} "
                f"vs {(other.gamma, other.lam)}"
            )
        if self.num_complete != len(self) or other.num_complete != len(other):
            raise RuntimeError("absorb() requires finish_path() on both buffers first")
        self.observations.extend(other.observations)
        self.masks.extend(other.masks)
        self.actions.extend(other.actions)
        self.rewards.extend(other.rewards)
        self.values.extend(other.values)
        self.log_probs.extend(other.log_probs)
        self.advantages.extend(other.advantages)
        self.returns.extend(other.returns)
        self._path_start = len(self.rewards)
        other.clear()

    def get(self) -> Dict[str, np.ndarray]:
        """Return stacked arrays for the whole epoch and clear the buffer."""
        if len(self.rewards) == 0:
            raise RuntimeError("cannot get() from an empty buffer")
        if self.num_complete != len(self.rewards):
            raise RuntimeError(
                "finish_path() must be called before get(): "
                f"{len(self.rewards) - self.num_complete} steps belong to an open trajectory"
            )
        advantages = np.asarray(self.advantages, dtype=np.float64)
        std = advantages.std()
        normalized = (advantages - advantages.mean()) / (std if std > 1e-8 else 1.0)
        data = {
            "observations": np.stack(self.observations, axis=0),
            "masks": np.stack(self.masks, axis=0),
            "actions": np.asarray(self.actions, dtype=np.int64),
            "returns": np.asarray(self.returns, dtype=np.float64),
            "advantages": normalized,
            "log_probs": np.asarray(self.log_probs, dtype=np.float64),
        }
        self.clear()
        return data

    def clear(self) -> None:
        self.observations.clear()
        self.masks.clear()
        self.actions.clear()
        self.rewards.clear()
        self.values.clear()
        self.log_probs.clear()
        self.advantages.clear()
        self.returns.clear()
        self._path_start = 0
