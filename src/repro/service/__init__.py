"""Online decision serving: asyncio service, admission control, replay logs.

See ``docs/service.md`` for the protocol and the determinism contract.
"""

from repro.service.admission import (
    AdmissionController,
    AdmissionVerdict,
    RefillPhase,
    RefillSchedule,
    TokenBucket,
)
from repro.service.replay import (
    DURABILITY_POLICIES,
    ReplayCheck,
    ReplayLog,
    ReplayLogWriter,
    build_replay_simulator,
    job_from_wire,
    job_to_wire,
    read_replay_log,
    verify_replay_log,
)
from repro.service.server import (
    RecoveryError,
    SchedulingService,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    ServiceOverloadedError,
    ServiceTimeoutError,
)

__all__ = [
    "AdmissionController",
    "AdmissionVerdict",
    "RefillPhase",
    "RefillSchedule",
    "TokenBucket",
    "DURABILITY_POLICIES",
    "ReplayCheck",
    "ReplayLog",
    "ReplayLogWriter",
    "build_replay_simulator",
    "job_from_wire",
    "job_to_wire",
    "read_replay_log",
    "verify_replay_log",
    "RecoveryError",
    "SchedulingService",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceOverloadedError",
    "ServiceTimeoutError",
]
