"""The service's replay log: every served decision, reproducible offline.

The online service appends one JSON record per line (JSONL) as it runs:

* ``header`` -- the simulator configuration a replay needs (processor count,
  base policy, BSLD threshold, the policy's forward row block, time scale);
* ``submit`` -- one admitted job with its **assigned event time** baked into
  ``job.submit_time`` (rejected submissions never reach the simulator and are
  logged as ``reject`` records for audit only);
* ``decision`` -- one :class:`~repro.scheduler.simulator.ServedDecision` in
  serving order;
* ``drain`` -- the final summary once the session ran to completion.

**The determinism contract.**  Decisions are a pure function of the admitted
submission stream: event times in the simulator come either from the log
(arrivals) or from job runtimes (completions), never from wall clock, and the
policy forward is bit-invariant (batch-invariant kernel, ``row_block`` pinned
per deployment site).  So replaying the logged jobs through a freshly built
:class:`~repro.scheduler.simulator.Simulator` with the same agent weights
must reproduce the logged decision stream *exactly* -- same count, same
order, bit-identical decision times.  :func:`verify_replay_log` performs that
check; ``tests/test_service.py`` and the CI service smoke job enforce it.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, IO, List, Mapping, Optional, Sequence, Tuple

from repro.core.agent import RLBackfillAgent
from repro.core.rlbackfill import RLBackfillPolicy
from repro.prediction.predictors import UserEstimate
from repro.scheduler.simulator import (
    ServedDecision,
    SimulationResult,
    Simulator,
    capture_decisions,
)
from repro.workloads.job import Job

__all__ = [
    "JOB_WIRE_FIELDS",
    "DURABILITY_POLICIES",
    "job_to_wire",
    "job_from_wire",
    "ReplayLogWriter",
    "ReplayLog",
    "read_replay_log",
    "build_replay_simulator",
    "ReplayCheck",
    "verify_replay_log",
]

#: Every :class:`Job` field crosses the wire; replay must reconstruct the
#: exact dataclass the session scheduled (equality is part of the contract).
JOB_WIRE_FIELDS = (
    "job_id",
    "submit_time",
    "runtime",
    "requested_processors",
    "requested_time",
    "user_id",
    "group_id",
    "executable",
    "queue",
    "partition",
    "status",
    "used_memory",
    "requested_memory",
    "requested_gpus",
)


def job_to_wire(job: Job) -> Dict[str, object]:
    return {name: getattr(job, name) for name in JOB_WIRE_FIELDS}


def job_from_wire(payload: Mapping[str, object]) -> Job:
    return Job(**{name: payload[name] for name in JOB_WIRE_FIELDS if name in payload})


#: Writer durability policies, weakest to strongest.  A crash can tear at
#: most the final record under ``flush``/``fsync``; ``none`` can lose every
#: record still sitting in the userspace buffer.
DURABILITY_POLICIES = ("none", "flush", "fsync")


class ReplayLogWriter:
    """Appends replay records as JSONL to a file (or buffers them in memory).

    ``path=None`` keeps records in :attr:`records` only -- the in-process
    test mode.  ``durability`` decides what happens after every record:

    * ``"none"`` -- buffered writes; a crash loses the buffered suffix;
    * ``"flush"`` (default) -- flush to the OS after each record, so a
      process crash tears at most the final line;
    * ``"fsync"`` -- additionally ``os.fsync`` after each record, so even a
      host crash tears at most the final line.

    ``resume=True`` reopens an existing log for append instead of truncating
    it: any torn final line (a crash mid-write) is cut back to the last
    complete record, the surviving records are preloaded into
    :attr:`records`, and new writes continue the same file.  This is the
    crash-recovery mode used by ``SchedulingService.recover``.
    """

    def __init__(
        self,
        path: str | Path | None = None,
        durability: str = "flush",
        resume: bool = False,
    ):
        if durability not in DURABILITY_POLICIES:
            raise ValueError(
                f"unknown durability {durability!r}; choose from {DURABILITY_POLICIES}"
            )
        self.path: Optional[Path] = None if path is None else Path(path)
        self.durability = durability
        self.records: List[Dict[str, object]] = []
        self._handle: Optional[IO[str]] = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            if resume and self.path.exists():
                self._truncate_torn_tail()
            self._handle = self.path.open("a" if resume else "w", encoding="utf-8")

    def _truncate_torn_tail(self) -> None:
        """Cut a crashed log back to its last complete record and preload it."""
        assert self.path is not None
        text = self.path.read_text(encoding="utf-8")
        records, torn_at = _parse_jsonl(text, allow_torn_tail=True, label=str(self.path))
        self.records.extend(records)
        if torn_at is not None:
            with self.path.open("r+", encoding="utf-8") as handle:
                handle.truncate(len(text[:torn_at].encode("utf-8")))
                handle.flush()
                os.fsync(handle.fileno())

    def write(self, record: Mapping[str, object]) -> None:
        record = dict(record)
        self.records.append(record)
        if self._handle is not None:
            self._handle.write(json.dumps(record, sort_keys=True) + "\n")
            if self.durability != "none":
                self._handle.flush()
                if self.durability == "fsync":
                    os.fsync(self._handle.fileno())

    def header(
        self,
        num_processors: int,
        policy: str,
        time_scale: float,
        row_block: Optional[int],
        bsld_threshold: float,
        node_groups=None,
    ) -> None:
        record = {
            "type": "header",
            "num_processors": num_processors,
            "policy": policy,
            "time_scale": time_scale,
            "row_block": row_block,
            "bsld_threshold": bsld_threshold,
        }
        if node_groups is not None:
            # Heterogeneous cluster shape as (name, cpus, memory, gpus) rows;
            # replay must rebuild the same topology to reproduce decisions.
            record["node_groups"] = [list(group) for group in node_groups]
        self.write(record)

    def submit(self, tenant: str, job: Job) -> None:
        self.write({"type": "submit", "tenant": tenant, "job": job_to_wire(job)})

    def reject(self, tenant: str, wall_time: float, retry_after: float) -> None:
        retry = retry_after if math.isfinite(retry_after) else None
        self.write(
            {"type": "reject", "tenant": tenant, "wall_time": wall_time, "retry_after": retry}
        )

    def decision(self, decision: ServedDecision) -> None:
        self.write({"type": "decision", **asdict(decision)})

    def drain(self, summary: Mapping[str, object]) -> None:
        self.write({"type": "drain", **dict(summary)})

    def flush(self) -> None:
        if self._handle is not None:
            self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            self._handle.close()
            self._handle = None


@dataclass(frozen=True, slots=True)
class ReplayLog:
    """A parsed replay log."""

    header: Dict[str, object]
    jobs: tuple[Job, ...]
    tenants: tuple[str, ...]
    decisions: tuple[ServedDecision, ...]
    rejects: int
    summary: Optional[Dict[str, object]]
    #: ``True`` when the source ended in a torn (unparsable) final line that
    #: was dropped -- the signature of a crash mid-write.
    torn_tail: bool = False


def _parse_jsonl(
    text: str, allow_torn_tail: bool, label: str
) -> Tuple[List[Dict[str, object]], Optional[int]]:
    """Parse JSONL text, returning ``(records, torn_offset)``.

    A parse failure on the **final** non-empty line is a torn tail (the
    write was interrupted mid-record): with ``allow_torn_tail`` the line is
    dropped and its character offset returned, otherwise it raises.  A parse
    failure on any earlier line is corruption, never tolerated -- a
    single-writer append-only log cannot tear in the middle.
    """
    records: List[Dict[str, object]] = []
    pending_error: Optional[Tuple[int, int, str]] = None  # (offset, lineno, detail)
    offset = 0
    for lineno, line in enumerate(text.splitlines(keepends=True), start=1):
        start = offset
        offset += len(line)
        if not line.strip():
            continue
        if pending_error is not None:
            raise ValueError(
                f"{label}: corrupt record on line {pending_error[1]} "
                f"(not the final line): {pending_error[2]}"
            )
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as error:
            pending_error = (start, lineno, str(error))
    if pending_error is None:
        return records, None
    if not allow_torn_tail:
        raise ValueError(
            f"{label}: torn final record on line {pending_error[1]} "
            f"(crash mid-write?): {pending_error[2]}; "
            "pass allow_torn_tail=True to drop it"
        )
    return records, pending_error[0]


def read_replay_log(
    source: str | Path | Sequence[Mapping[str, object]],
    allow_torn_tail: bool = False,
) -> ReplayLog:
    """Parse a replay log from a JSONL path or an in-memory record list.

    ``allow_torn_tail`` tolerates an unparsable **final** line -- the torn
    record a crash mid-write leaves behind -- by dropping it and setting
    :attr:`ReplayLog.torn_tail`.  Corruption anywhere else always raises.
    """
    torn = False
    if isinstance(source, (str, Path)):
        text = Path(source).read_text(encoding="utf-8")
        records, torn_at = _parse_jsonl(text, allow_torn_tail, label=str(source))
        torn = torn_at is not None
    else:
        records = [dict(record) for record in source]
    header: Optional[Dict[str, object]] = None
    jobs: List[Job] = []
    tenants: List[str] = []
    decisions: List[ServedDecision] = []
    rejects = 0
    summary: Optional[Dict[str, object]] = None
    for record in records:
        kind = record.get("type")
        if kind == "header":
            header = {key: value for key, value in record.items() if key != "type"}
        elif kind == "submit":
            jobs.append(job_from_wire(record["job"]))
            tenants.append(str(record.get("tenant", "")))
        elif kind == "decision":
            decisions.append(
                ServedDecision(
                    index=int(record["index"]),
                    time=float(record["time"]),
                    reserved_job_id=int(record["reserved_job_id"]),
                    chosen_job_id=(
                        None
                        if record.get("chosen_job_id") is None
                        else int(record["chosen_job_id"])
                    ),
                )
            )
        elif kind == "reject":
            rejects += 1
        elif kind == "drain":
            summary = {key: value for key, value in record.items() if key != "type"}
    if header is None:
        raise ValueError("replay log has no header record")
    return ReplayLog(
        header=header,
        jobs=tuple(jobs),
        tenants=tuple(tenants),
        decisions=tuple(decisions),
        rejects=rejects,
        summary=summary,
        torn_tail=torn,
    )


def build_replay_simulator(header: Mapping[str, object], agent: RLBackfillAgent) -> Simulator:
    """Rebuild the service's simulator configuration from a log header.

    The strategy wraps ``agent`` exactly as the service did
    (``deterministic=True`` and the header's ``row_block``), so the policy
    forward runs through the same kernel path bit for bit.
    """
    from repro.service.server import topology_from_node_groups

    row_block = header.get("row_block")
    strategy = RLBackfillPolicy(
        agent,
        deterministic=True,
        label="replay",
        row_block=None if row_block is None else int(row_block),
    )
    return Simulator(
        num_processors=int(header["num_processors"]),
        policy=str(header.get("policy", "FCFS")),
        backfill=strategy,
        estimator=UserEstimate(),
        bsld_threshold=float(header.get("bsld_threshold", 10.0)),
        topology=topology_from_node_groups(header.get("node_groups")),
    )


@dataclass(frozen=True, slots=True)
class ReplayCheck:
    """Outcome of one offline replay verification."""

    jobs: int
    decisions: int
    matched: bool
    mismatches: tuple[str, ...]
    result: Optional[SimulationResult]
    #: Whether the source log ended in a dropped torn final record.
    torn_tail: bool = False

    def raise_on_mismatch(self) -> "ReplayCheck":
        if not self.matched:
            detail = "; ".join(self.mismatches[:5])
            raise AssertionError(
                f"replay parity violated ({len(self.mismatches)} mismatch(es)): {detail}"
            )
        return self


def verify_replay_log(
    source: str | Path | Sequence[Mapping[str, object]] | ReplayLog,
    agent: RLBackfillAgent,
    allow_torn_tail: bool = False,
) -> ReplayCheck:
    """Replay a log offline and compare decision streams field by field.

    Equality is exact: decision count, order, reserved/chosen job ids, and
    the decision-time floats must all match the log bit for bit.

    With ``allow_torn_tail`` a crashed log (torn final line) verifies
    against its surviving prefix: the logged decisions then only need to be
    a **prefix** of the offline replay -- the crash may have lost decision
    records that were served but not yet durable, and a shorter-than-replay
    log is exactly what a torn tail predicts.  Without it, decision count
    must match exactly and a torn line raises at parse time.
    """
    log = source if isinstance(source, ReplayLog) else read_replay_log(
        source, allow_torn_tail=allow_torn_tail
    )
    prefix_ok = allow_torn_tail and log.summary is None
    if not log.jobs:
        return ReplayCheck(
            jobs=0,
            decisions=len(log.decisions),
            matched=not log.decisions,
            mismatches=("log has decisions but no jobs",) if log.decisions else (),
            result=None,
            torn_tail=log.torn_tail,
        )
    simulator = build_replay_simulator(log.header, agent)
    replayed, result = capture_decisions(simulator, log.jobs)
    mismatches: List[str] = []
    if len(replayed) != len(log.decisions):
        if not (prefix_ok and len(replayed) > len(log.decisions)):
            mismatches.append(
                f"decision count: log has {len(log.decisions)}, "
                f"replay produced {len(replayed)}"
            )
    for logged, fresh in zip(log.decisions, replayed):
        if logged != fresh:
            mismatches.append(f"decision {logged.index}: log {logged} != replay {fresh}")
            if len(mismatches) >= 8:
                break
    return ReplayCheck(
        jobs=len(log.jobs),
        decisions=len(log.decisions),
        matched=not mismatches,
        mismatches=tuple(mismatches),
        result=result,
        torn_tail=log.torn_tail,
    )
