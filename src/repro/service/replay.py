"""The service's replay log: every served decision, reproducible offline.

The online service appends one JSON record per line (JSONL) as it runs:

* ``header`` -- the simulator configuration a replay needs (processor count,
  base policy, BSLD threshold, the policy's forward row block, time scale);
* ``submit`` -- one admitted job with its **assigned event time** baked into
  ``job.submit_time`` (rejected submissions never reach the simulator and are
  logged as ``reject`` records for audit only);
* ``decision`` -- one :class:`~repro.scheduler.simulator.ServedDecision` in
  serving order;
* ``drain`` -- the final summary once the session ran to completion.

**The determinism contract.**  Decisions are a pure function of the admitted
submission stream: event times in the simulator come either from the log
(arrivals) or from job runtimes (completions), never from wall clock, and the
policy forward is bit-invariant (batch-invariant kernel, ``row_block`` pinned
per deployment site).  So replaying the logged jobs through a freshly built
:class:`~repro.scheduler.simulator.Simulator` with the same agent weights
must reproduce the logged decision stream *exactly* -- same count, same
order, bit-identical decision times.  :func:`verify_replay_log` performs that
check; ``tests/test_service.py`` and the CI service smoke job enforce it.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, IO, List, Mapping, Optional, Sequence

from repro.core.agent import RLBackfillAgent
from repro.core.rlbackfill import RLBackfillPolicy
from repro.prediction.predictors import UserEstimate
from repro.scheduler.simulator import (
    ServedDecision,
    SimulationResult,
    Simulator,
    capture_decisions,
)
from repro.workloads.job import Job

__all__ = [
    "JOB_WIRE_FIELDS",
    "job_to_wire",
    "job_from_wire",
    "ReplayLogWriter",
    "ReplayLog",
    "read_replay_log",
    "build_replay_simulator",
    "ReplayCheck",
    "verify_replay_log",
]

#: Every :class:`Job` field crosses the wire; replay must reconstruct the
#: exact dataclass the session scheduled (equality is part of the contract).
JOB_WIRE_FIELDS = (
    "job_id",
    "submit_time",
    "runtime",
    "requested_processors",
    "requested_time",
    "user_id",
    "group_id",
    "executable",
    "queue",
    "partition",
    "status",
)


def job_to_wire(job: Job) -> Dict[str, object]:
    return {name: getattr(job, name) for name in JOB_WIRE_FIELDS}


def job_from_wire(payload: Mapping[str, object]) -> Job:
    return Job(**{name: payload[name] for name in JOB_WIRE_FIELDS if name in payload})


class ReplayLogWriter:
    """Appends replay records as JSONL to a file (or buffers them in memory).

    ``path=None`` keeps records in :attr:`records` only -- the in-process
    test mode.  Records are written eagerly and flushed on :meth:`close` so a
    crashed service still leaves a replayable prefix.
    """

    def __init__(self, path: str | Path | None = None):
        self.path: Optional[Path] = None if path is None else Path(path)
        self.records: List[Dict[str, object]] = []
        self._handle: Optional[IO[str]] = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("w", encoding="utf-8")

    def write(self, record: Mapping[str, object]) -> None:
        record = dict(record)
        self.records.append(record)
        if self._handle is not None:
            self._handle.write(json.dumps(record, sort_keys=True) + "\n")

    def header(
        self,
        num_processors: int,
        policy: str,
        time_scale: float,
        row_block: Optional[int],
        bsld_threshold: float,
    ) -> None:
        self.write(
            {
                "type": "header",
                "num_processors": num_processors,
                "policy": policy,
                "time_scale": time_scale,
                "row_block": row_block,
                "bsld_threshold": bsld_threshold,
            }
        )

    def submit(self, tenant: str, job: Job) -> None:
        self.write({"type": "submit", "tenant": tenant, "job": job_to_wire(job)})

    def reject(self, tenant: str, wall_time: float, retry_after: float) -> None:
        retry = retry_after if math.isfinite(retry_after) else None
        self.write(
            {"type": "reject", "tenant": tenant, "wall_time": wall_time, "retry_after": retry}
        )

    def decision(self, decision: ServedDecision) -> None:
        self.write({"type": "decision", **asdict(decision)})

    def drain(self, summary: Mapping[str, object]) -> None:
        self.write({"type": "drain", **dict(summary)})

    def flush(self) -> None:
        if self._handle is not None:
            self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            self._handle.close()
            self._handle = None


@dataclass(frozen=True, slots=True)
class ReplayLog:
    """A parsed replay log."""

    header: Dict[str, object]
    jobs: tuple[Job, ...]
    tenants: tuple[str, ...]
    decisions: tuple[ServedDecision, ...]
    rejects: int
    summary: Optional[Dict[str, object]]


def read_replay_log(source: str | Path | Sequence[Mapping[str, object]]) -> ReplayLog:
    """Parse a replay log from a JSONL path or an in-memory record list."""
    if isinstance(source, (str, Path)):
        records = [
            json.loads(line)
            for line in Path(source).read_text(encoding="utf-8").splitlines()
            if line.strip()
        ]
    else:
        records = [dict(record) for record in source]
    header: Optional[Dict[str, object]] = None
    jobs: List[Job] = []
    tenants: List[str] = []
    decisions: List[ServedDecision] = []
    rejects = 0
    summary: Optional[Dict[str, object]] = None
    for record in records:
        kind = record.get("type")
        if kind == "header":
            header = {key: value for key, value in record.items() if key != "type"}
        elif kind == "submit":
            jobs.append(job_from_wire(record["job"]))
            tenants.append(str(record.get("tenant", "")))
        elif kind == "decision":
            decisions.append(
                ServedDecision(
                    index=int(record["index"]),
                    time=float(record["time"]),
                    reserved_job_id=int(record["reserved_job_id"]),
                    chosen_job_id=(
                        None
                        if record.get("chosen_job_id") is None
                        else int(record["chosen_job_id"])
                    ),
                )
            )
        elif kind == "reject":
            rejects += 1
        elif kind == "drain":
            summary = {key: value for key, value in record.items() if key != "type"}
    if header is None:
        raise ValueError("replay log has no header record")
    return ReplayLog(
        header=header,
        jobs=tuple(jobs),
        tenants=tuple(tenants),
        decisions=tuple(decisions),
        rejects=rejects,
        summary=summary,
    )


def build_replay_simulator(header: Mapping[str, object], agent: RLBackfillAgent) -> Simulator:
    """Rebuild the service's simulator configuration from a log header.

    The strategy wraps ``agent`` exactly as the service did
    (``deterministic=True`` and the header's ``row_block``), so the policy
    forward runs through the same kernel path bit for bit.
    """
    row_block = header.get("row_block")
    strategy = RLBackfillPolicy(
        agent,
        deterministic=True,
        label="replay",
        row_block=None if row_block is None else int(row_block),
    )
    return Simulator(
        num_processors=int(header["num_processors"]),
        policy=str(header.get("policy", "FCFS")),
        backfill=strategy,
        estimator=UserEstimate(),
        bsld_threshold=float(header.get("bsld_threshold", 10.0)),
    )


@dataclass(frozen=True, slots=True)
class ReplayCheck:
    """Outcome of one offline replay verification."""

    jobs: int
    decisions: int
    matched: bool
    mismatches: tuple[str, ...]
    result: Optional[SimulationResult]

    def raise_on_mismatch(self) -> "ReplayCheck":
        if not self.matched:
            detail = "; ".join(self.mismatches[:5])
            raise AssertionError(
                f"replay parity violated ({len(self.mismatches)} mismatch(es)): {detail}"
            )
        return self


def verify_replay_log(
    source: str | Path | Sequence[Mapping[str, object]] | ReplayLog,
    agent: RLBackfillAgent,
) -> ReplayCheck:
    """Replay a log offline and compare decision streams field by field.

    Equality is exact: decision count, order, reserved/chosen job ids, and
    the decision-time floats must all match the log bit for bit.
    """
    log = source if isinstance(source, ReplayLog) else read_replay_log(source)
    if not log.jobs:
        return ReplayCheck(
            jobs=0,
            decisions=len(log.decisions),
            matched=not log.decisions,
            mismatches=("log has decisions but no jobs",) if log.decisions else (),
            result=None,
        )
    simulator = build_replay_simulator(log.header, agent)
    replayed, result = capture_decisions(simulator, log.jobs)
    mismatches: List[str] = []
    if len(replayed) != len(log.decisions):
        mismatches.append(
            f"decision count: log has {len(log.decisions)}, replay produced {len(replayed)}"
        )
    for logged, fresh in zip(log.decisions, replayed):
        if logged != fresh:
            mismatches.append(f"decision {logged.index}: log {logged} != replay {fresh}")
            if len(mismatches) >= 8:
                break
    return ReplayCheck(
        jobs=len(log.jobs),
        decisions=len(log.decisions),
        matched=not mismatches,
        mismatches=tuple(mismatches),
        result=result,
    )
