"""The asyncio online scheduling service.

A long-lived process around one :class:`~repro.scheduler.simulator.OnlineSession`:
concurrent clients stream job submissions over TCP (newline-delimited JSON,
one request per line, one response per line), a per-tenant token-bucket
:class:`~repro.service.admission.AdmissionController` throttles them, and
admitted jobs are scheduled by the trained
:class:`~repro.core.rlbackfill.RLBackfillPolicy` running the ``row_block=1``
serial forward path -- the deployment site PR 5's kernel hint was tuned for.

**Event time is wall-clock-mapped**: ``event_seconds = wall_seconds_since_start
* time_scale``.  The mapping only decides *when* the service looks at the
event loop; every simulated instant (arrivals as assigned, completions from
job runtimes) is independent of wall-clock granularity, which is why the
replay log (:mod:`repro.service.replay`) reproduces every served decision
offline, bit for bit.  Submission event times are assigned monotonically with
a margin wider than the simulator's admission epsilon, so an arrival can
never land inside an already-processed instant.

**Concurrency model**: connection handlers only parse/frame; every
state-touching request goes through one bounded queue into a single scheduler
task (requests are totally ordered, so are assigned event times and served
decisions).  A full queue is backpressure -- the client gets an ``overloaded``
error immediately instead of unbounded buffering.  ``drain`` stops admission
and runs the simulation to completion; ``shutdown`` closes the server after
the in-flight queue empties.
"""

from __future__ import annotations

import asyncio
import json
import math
import random
import threading
import time
import uuid
from collections import OrderedDict
from dataclasses import dataclass, replace
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.cluster.resources import ClusterTopology, NodeGroup
from repro.core.agent import RLBackfillAgent
from repro.core.rlbackfill import RLBackfillPolicy
from repro.obs import get_metrics, metrics_enabled
from repro.obs.metrics import Counter, Histogram, MetricsRegistry
from repro.obs.trace import get_tracer, span
from repro.prediction.predictors import UserEstimate
from repro.scheduler.simulator import OnlineSession, ServedDecision, Simulator
from repro.service.admission import AdmissionController, RefillSchedule
from repro.service.replay import (
    ReplayLog,
    ReplayLogWriter,
    job_from_wire,
    job_to_wire,
    read_replay_log,
)
from repro.workloads.job import Job

__all__ = [
    "ServiceConfig",
    "SchedulingService",
    "ServiceClient",
    "ServiceError",
    "ServiceOverloadedError",
    "ServiceTimeoutError",
    "RecoveryError",
]


class ServiceError(RuntimeError):
    """Base class for typed client-side service errors.

    ``retryable`` tells callers whether backing off and resending the same
    request (with the same ``dedup_key``) can succeed.
    """

    retryable = False


class ServiceOverloadedError(ServiceError):
    """The scheduler queue was full; the request was refused, not executed."""

    retryable = True


class ServiceTimeoutError(ServiceError):
    """No response within the per-op timeout; request state is unknown."""

    retryable = True


class RecoveryError(RuntimeError):
    """Crash recovery could not reconcile the replay log with a fresh replay."""

#: Margin (event seconds) added between an assigned submission time and the
#: latest processed event.  Must exceed the simulator's admission epsilon
#: (1e-9): an arrival assigned within that epsilon of an already-processed
#: instant would be admitted retroactively by the offline replay, breaking
#: online/offline parity.
_TIME_MARGIN = 1e-6

#: Per-line frame limit: a batch submission of a few hundred jobs fits well
#: under this; anything larger is a framing error, not a workload.
_STREAM_LIMIT = 1 << 20

#: Distinct tenant strings that may mint their own ``tenant`` label value on
#: ``service_admission_total`` before further tenants collapse into
#: ``other`` -- tenant names come off the wire with unknown cardinality.
_MAX_TENANT_LABELS = 8


@dataclass(frozen=True)
class ServiceConfig:
    """Configuration of one :class:`SchedulingService`."""

    num_processors: int = 64
    policy: str = "FCFS"
    #: Event seconds that elapse per wall second.  High values make the
    #: simulated cluster churn fast enough to generate backfill decisions at
    #: load-test rates; 1.0 would serve a real-time cluster.
    time_scale: float = 1000.0
    host: str = "127.0.0.1"
    port: int = 0
    #: Scheduler-queue bound: requests beyond this are refused with an
    #: ``overloaded`` error (the service's backpressure signal).
    max_pending_requests: int = 1024
    #: Admission: per-tenant burst capacity and time-varying refill phases
    #: ``(start_wall_seconds, tokens_per_second)``.
    admission_capacity: float = 256.0
    admission_refill: Tuple[Tuple[float, float], ...] = ((0.0, 128.0),)
    #: JSONL replay log path (``None`` keeps records in memory only).
    replay_log_path: Optional[str] = None
    #: Replay-log write durability: ``"none"`` (buffered), ``"flush"``
    #: (crash-safe against process death, the default), or ``"fsync"``
    #: (crash-safe against host death).  See
    #: :class:`~repro.service.replay.ReplayLogWriter`.
    replay_durability: str = "flush"
    #: Bound on the idempotent-submit dedup cache (LRU-evicted).  Each
    #: ``dedup_key``-carrying submit caches its response so a client retry
    #: after a timeout cannot double-admit jobs.
    dedup_cache_size: int = 4096
    #: Row block pinned on the serving policy's forward site.
    row_block: Optional[int] = 1
    #: Wall seconds between background event-loop ticks (``None`` disables;
    #: decisions are then only served on submit/tick requests).
    tick_interval: Optional[float] = 0.05
    #: Second listener for plain-HTTP observability (``GET /metrics`` serving
    #: the same Prometheus text as the ``metrics`` wire op, ``GET /healthz``).
    #: ``None`` disables; ``0`` binds an ephemeral port (see
    #: :attr:`SchedulingService.metrics_address`).
    metrics_port: Optional[int] = None
    #: Heterogeneous cluster shape as ``(name, cpus, memory, gpus)`` tuples
    #: (summing to ``num_processors`` cpus); ``None`` serves the homogeneous
    #: cluster.  Recorded in the replay-log header so offline replay rebuilds
    #: the same topology, and surfaced as ``cluster_group_free`` gauges.
    node_groups: Optional[Tuple[Tuple[str, int, int, int], ...]] = None


def _normalize_node_groups(groups) -> Optional[Tuple[Tuple[str, int, int, int], ...]]:
    """Canonical ``(name, cpus, memory, gpus)`` tuples (JSON round-trips as
    lists, so normalize before comparing or constructing)."""
    if not groups:
        return None
    return tuple(
        (str(name), int(cpus), int(memory), int(gpus))
        for name, cpus, memory, gpus in groups
    )


def topology_from_node_groups(groups) -> Optional[ClusterTopology]:
    """Build the :class:`ClusterTopology` a ``node_groups`` spec describes."""
    normalized = _normalize_node_groups(groups)
    if normalized is None:
        return None
    return ClusterTopology(
        tuple(
            NodeGroup(name=name, cpus=cpus, memory=memory, gpus=gpus)
            for name, cpus, memory, gpus in normalized
        )
    )


@dataclass
class _Counters:
    requests: int = 0
    submitted: int = 0
    admitted: int = 0
    rejected: int = 0
    errored: int = 0
    decisions: int = 0
    overloaded: int = 0
    ticks: int = 0
    deduplicated: int = 0


class SchedulingService:
    """Serve backfill decisions for a live submission stream.

    ``clock`` is injectable (seconds, monotone) so tests can drive event time
    deterministically; the default is :func:`time.monotonic`.
    """

    def __init__(
        self,
        agent: RLBackfillAgent,
        config: ServiceConfig | None = None,
        clock: Callable[[], float] | None = None,
        *,
        _resume_log: Optional[ReplayLog] = None,
    ):
        self.config = config or ServiceConfig()
        self.strategy = RLBackfillPolicy(
            agent,
            deterministic=True,
            label="serve",
            row_block=self.config.row_block,
        )
        self.simulator = Simulator(
            num_processors=self.config.num_processors,
            policy=self.config.policy,
            backfill=self.strategy,
            estimator=UserEstimate(),
            topology=topology_from_node_groups(self.config.node_groups),
        )
        self.session: OnlineSession = self.simulator.open_session()
        self.admission = AdmissionController(
            capacity=self.config.admission_capacity,
            schedule=RefillSchedule(self.config.admission_refill),
        )
        self.replay = ReplayLogWriter(
            self.config.replay_log_path,
            durability=self.config.replay_durability,
            resume=_resume_log is not None,
        )
        if _resume_log is None:
            self.replay.header(
                num_processors=self.config.num_processors,
                policy=self.config.policy,
                time_scale=self.config.time_scale,
                row_block=self.config.row_block,
                bsld_threshold=self.simulator.bsld_threshold,
                node_groups=_normalize_node_groups(self.config.node_groups),
            )
        self.counters = _Counters()
        # The service *is* a telemetry surface: its registry is always on and
        # exposed through the ``metrics`` wire op (Prometheus text format).
        # ``self.counters`` stays the public coarse view; the registry adds
        # per-op latency histograms, admission-outcome counters, and depth
        # gauges without changing that surface.
        self.metrics = MetricsRegistry(enabled=True)
        self._op_histograms: Dict[str, Histogram] = {}
        self._queue_depth_gauge = self.metrics.gauge("service_queue_depth")
        self._pending_gauge = self.metrics.gauge("service_pending_requests")
        # Admission counters carry a capped ``tenant`` label: tenant strings
        # come off the wire with unknown cardinality, so only the first
        # _MAX_TENANT_LABELS distinct tenants mint their own label value and
        # the rest collapse into ``other`` (same discipline as the per-op
        # histograms).  The three outcomes are pre-registered for the default
        # tenant so a scrape always shows them, even at zero.
        self._admission_counters: Dict[Tuple[str, str], Counter] = {}
        self._tenant_labels: set = set()
        for outcome in ("admitted", "throttled", "invalid"):
            self._admission_counter(outcome, "default")
        self._decisions_counter = self.metrics.counter("service_decisions_total")
        self._clock = clock or time.monotonic
        self._t0: Optional[float] = None
        self._last_assigned = 0.0
        self._tenant_ids: Dict[str, int] = {}
        self._draining = False
        self._drain_summary: Optional[Dict[str, object]] = None
        self._dedup_cache: "OrderedDict[str, Dict[str, object]]" = OrderedDict()
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=self.config.max_pending_requests)
        self._server: Optional[asyncio.base_events.Server] = None
        self._worker_task: Optional[asyncio.Task] = None
        self._ticker_task: Optional[asyncio.Task] = None
        self._stopped = asyncio.Event()
        #: Monotonic per-request correlation id, minted at accept time and
        #: threaded through every span of the request as ``args.request_id``.
        self._next_request_id = 0
        self._current_request_id: Optional[int] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._metrics_httpd: Optional[ThreadingHTTPServer] = None
        self._metrics_thread: Optional[threading.Thread] = None
        if _resume_log is not None:
            self._restore_from_log(_resume_log)

    # -- crash recovery -----------------------------------------------------
    @classmethod
    def recover(
        cls,
        agent: RLBackfillAgent,
        replay_log_path: str | Path,
        config: ServiceConfig | None = None,
        clock: Callable[[], float] | None = None,
    ) -> "SchedulingService":
        """Rebuild a crashed service from its replay log.

        Reads the log (tolerating the torn final record a crash mid-write
        leaves), reconstructs the :class:`~repro.scheduler.simulator.OnlineSession`
        by resubmitting every logged job and advancing to the last logged
        instant, and verifies the logged decisions are a prefix of the
        rebuilt stream -- the determinism contract is what makes recovery
        *possible*.  Decisions that were served before the crash but lost
        from the torn tail are re-served identically and re-appended, and
        the log file is reopened for append (torn tail truncated), so the
        recovered service continues the same log.

        ``config`` defaults to one rebuilt from the log header; when given,
        its simulator-shaping fields must match the header (anything else
        could not replay the logged decisions).
        """
        log = read_replay_log(replay_log_path, allow_torn_tail=True)
        header = log.header
        header_row_block = header.get("row_block")
        header_groups = _normalize_node_groups(header.get("node_groups"))
        if config is None:
            config = ServiceConfig(
                num_processors=int(header["num_processors"]),
                policy=str(header.get("policy", "FCFS")),
                time_scale=float(header.get("time_scale", 1000.0)),
                row_block=None if header_row_block is None else int(header_row_block),
                replay_log_path=str(replay_log_path),
                node_groups=header_groups,
            )
        else:
            config = replace(config, replay_log_path=str(replay_log_path))
            expected = {
                "num_processors": int(header["num_processors"]),
                "policy": str(header.get("policy", "FCFS")),
                "row_block": None if header_row_block is None else int(header_row_block),
            }
            for key, value in expected.items():
                if getattr(config, key) != value:
                    raise RecoveryError(
                        f"config.{key}={getattr(config, key)!r} does not match the "
                        f"log header's {value!r}; the logged decisions would not replay"
                    )
            if _normalize_node_groups(config.node_groups) != header_groups:
                raise RecoveryError(
                    f"config.node_groups={config.node_groups!r} does not match the "
                    f"log header's {header_groups!r}; the logged decisions would "
                    "not replay"
                )
        return cls(agent, config, clock, _resume_log=log)

    def _restore_from_log(self, log: ReplayLog) -> None:
        """Reconstruct session state by replaying the log's job stream."""
        for tenant, job in zip(log.tenants, log.jobs):
            self._tenant_ids.setdefault(tenant, int(job.user_id))
            self.session.submit(job)
            self._last_assigned = max(self._last_assigned, job.submit_time)
        if log.jobs:
            horizon = self._last_assigned
            if log.decisions:
                horizon = max(horizon, log.decisions[-1].time)
            self.session.advance_to(horizon)
        if log.summary is not None:
            # The prior process completed its drain; recovery reproduces the
            # terminal state (summary kept verbatim, not re-logged).
            self.session.drain()
            self._draining = True
            self._drain_summary = dict(log.summary)
        rebuilt = self.session.decisions
        for index, logged in enumerate(log.decisions):
            if index >= len(rebuilt) or rebuilt[index] != logged:
                fresh = rebuilt[index] if index < len(rebuilt) else None
                raise RecoveryError(
                    f"logged decision {index} is not reproduced by the rebuilt "
                    f"session: log {logged} != replay {fresh}"
                )
        # Decisions the crash served but never made durable: re-log them now
        # (bit-identical by the prefix check above).
        for decision in rebuilt[len(log.decisions):]:
            self.replay.decision(decision)
        self.counters.submitted = len(log.jobs) + log.rejects
        self.counters.admitted = len(log.jobs)
        self.counters.rejected = log.rejects
        self.counters.decisions = len(rebuilt)
        self._decisions_counter.inc(len(rebuilt))

    # -- clocks -------------------------------------------------------------
    def wall_now(self) -> float:
        """Wall seconds since the service started serving."""
        if self._t0 is None:
            return 0.0
        return self._clock() - self._t0

    def event_now(self) -> float:
        """The wall-clock-mapped event-time horizon."""
        return self.wall_now() * self.config.time_scale

    def _assign_event_time(self) -> float:
        """Strictly-increasing submission event time, margin-separated from
        every processed instant (see :data:`_TIME_MARGIN`)."""
        floor = max(self.session.now, self._last_assigned) + _TIME_MARGIN
        assigned = max(self.event_now(), floor)
        self._last_assigned = assigned
        return assigned

    # -- lifecycle ----------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        if self._server is None:
            raise RuntimeError("service is not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    @property
    def metrics_address(self) -> Tuple[str, int]:
        """Bound ``(host, port)`` of the HTTP scrape listener."""
        if self._metrics_httpd is None:
            raise RuntimeError("metrics endpoint is not started (set metrics_port)")
        host, port = self._metrics_httpd.server_address[:2]
        return host, port

    async def start(self) -> Tuple[str, int]:
        """Bind the listener and start the scheduler/ticker tasks."""
        if self._server is not None:
            raise RuntimeError("service already started")
        self._t0 = self._clock()
        self._loop = asyncio.get_running_loop()
        self._worker_task = asyncio.create_task(self._worker(), name="service-scheduler")
        if self.config.tick_interval is not None:
            self._ticker_task = asyncio.create_task(self._ticker(), name="service-ticker")
        self._server = await asyncio.start_server(
            self._handle_client,
            host=self.config.host,
            port=self.config.port,
            limit=_STREAM_LIMIT,
        )
        if self.config.metrics_port is not None:
            self._start_metrics_http()
        return self.address

    def _start_metrics_http(self) -> None:
        """The plain-HTTP observability listener (``--metrics-port``).

        Runs a stdlib :class:`ThreadingHTTPServer` on its own thread so a
        stock Prometheus can scrape ``GET /metrics`` without speaking the
        JSONL wire protocol.  Handlers never touch service state directly:
        the registry render is scheduled onto the event loop
        (``run_coroutine_threadsafe``), so every registry access stays on the
        loop thread and the HTTP body is byte-identical to the ``metrics``
        wire op's ``body`` field by construction.
        """
        service = self
        loop = self._loop

        class _MetricsHandler(BaseHTTPRequestHandler):
            def _send(self, status: int, body: bytes, content_type: str) -> None:
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self):  # noqa: N802 - stdlib handler naming
                if self.path == "/metrics":
                    try:
                        future = asyncio.run_coroutine_threadsafe(
                            service._render_metrics_body(), loop
                        )
                        body = future.result(timeout=10.0).encode("utf-8")
                    except Exception as error:  # pragma: no cover - shutdown race
                        self.send_error(503, explain=f"{type(error).__name__}: {error}")
                        return
                    self._send(200, body, "text/plain; version=0.0.4")
                elif self.path == "/healthz":
                    self._send(200, b"ok\n", "text/plain")
                else:
                    self.send_error(404)

            def log_message(self, format, *args):  # noqa: A002 - stdlib signature
                pass

        httpd = ThreadingHTTPServer(
            (self.config.host, self.config.metrics_port), _MetricsHandler
        )
        httpd.daemon_threads = True
        self._metrics_httpd = httpd
        self._metrics_thread = threading.Thread(
            target=httpd.serve_forever, name="service-metrics-http", daemon=True
        )
        self._metrics_thread.start()

    async def _render_metrics_body(self) -> str:
        """Loop-thread trampoline for the HTTP handler threads."""
        return self._metrics_body()

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, flush the queue, close the log."""
        if self._metrics_httpd is not None:
            httpd = self._metrics_httpd
            thread = self._metrics_thread
            self._metrics_httpd = None
            self._metrics_thread = None
            # serve_forever's poll loop exits within its poll interval;
            # in-flight handler threads are daemonic and finish on their own.
            await asyncio.get_running_loop().run_in_executor(None, httpd.shutdown)
            httpd.server_close()
            if thread is not None:
                thread.join(timeout=5.0)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._ticker_task is not None:
            self._ticker_task.cancel()
            try:
                await self._ticker_task
            except asyncio.CancelledError:
                pass
            self._ticker_task = None
        if self._worker_task is not None:
            await self._queue.put(None)
            await self._worker_task
            self._worker_task = None
        self.replay.close()
        self._stopped.set()

    async def wait_stopped(self) -> None:
        await self._stopped.wait()

    async def __aenter__(self) -> "SchedulingService":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # -- scheduler task -----------------------------------------------------
    async def _worker(self) -> None:
        tracer = get_tracer()
        while True:
            item = await self._queue.get()
            if item is None:
                return
            request, future, enqueue_ns, request_id = item
            op = str(request.get("op", "unknown")) if isinstance(request, dict) else "unknown"
            t0 = time.perf_counter_ns()
            if tracer.enabled:
                # The request already measured its queue wait (enqueue at
                # dispatch, dequeue here), so trace it as a complete span.
                # One flow chain per request id connects queue_wait -> handle
                # -> respond as arrows in Perfetto (the flow events' own
                # timestamps sit at the start of each span, which is how
                # Perfetto binds them to the right slice).
                tracer.complete(
                    "service.queue_wait", enqueue_ns, t0 - enqueue_ns,
                    cat="service", args={"op": op, "request_id": request_id},
                )
                tracer.flow_start("service.request", request_id, enqueue_ns, cat="service")
            self._current_request_id = request_id
            try:
                response = self._handle(request)
            except Exception as error:  # noqa: BLE001 - surfaced to the client
                self.counters.errored += 1
                response = {"ok": False, "error": f"{type(error).__name__}: {error}"}
            finally:
                self._current_request_id = None
            handled = time.perf_counter_ns()
            self._observe_request(op, (handled - t0) / 1e9)
            if tracer.enabled:
                tracer.flow_step("service.request", request_id, t0, cat="service")
                tracer.complete(
                    "service.handle", t0, handled - t0, cat="service",
                    args={"op": op, "request_id": request_id},
                )
            if future is not None and not future.cancelled():
                future.set_result(response)
            if tracer.enabled:
                tracer.flow_end("service.request", request_id, handled, cat="service")
                tracer.complete(
                    "service.respond", handled, time.perf_counter_ns() - handled,
                    cat="service", args={"op": op, "request_id": request_id},
                )

    async def _ticker(self) -> None:
        while True:
            await asyncio.sleep(self.config.tick_interval)
            try:
                self._queue.put_nowait(
                    ({"op": "tick"}, None, time.perf_counter_ns(), self._mint_request_id())
                )
            except asyncio.QueueFull:
                # The scheduler is saturated with client work; it advances
                # event time on every submit anyway, so a dropped tick is
                # harmless.
                pass

    def _mint_request_id(self) -> int:
        """The next monotonic request-correlation id (loop thread only)."""
        self._next_request_id += 1
        return self._next_request_id

    def _advance(self, horizon: Optional[float] = None) -> List[ServedDecision]:
        if horizon is None:
            horizon = max(self.event_now(), self._last_assigned)
        with span(
            "service.advance", cat="service",
            args={"request_id": self._current_request_id},
        ):
            served = self.session.advance_to(horizon)
        for decision in served:
            self.replay.decision(decision)
        self.counters.decisions += len(served)
        self._decisions_counter.inc(len(served))
        return served

    _KNOWN_OPS = frozenset({"tick", "submit", "stats", "drain", "metrics"})

    def _observe_request(self, op: str, seconds: float) -> None:
        """Record one scheduler-task request into the service registry.

        Unknown op strings come off the wire, so they collapse into one
        ``other`` label rather than minting unbounded label values.
        """
        label = op if op in self._KNOWN_OPS else "other"
        hist = self._op_histograms.get(label)
        if hist is None:
            hist = self.metrics.histogram("service_request_seconds", op=label)
            self._op_histograms[label] = hist
        hist.observe(seconds)
        self._queue_depth_gauge.set(self.session.queue_depth)
        self._pending_gauge.set(self._queue.qsize())

    # -- request handling ---------------------------------------------------
    def _handle(self, request: Dict[str, object]) -> Dict[str, object]:
        op = request.get("op")
        self.counters.requests += 1
        if op == "tick":
            self.counters.ticks += 1
            if self._draining:
                return {"ok": True, "decisions": []}
            served = self._advance()
            return {
                "ok": True,
                "decisions": [self._decision_to_wire(d) for d in served],
                "event_time": self.session.now,
            }
        if op == "submit":
            return self._handle_submit(request)
        if op == "stats":
            return {"ok": True, "stats": self.stats()}
        if op == "metrics":
            return self._handle_metrics()
        if op == "drain":
            return self._handle_drain()
        raise ValueError(f"unknown op {op!r}")

    def _admission_counter(self, outcome: str, tenant: str) -> Counter:
        """The ``service_admission_total{outcome,tenant}`` counter, with the
        tenant label value capped (overflow tenants share ``other``)."""
        if tenant not in self._tenant_labels:
            if len(self._tenant_labels) < _MAX_TENANT_LABELS:
                self._tenant_labels.add(tenant)
            else:
                tenant = "other"
        key = (outcome, tenant)
        counter = self._admission_counters.get(key)
        if counter is None:
            counter = self.metrics.counter(
                "service_admission_total", outcome=outcome, tenant=tenant
            )
            self._admission_counters[key] = counter
        return counter

    def _publish_cluster_gauges(self) -> None:
        """Refresh ``cluster_group_free{group,resource}`` gauges from the
        session machine (hetero clusters only; a no-op otherwise)."""
        machine = self.session.state.machine
        if machine.topology is None:
            return
        for group, vector in machine.hetero_free_map().items():
            for resource, value in vector.as_dict().items():
                self.metrics.gauge(
                    "cluster_group_free", group=group, resource=resource
                ).set(value)

    def _metrics_body(self) -> str:
        """Prometheus text exposition 0.0.4, shared verbatim by the
        ``metrics`` wire op and ``GET /metrics`` on the scrape port.

        Always includes the service's own registry; when global collection is
        on (``REPRO_OBS_METRICS=1``) the process-wide registry -- simulator
        counters, PPO timings -- is appended so one scrape covers both.
        """
        self._publish_cluster_gauges()
        body = self.metrics.to_prometheus()
        if metrics_enabled():
            body += get_metrics().to_prometheus()
        return body

    def _handle_metrics(self) -> Dict[str, object]:
        """The ``metrics`` wire op (see :meth:`_metrics_body`)."""
        return {
            "ok": True,
            "content_type": "text/plain; version=0.0.4",
            "body": self._metrics_body(),
        }

    @staticmethod
    def _decision_to_wire(decision: ServedDecision) -> Dict[str, object]:
        return {
            "index": decision.index,
            "time": decision.time,
            "reserved_job_id": decision.reserved_job_id,
            "chosen_job_id": decision.chosen_job_id,
        }

    def _tenant_user_id(self, tenant: str) -> int:
        user_id = self._tenant_ids.get(tenant)
        if user_id is None:
            user_id = len(self._tenant_ids)
            self._tenant_ids[tenant] = user_id
        return user_id

    def _handle_submit(self, request: Dict[str, object]) -> Dict[str, object]:
        dedup_key = request.get("dedup_key")
        dedup_key = None if dedup_key is None else str(dedup_key)
        if dedup_key is not None:
            cached = self._dedup_cache.get(dedup_key)
            if cached is not None:
                # Idempotent retry: the original submission already ran (or
                # was throttled); replay its response instead of double-
                # admitting the jobs.
                self._dedup_cache.move_to_end(dedup_key)
                self.counters.deduplicated += 1
                return {**cached, "deduplicated": True}
        if self._draining:
            return {"ok": False, "error": "draining", "results": []}
        tenant = str(request.get("tenant", "default"))
        payloads = request.get("jobs")
        if payloads is None:
            job = request.get("job")
            payloads = [] if job is None else [job]
        if not isinstance(payloads, list) or not payloads:
            return {"ok": False, "error": "submit needs 'job' or a non-empty 'jobs' list"}
        results: List[Dict[str, object]] = []
        wall = self.wall_now()
        admission_t0 = time.perf_counter_ns()
        for payload in payloads:
            self.counters.submitted += 1
            try:
                verdict = self.admission.admit(tenant, wall)
                if not verdict.admitted:
                    self.counters.rejected += 1
                    self._admission_counter("throttled", tenant).inc()
                    retry = verdict.retry_after
                    self.replay.reject(tenant, wall, retry)
                    results.append(
                        {
                            "job_id": payload.get("job_id"),
                            "admitted": False,
                            "reason": "throttled",
                            "retry_after": retry if math.isfinite(retry) else None,
                        }
                    )
                    continue
                job = job_from_wire(
                    {
                        **payload,
                        "submit_time": self._assign_event_time(),
                        "user_id": self._tenant_user_id(tenant),
                    }
                )
                self.session.submit(job)
            except (ValueError, TypeError, KeyError) as error:
                self.counters.errored += 1
                self._admission_counter("invalid", tenant).inc()
                results.append(
                    {
                        "job_id": payload.get("job_id") if isinstance(payload, dict) else None,
                        "admitted": False,
                        "reason": "invalid",
                        "error": f"{type(error).__name__}: {error}",
                    }
                )
                continue
            self.counters.admitted += 1
            self._admission_counter("admitted", tenant).inc()
            self.replay.submit(tenant, job)
            results.append(
                {"job_id": job.job_id, "admitted": True, "event_time": job.submit_time}
            )
        get_tracer().complete(
            "service.admission",
            admission_t0,
            time.perf_counter_ns() - admission_t0,
            cat="service",
            args={"jobs": len(payloads), "request_id": self._current_request_id},
        )
        served = self._advance()
        response: Dict[str, object] = {
            "ok": True,
            "results": results,
            "decisions": [self._decision_to_wire(d) for d in served],
            "event_time": self.session.now,
            "queue_depth": self.session.queue_depth,
        }
        if dedup_key is not None:
            self._dedup_cache[dedup_key] = response
            self._dedup_cache.move_to_end(dedup_key)
            while len(self._dedup_cache) > self.config.dedup_cache_size:
                self._dedup_cache.popitem(last=False)
        return response

    def _handle_drain(self) -> Dict[str, object]:
        if self._drain_summary is not None:
            return {"ok": True, **self._drain_summary}
        self._draining = True
        served = self.session.drain()
        for decision in served:
            self.replay.decision(decision)
        self.counters.decisions += len(served)
        self._decisions_counter.inc(len(served))
        summary: Dict[str, object] = {
            "jobs": self.session.jobs_submitted,
            "decisions_served": len(self.session.decisions),
            "event_time": self.session.now,
        }
        if self.session.jobs_submitted:
            result = self.session.result()
            summary.update(
                {
                    "bsld": result.bsld,
                    "backfilled": result.backfill_count,
                    "utilization": result.metrics.utilization,
                }
            )
        if self.replay.path is not None:
            summary["replay_log"] = str(self.replay.path)
        self.replay.drain(summary)
        self.replay.flush()
        self._drain_summary = summary
        return {"ok": True, **summary}

    def stats(self) -> Dict[str, object]:
        return {
            "wall_seconds": self.wall_now(),
            "event_time": self.session.now,
            "event_horizon": self.event_now(),
            "time_scale": self.config.time_scale,
            "jobs_submitted": self.counters.submitted,
            "jobs_admitted": self.counters.admitted,
            "jobs_rejected": self.counters.rejected,
            "jobs_errored": self.counters.errored,
            "decisions_served": self.counters.decisions,
            "requests": self.counters.requests,
            "ticks": self.counters.ticks,
            "overloaded": self.counters.overloaded,
            "deduplicated": self.counters.deduplicated,
            "queue_depth": self.session.queue_depth,
            "pending_requests": self._queue.qsize(),
            "draining": self._draining,
            "admission": self.admission.snapshot(),
        }

    # -- framing ------------------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                response = await self._dispatch_line(line)
                writer.write(json.dumps(response, sort_keys=True).encode() + b"\n")
                await writer.drain()
                if response.get("bye"):
                    break
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch_line(self, line: bytes) -> Dict[str, object]:
        try:
            request = json.loads(line)
        except json.JSONDecodeError as error:
            return {"ok": False, "error": f"bad request framing: {error}"}
        if not isinstance(request, dict):
            return {"ok": False, "error": "request must be a JSON object"}
        op = request.get("op")
        if op == "hello":
            return {
                "ok": True,
                "service": "repro-scheduler",
                "num_processors": self.config.num_processors,
                "policy": self.config.policy,
                "time_scale": self.config.time_scale,
                "row_block": self.config.row_block,
            }
        if op == "shutdown":
            # Respond first, then stop: the scheduler queue is flushed by
            # stop(), so already-enqueued work still completes.
            asyncio.get_running_loop().create_task(self.stop())
            return {"ok": True, "bye": True}
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        try:
            self._queue.put_nowait(
                (request, future, time.perf_counter_ns(), self._mint_request_id())
            )
        except asyncio.QueueFull:
            self.counters.overloaded += 1
            return {
                "ok": False,
                "error": "overloaded",
                "retryable": True,
                "pending_requests": self._queue.qsize(),
            }
        return await future


class ServiceClient:
    """Minimal line-framed client used by tests and the load generator.

    ``timeout`` (wall seconds) bounds every request round trip; ``None``
    waits forever.  A timed-out connection is dropped -- after an abandoned
    round trip the stream's framing state is unknown, so the next request
    must reconnect (:meth:`connect` is idempotent).
    """

    def __init__(self, host: str, port: int, timeout: Optional[float] = None):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def connect(self) -> "ServiceClient":
        if self._writer is None:
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port, limit=_STREAM_LIMIT
            )
        return self

    async def __aenter__(self) -> "ServiceClient":
        return await self.connect()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._writer = None
            self._reader = None

    async def _roundtrip(self, payload: Dict[str, object]) -> Dict[str, object]:
        assert self._writer is not None and self._reader is not None
        self._writer.write(json.dumps(payload).encode() + b"\n")
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("service closed the connection")
        return json.loads(line)

    async def request(
        self,
        payload: Dict[str, object],
        timeout: Optional[float] = None,
    ) -> Dict[str, object]:
        """One request/response round trip.

        ``timeout`` overrides the client default for this op; on expiry the
        connection is closed and :class:`ServiceTimeoutError` (retryable)
        is raised -- whether the service executed the request is unknown,
        which is what ``dedup_key`` retries are for.
        """
        if self._writer is None or self._reader is None:
            raise RuntimeError("client is not connected")
        timeout = self.timeout if timeout is None else timeout
        if timeout is None:
            return await self._roundtrip(payload)
        try:
            return await asyncio.wait_for(self._roundtrip(payload), timeout)
        except asyncio.TimeoutError:
            await self.close()
            raise ServiceTimeoutError(
                f"no response within {timeout}s for op {payload.get('op')!r}"
            ) from None

    async def submit(
        self,
        jobs: Sequence[Dict[str, object]] | Dict[str, object],
        tenant: str = "default",
        dedup_key: Optional[str] = None,
    ) -> Dict[str, object]:
        payload: Dict[str, object] = {"op": "submit", "tenant": tenant}
        if dedup_key is not None:
            payload["dedup_key"] = dedup_key
        if isinstance(jobs, dict):
            payload["job"] = jobs
        else:
            payload["jobs"] = list(jobs)
        return await self.request(payload)

    async def submit_with_retry(
        self,
        jobs: Sequence[Dict[str, object]] | Dict[str, object],
        tenant: str = "default",
        *,
        dedup_key: Optional[str] = None,
        attempts: int = 6,
        base_delay: float = 0.05,
        max_delay: float = 2.0,
        rng: Optional[random.Random] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, object]:
        """Submit with jittered exponential backoff on retryable failures.

        Retries on ``overloaded`` responses, timeouts, and dropped
        connections (reconnecting as needed), always resending the **same**
        ``dedup_key`` -- the service's idempotent-submit cache guarantees a
        retry after an ambiguous failure cannot double-admit jobs.  A key is
        generated when the caller does not supply one.  Non-retryable error
        responses are returned as-is; exhausting ``attempts`` raises the
        last retryable error.
        """
        if dedup_key is None:
            dedup_key = uuid.uuid4().hex
        rng = rng if rng is not None else random.Random()
        payload: Dict[str, object] = {
            "op": "submit",
            "tenant": tenant,
            "dedup_key": dedup_key,
        }
        if isinstance(jobs, dict):
            payload["job"] = jobs
        else:
            payload["jobs"] = list(jobs)
        last_error: Optional[Exception] = None
        for attempt in range(attempts):
            if attempt:
                delay = min(max_delay, base_delay * (2 ** (attempt - 1)))
                await asyncio.sleep(delay * (0.5 + 0.5 * rng.random()))
            try:
                await self.connect()
                response = await self.request(payload, timeout=timeout)
            except (ServiceTimeoutError, ConnectionError, OSError) as error:
                last_error = error
                await self.close()
                continue
            if response.get("ok") or response.get("error") != "overloaded":
                return response
            last_error = ServiceOverloadedError(
                f"service overloaded on submit attempt {attempt + 1}"
            )
        assert last_error is not None
        raise last_error

    async def drain(self) -> Dict[str, object]:
        return await self.request({"op": "drain"})

    async def stats(self) -> Dict[str, object]:
        return await self.request({"op": "stats"})

    async def metrics(self) -> Dict[str, object]:
        """Scrape the service's Prometheus text exposition (``body`` key)."""
        return await self.request({"op": "metrics"})

    async def shutdown(self) -> Dict[str, object]:
        return await self.request({"op": "shutdown"})


def job_wire_from_job(job: Job) -> Dict[str, object]:
    """Client-side helper: the wire form of a trace job (submit_time is
    assigned by the service, so the trace's own submit time is dropped)."""
    payload = job_to_wire(job)
    payload.pop("submit_time", None)
    payload.pop("user_id", None)
    return payload
