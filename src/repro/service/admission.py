"""Per-tenant token-bucket admission control with time-varying refill.

The online scheduling service (:mod:`repro.service.server`) throttles each
tenant's submission stream through its own :class:`TokenBucket`: a submission
costs one token, tokens refill continuously at a rate given by a
piecewise-constant :class:`RefillSchedule` (so operators can express quiet
hours, ramp-ups, or emergency brakes as rate phases), and the bucket never
holds more than ``capacity`` tokens -- the burst cap.

Everything here is pure and clock-agnostic: methods take an explicit ``now``
(seconds on any monotone clock) instead of reading wall time, which is what
makes the property-based tests in ``tests/test_admission.py`` exact rather
than sleep-based.  The invariants those tests pin down:

* **burst cap** -- ``available(now) <= capacity`` always;
* **token conservation** -- tokens consumed equals tokens accrued plus the
  initial fill minus what is left (no token is ever minted by an acquire);
* **refill monotonicity** -- between acquisitions, ``available`` is
  non-decreasing in time for any (non-negative) rate schedule;
* **tenant isolation** -- buckets are independent per tenant, so one
  tenant's arrival storm cannot consume another tenant's tokens.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "RefillPhase",
    "RefillSchedule",
    "TokenBucket",
    "AdmissionVerdict",
    "AdmissionController",
]


@dataclass(frozen=True, slots=True)
class RefillPhase:
    """One piece of a piecewise-constant refill schedule.

    ``rate`` (tokens/second) applies from ``start`` (seconds on the bucket's
    clock) until the next phase's start, or forever for the last phase.
    """

    start: float
    rate: float

    def __post_init__(self) -> None:
        if self.start < 0.0:
            raise ValueError(f"phase start must be non-negative, got {self.start}")
        if self.rate < 0.0 or not math.isfinite(self.rate):
            raise ValueError(f"refill rate must be finite and >= 0, got {self.rate}")


class RefillSchedule:
    """A piecewise-constant refill rate and its exact integral.

    Phases must start at 0 and be strictly increasing in ``start``.  The
    schedule is *time-varying by construction*: ``rate_at(t)`` is a step
    function and :meth:`accrued` integrates it exactly (sum of
    ``rate * overlap`` per phase), so accrual is additive over adjacent
    intervals up to float rounding.
    """

    def __init__(self, phases: Iterable[RefillPhase | Tuple[float, float]]):
        normalized: List[RefillPhase] = [
            phase if isinstance(phase, RefillPhase) else RefillPhase(*phase)
            for phase in phases
        ]
        if not normalized:
            raise ValueError("a refill schedule needs at least one phase")
        if normalized[0].start != 0.0:
            raise ValueError(
                f"the first refill phase must start at 0, got {normalized[0].start}"
            )
        for previous, current in zip(normalized, normalized[1:]):
            if current.start <= previous.start:
                raise ValueError(
                    "refill phases must be strictly increasing in start time: "
                    f"{current.start} follows {previous.start}"
                )
        self.phases: Tuple[RefillPhase, ...] = tuple(normalized)

    @classmethod
    def constant(cls, rate: float) -> "RefillSchedule":
        """A schedule with one flat rate for all time."""
        return cls([RefillPhase(0.0, rate)])

    def rate_at(self, t: float) -> float:
        """The instantaneous refill rate at time ``t`` (clamped to >= 0)."""
        rate = self.phases[0].rate
        for phase in self.phases:
            if phase.start > t:
                break
            rate = phase.rate
        return rate

    def accrued(self, t0: float, t1: float) -> float:
        """Tokens accrued over ``[t0, t1]`` (0 when the interval is empty)."""
        if t1 <= t0:
            return 0.0
        total = 0.0
        for i, phase in enumerate(self.phases):
            end = self.phases[i + 1].start if i + 1 < len(self.phases) else math.inf
            overlap = min(t1, end) - max(t0, phase.start)
            if overlap > 0.0:
                total += phase.rate * overlap
        return total

    def time_to_accrue(self, now: float, amount: float) -> float:
        """Seconds after ``now`` until ``amount`` tokens accrue (inf if never)."""
        if amount <= 0.0:
            return 0.0
        remaining = amount
        cursor = now
        for i, phase in enumerate(self.phases):
            end = self.phases[i + 1].start if i + 1 < len(self.phases) else math.inf
            if end <= cursor:
                continue
            start = max(cursor, phase.start)
            span = end - start
            if phase.rate > 0.0:
                needed = remaining / phase.rate
                if needed <= span:
                    return (start - now) + needed
                remaining -= phase.rate * span
            # rate 0 phases contribute nothing; fall through to the next.
        return math.inf

    def __repr__(self) -> str:
        inner = ", ".join(f"[{p.start:g}s: {p.rate:g}/s]" for p in self.phases)
        return f"RefillSchedule({inner})"


@dataclass
class TokenBucket:
    """A single tenant's token bucket over an explicit monotone clock.

    ``capacity`` is the burst cap; ``schedule`` the time-varying refill.  The
    bucket starts full unless ``initial`` says otherwise.  Calls may pass any
    ``now``; time is clamped to be non-decreasing (a stale reading behaves as
    "no time has passed"), so the invariants hold even for careless callers.
    """

    capacity: float
    schedule: RefillSchedule
    initial: Optional[float] = None
    tokens: float = field(init=False)
    updated: float = field(init=False, default=0.0)
    admitted: int = field(init=False, default=0)
    rejected: int = field(init=False, default=0)
    consumed: float = field(init=False, default=0.0)

    def __post_init__(self) -> None:
        if self.capacity <= 0.0 or not math.isfinite(self.capacity):
            raise ValueError(f"capacity must be finite and positive, got {self.capacity}")
        fill = self.capacity if self.initial is None else self.initial
        if fill < 0.0:
            raise ValueError(f"initial fill must be non-negative, got {fill}")
        self.tokens = min(fill, self.capacity)

    def _advance(self, now: float) -> float:
        now = max(now, self.updated)
        self.tokens = min(
            self.capacity, self.tokens + self.schedule.accrued(self.updated, now)
        )
        self.updated = now
        return now

    def available(self, now: float) -> float:
        """Tokens available at ``now`` (never exceeds ``capacity``)."""
        self._advance(now)
        return self.tokens

    def try_acquire(self, now: float, cost: float = 1.0) -> bool:
        """Consume ``cost`` tokens if available; returns whether it succeeded."""
        if cost < 0.0:
            raise ValueError(f"cost must be non-negative, got {cost}")
        self._advance(now)
        if self.tokens + 1e-12 >= cost:
            self.tokens -= cost
            self.tokens = max(self.tokens, 0.0)
            self.consumed += cost
            self.admitted += 1
            return True
        self.rejected += 1
        return False

    def retry_after(self, now: float, cost: float = 1.0) -> float:
        """Seconds until ``cost`` tokens would be available (0 if they are)."""
        now = self._advance(now)
        deficit = cost - self.tokens
        if deficit <= 0.0:
            return 0.0
        return self.schedule.time_to_accrue(now, deficit)


@dataclass(frozen=True, slots=True)
class AdmissionVerdict:
    """Outcome of one admission check."""

    tenant: str
    admitted: bool
    tokens_remaining: float
    retry_after: float = 0.0


class AdmissionController:
    """Per-tenant token buckets behind one admit call.

    Buckets are created lazily on a tenant's first submission, each with the
    controller's ``capacity`` and ``schedule`` (or a per-tenant override
    registered via :meth:`configure_tenant`).  Isolation is structural: a
    tenant's acquires touch only its own bucket.
    """

    def __init__(
        self,
        capacity: float,
        schedule: RefillSchedule | float,
        cost: float = 1.0,
    ):
        self.capacity = float(capacity)
        self.schedule = (
            schedule
            if isinstance(schedule, RefillSchedule)
            else RefillSchedule.constant(float(schedule))
        )
        self.cost = float(cost)
        self._buckets: Dict[str, TokenBucket] = {}
        self._overrides: Dict[str, Tuple[float, RefillSchedule]] = {}

    def configure_tenant(
        self, tenant: str, capacity: float, schedule: RefillSchedule | float
    ) -> None:
        """Override one tenant's bucket parameters (before its first use)."""
        if tenant in self._buckets:
            raise ValueError(f"tenant {tenant!r} already has a live bucket")
        if not isinstance(schedule, RefillSchedule):
            schedule = RefillSchedule.constant(float(schedule))
        self._overrides[tenant] = (float(capacity), schedule)

    def bucket(self, tenant: str) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            capacity, schedule = self._overrides.get(
                tenant, (self.capacity, self.schedule)
            )
            bucket = TokenBucket(capacity=capacity, schedule=schedule)
            self._buckets[tenant] = bucket
        return bucket

    def admit(self, tenant: str, now: float, cost: Optional[float] = None) -> AdmissionVerdict:
        """Charge ``tenant``'s bucket for one submission at time ``now``."""
        bucket = self.bucket(tenant)
        cost = self.cost if cost is None else float(cost)
        if bucket.try_acquire(now, cost):
            return AdmissionVerdict(
                tenant=tenant, admitted=True, tokens_remaining=bucket.tokens
            )
        return AdmissionVerdict(
            tenant=tenant,
            admitted=False,
            tokens_remaining=bucket.tokens,
            retry_after=bucket.retry_after(now, cost),
        )

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Per-tenant counters for the service's stats endpoint."""
        return {
            tenant: {
                "tokens": bucket.tokens,
                "admitted": bucket.admitted,
                "rejected": bucket.rejected,
                "consumed": bucket.consumed,
            }
            for tenant, bucket in sorted(self._buckets.items())
        }

    @property
    def tenants(self) -> Sequence[str]:
        return tuple(sorted(self._buckets))
