"""Process-local deterministic metrics registry.

One :class:`MetricsRegistry` holds monotonic :class:`Counter`\\ s,
:class:`Gauge`\\ s, and fixed-bucket :class:`Histogram`\\ s.  Three properties
make the registry safe to leave compiled into hot paths:

* **Near-zero disabled cost.**  Every recording method checks its registry's
  ``enabled`` flag first and returns immediately when collection is off --
  two attribute loads and a branch, no allocation, no clock read.  The
  global registry (:func:`get_metrics`) starts disabled unless
  ``REPRO_OBS_METRICS=1`` is set; subsystems that *are* their own telemetry
  surface (rollout engines backing ``stats()``, the scheduling service
  backing its ``metrics`` wire op) construct private always-enabled
  registries instead.
* **Byte-deterministic snapshots.**  Histogram bucket bounds are compiled-in
  constants (:data:`LATENCY_BUCKETS_S`, :data:`SIZE_BUCKETS`), metric
  identity is the sorted ``(name, labels)`` pair, and :meth:`snapshot`
  orders everything lexicographically -- given deterministic inputs, two
  processes produce byte-identical ``json.dumps(snapshot, sort_keys=True)``.
* **Determinism-contract safe.**  Counters record *counts of events that are
  themselves deterministic* (schedule passes, decision points, profile
  builds); clock reads happen only at call sites outside bit-parity-checked
  computation and never feed back into scheduling or training math.  The
  parity matrix (``tests/test_parity_matrix.py``) runs with collection
  enabled to assert exactly that.

Shared-memory awareness: worker processes do not share a registry with the
parent.  :data:`WORKER_PUBLISHED_COUNTERS` names the global counters a lane
pool worker accumulates locally and publishes as per-frame *deltas* through
the existing shared-memory result rings; the parent folds the deltas into
its own registry (see :mod:`repro.rl.lane_pool`).

Naming scheme (see ``docs/observability.md``): ``<subsystem>_<what>_<unit>``
with ``_total`` for counters, ``_seconds``/``_ns`` for durations, labels for
low-cardinality dimensions (``{op=...}``, ``{worker=...}``).
"""

from __future__ import annotations

import json
import os
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "LATENCY_BUCKETS_S",
    "SIZE_BUCKETS",
    "WORKER_PUBLISHED_COUNTERS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_metrics",
    "metrics_enabled",
    "enable_metrics",
    "disable_metrics",
    "diff_snapshots",
    "engine_stats_delta",
    "parse_prometheus_text",
]

#: Environment variable propagating the global enable switch to worker
#: processes (``fork`` children inherit the live registry; ``spawn`` children
#: re-read this at import).
METRICS_ENV = "REPRO_OBS_METRICS"

#: Largest value a counter may reach (int64, so counter deltas round-trip
#: through the lane pool's shared-memory ``int64`` frames losslessly).
_INT64_MAX = 2**63 - 1

#: Compiled-in latency bucket upper bounds (seconds): a 1-2-5 decade ladder
#: from 1 microsecond to 100 seconds.  Compiled-in so histogram snapshots are
#: byte-identical across processes and sessions.
LATENCY_BUCKETS_S: Tuple[float, ...] = tuple(
    round(base * 10.0**exp, 12)
    for exp in range(-6, 3)
    for base in (1.0, 2.0, 5.0)
)

#: Compiled-in size bucket upper bounds (counts): powers of two up to 64k.
SIZE_BUCKETS: Tuple[float, ...] = tuple(float(2**i) for i in range(17))

#: Global counters a lane-pool worker process accumulates locally and
#: publishes through its shared-memory result frames as per-frame deltas.
#: The tuple is part of the ring-frame layout (one int64 slot per name), so
#: order and length are wire-format constants.
WORKER_PUBLISHED_COUNTERS: Tuple[str, ...] = (
    "sim_schedule_passes_total",
    "sim_decision_points_total",
    "sim_backfill_starts_total",
    "backfill_profile_builds_total",
    "sim_preemptions_total",
    "sim_requeues_total",
)


def _label_key(labels: Dict[str, str]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _sample_name(name: str, labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return name
    inner = ",".join(f'{k}="{_escape(v)}"' for k, v in labels)
    return f"{name}{{{inner}}}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


class _Metric:
    """Shared plumbing: identity and the enabled check."""

    __slots__ = ("name", "labels", "_registry")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...], registry):
        self.name = name
        self.labels = labels
        self._registry = registry

    @property
    def enabled(self) -> bool:
        registry = self._registry
        return registry is None or registry.enabled

    @property
    def sample_name(self) -> str:
        return _sample_name(self.name, self.labels)


class Counter(_Metric):
    """Monotonic int64 counter.

    Rejects negative deltas (monotonicity) and increments past int64
    (overflow would corrupt the shared-memory delta frames) loudly rather
    than wrapping silently.
    """

    __slots__ = ("_value",)

    def __init__(self, name: str, labels=(), registry=None):
        super().__init__(name, tuple(labels), registry)
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        registry = self._registry
        if registry is not None and not registry.enabled:
            return
        if amount < 0:
            raise ValueError(
                f"counter {self.sample_name} is monotonic; negative delta {amount} rejected"
            )
        value = self._value + amount
        if value > _INT64_MAX:
            raise OverflowError(
                f"counter {self.sample_name} would exceed int64 ({self._value} + {amount})"
            )
        self._value = value

    @property
    def value(self) -> int:
        return self._value

    def _reset(self) -> None:
        self._value = 0


class Gauge(_Metric):
    """Last-written value (queue depths, in-flight counts)."""

    __slots__ = ("_value",)

    def __init__(self, name: str, labels=(), registry=None):
        super().__init__(name, tuple(labels), registry)
        self._value = 0.0

    def set(self, value: float) -> None:
        registry = self._registry
        if registry is not None and not registry.enabled:
            return
        self._value = float(value)

    @property
    def value(self) -> float:
        return self._value

    def _reset(self) -> None:
        self._value = 0.0


class Histogram(_Metric):
    """Fixed-bucket histogram with Prometheus ``le`` (inclusive) semantics.

    ``bounds`` are compiled-in upper bounds; a value lands in the first
    bucket whose bound is ``>= value`` (a value exactly on a bound belongs to
    that bound's bucket -- deterministic, no float jitter at the edges), with
    one overflow bucket past the last bound.  Construct standalone (always
    recording) or through a registry (gated by its ``enabled`` flag).
    """

    __slots__ = ("bounds", "_counts", "_sum", "_count")

    def __init__(self, name: str, bounds: Sequence[float], labels=(), registry=None):
        super().__init__(name, tuple(labels), registry)
        bounds = tuple(float(b) for b in bounds)
        if not bounds or any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ValueError("histogram bounds must be non-empty and strictly increasing")
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        registry = self._registry
        if registry is not None and not registry.enabled:
            return
        self._counts[bisect_left(self.bounds, value)] += 1
        self._sum += value
        self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def bucket_counts(self) -> List[int]:
        """Per-bucket (non-cumulative) counts, overflow bucket last."""
        return list(self._counts)

    def quantile(self, q: float) -> float:
        """Bucket-interpolated quantile, ``q`` in ``[0, 1]``.

        Linear interpolation inside the containing bucket (lower edge 0 for
        the first); the overflow bucket reports its lower bound (there is no
        upper edge to interpolate toward).  With no observations, 0.0.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must lie in [0, 1], got {q}")
        if self._count == 0:
            return 0.0
        rank = q * self._count
        cumulative = 0
        for index, bucket_count in enumerate(self._counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                if index == len(self.bounds):
                    return self.bounds[-1]
                lo = 0.0 if index == 0 else self.bounds[index - 1]
                hi = self.bounds[index]
                fraction = (rank - cumulative) / bucket_count
                return lo + (hi - lo) * min(max(fraction, 0.0), 1.0)
            cumulative += bucket_count
        return self.bounds[-1]  # pragma: no cover - unreachable with count > 0

    def _reset(self) -> None:
        self._counts = [0] * (len(self.bounds) + 1)
        self._sum = 0.0
        self._count = 0


class MetricsRegistry:
    """Get-or-create store of metrics keyed by ``(name, sorted labels)``."""

    def __init__(self, enabled: bool = False):
        self.enabled = bool(enabled)
        self._metrics: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], _Metric] = {}

    # -- switches -----------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Zero every metric *in place* (module-level handles stay valid)."""
        for metric in self._metrics.values():
            metric._reset()

    # -- get-or-create ------------------------------------------------------
    def _get(self, cls, name: str, labels: Dict[str, str], *args):
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, *args, labels=key[1], registry=self)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {key[0]!r} already registered as {type(metric).__name__}, "
                f"not {cls.__name__}"
            )
        return metric

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self, name: str, buckets: Sequence[float] = LATENCY_BUCKETS_S, **labels: str
    ) -> Histogram:
        metric = self._get(Histogram, name, labels, buckets)
        if metric.bounds != tuple(float(b) for b in buckets):
            raise ValueError(
                f"histogram {name!r} already registered with different bucket bounds"
            )
        return metric

    def metrics(self) -> List[_Metric]:
        return [self._metrics[key] for key in sorted(self._metrics)]

    # -- snapshots ----------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Deterministic nested dict: ``{"counters": .., "gauges": ..,
        "histograms": ..}``, sample names sorted lexicographically."""
        out: Dict[str, Dict[str, object]] = {"counters": {}, "gauges": {}, "histograms": {}}
        for metric in self.metrics():
            key = metric.sample_name
            if isinstance(metric, Counter):
                out["counters"][key] = metric.value
            elif isinstance(metric, Gauge):
                out["gauges"][key] = metric.value
            else:
                out["histograms"][key] = {
                    "buckets": metric.bucket_counts(),
                    "sum": metric.sum,
                    "count": metric.count,
                }
        return out

    def snapshot_json(self) -> str:
        """The byte-deterministic serialized form of :meth:`snapshot`."""
        return json.dumps(self.snapshot(), sort_keys=True, separators=(",", ":"))

    # -- Prometheus text exposition -----------------------------------------
    def to_prometheus(self) -> str:
        """Text exposition format 0.0.4 (cumulative buckets, ``+Inf``,
        ``_sum``/``_count``), families sorted by name."""
        lines: List[str] = []
        seen_types: set = set()
        for metric in self.metrics():
            if isinstance(metric, Counter):
                kind = "counter"
            elif isinstance(metric, Gauge):
                kind = "gauge"
            else:
                kind = "histogram"
            if metric.name not in seen_types:
                lines.append(f"# TYPE {metric.name} {kind}")
                seen_types.add(metric.name)
            if isinstance(metric, (Counter, Gauge)):
                value = metric.value
                rendered = repr(value) if isinstance(value, float) else str(value)
                lines.append(f"{metric.sample_name} {rendered}")
                continue
            cumulative = 0
            for bound, count in zip(metric.bounds, metric.bucket_counts()):
                cumulative += count
                labels = metric.labels + (("le", repr(bound)),)
                lines.append(f"{_sample_name(metric.name + '_bucket', labels)} {cumulative}")
            labels = metric.labels + (("le", "+Inf"),)
            lines.append(f"{_sample_name(metric.name + '_bucket', labels)} {metric.count}")
            lines.append(f"{_sample_name(metric.name + '_sum', metric.labels)} {repr(metric.sum)}")
            lines.append(f"{_sample_name(metric.name + '_count', metric.labels)} {metric.count}")
        return "\n".join(lines) + ("\n" if lines else "")


def parse_prometheus_text(text: str) -> Dict[str, float]:
    """Parse text exposition back into ``{sample_name: value}``.

    Covers the subset :meth:`MetricsRegistry.to_prometheus` emits (which is
    what ``scripts/load_service.py`` scrapes from the service's ``metrics``
    wire op); comment/``# TYPE`` lines are skipped.
    """
    samples: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        if not name:
            continue
        samples[name] = float(value)
    return samples


def diff_snapshots(
    before: Dict[str, Dict[str, object]], after: Dict[str, Dict[str, object]]
) -> Dict[str, Dict[str, object]]:
    """Per-interval delta of two :meth:`MetricsRegistry.snapshot` dicts.

    Counters and histogram buckets/sums/counts subtract; gauges are
    last-written values, so the ``after`` reading is reported as is.
    Samples absent from ``before`` diff against zero.
    """
    out: Dict[str, Dict[str, object]] = {"counters": {}, "gauges": {}, "histograms": {}}
    for key, value in after.get("counters", {}).items():
        out["counters"][key] = value - before.get("counters", {}).get(key, 0)
    out["gauges"] = dict(after.get("gauges", {}))
    for key, hist in after.get("histograms", {}).items():
        prev = before.get("histograms", {}).get(
            key, {"buckets": [0] * len(hist["buckets"]), "sum": 0.0, "count": 0}
        )
        out["histograms"][key] = {
            "buckets": [a - b for a, b in zip(hist["buckets"], prev["buckets"])],
            "sum": hist["sum"] - prev["sum"],
            "count": hist["count"] - prev["count"],
        }
    return out


#: ``engine.stats()`` keys that describe configuration, not accumulation.
_STATS_CONFIG_KEYS = ("engine", "pipeline_depth", "num_workers")


def engine_stats_delta(after: Dict[str, object], before: Dict[str, object]) -> Dict[str, object]:
    """Per-interval delta of two rollout-engine ``stats()`` snapshots.

    The one shared implementation behind the Trainer's epoch-boundary engine
    log and ``scripts/profile_rollout.py``'s per-phase breakdown.  Config
    fields (engine/pipeline_depth/num_workers) pass through unchanged, every
    counter subtracts, and ``worker_idle_fraction`` -- a cumulative ratio --
    is recomputed from *this interval's* wait/wall deltas so the result is
    the interval's own idle fraction, not the lifetime running mean (the
    stale value the old per-call-site copies could report for pipelined
    runs when their snapshot keys drifted).
    """
    delta: Dict[str, object] = {}
    for key, value in after.items():
        if key in _STATS_CONFIG_KEYS or isinstance(value, str):
            delta[key] = value
        elif key == "worker_idle_fraction":
            continue
        else:
            delta[key] = value - before.get(key, 0)
    if "worker_idle_fraction" in after:
        wait = float(delta.get("worker_wait_s", 0.0))
        wall = float(delta.get("rollout_s", 0.0))
        workers = int(after.get("num_workers", 0) or 0)
        delta["worker_idle_fraction"] = (
            round(wait / (workers * wall), 4) if workers and wall > 0 else 0.0
        )
    return delta


#: The process-global registry.  Disabled by default; the environment
#: variable seeds the switch so ``spawn``-started workers agree with a parent
#: that enabled collection before building its pool.
_REGISTRY = MetricsRegistry(enabled=os.environ.get(METRICS_ENV, "") == "1")


def get_metrics() -> MetricsRegistry:
    """The process-global registry (module-level handles stay valid forever:
    :meth:`MetricsRegistry.reset` zeroes in place, it never drops metrics)."""
    return _REGISTRY


def metrics_enabled() -> bool:
    return _REGISTRY.enabled


def enable_metrics() -> None:
    """Enable global collection, including in worker processes forked or
    spawned *after* this call (via :data:`METRICS_ENV`)."""
    _REGISTRY.enable()
    os.environ[METRICS_ENV] = "1"


def disable_metrics() -> None:
    _REGISTRY.disable()
    os.environ.pop(METRICS_ENV, None)
