"""Unified observability: deterministic metrics registry + span tracer.

See ``docs/observability.md`` for the metric naming scheme, the determinism
rules (what may read clocks, what must stay byte-deterministic), and the
trace-viewer workflow.  Quick tour::

    from repro.obs import enable_metrics, get_metrics, enable_tracing, get_tracer

    enable_metrics()                     # global switch, default off
    ...run a rollout / serve requests...
    print(get_metrics().to_prometheus()) # text exposition of every counter

    enable_tracing()
    ...timed work...
    get_tracer().export("trace.json")    # load in chrome://tracing / Perfetto
"""

from repro.obs.metrics import (
    LATENCY_BUCKETS_S,
    SIZE_BUCKETS,
    WORKER_PUBLISHED_COUNTERS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    diff_snapshots,
    disable_metrics,
    enable_metrics,
    engine_stats_delta,
    get_metrics,
    metrics_enabled,
    parse_prometheus_text,
)
from repro.obs.collect import (
    collect_sources,
    export_chrome_trace,
    merge_chrome_trace,
    read_sidecar,
    write_sidecar,
)
from repro.obs.trace import (
    SpanTracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    set_trace_spool_dir,
    span,
    trace_spool_dir,
    tracing_enabled,
)

__all__ = [
    "LATENCY_BUCKETS_S",
    "SIZE_BUCKETS",
    "WORKER_PUBLISHED_COUNTERS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "diff_snapshots",
    "engine_stats_delta",
    "get_metrics",
    "metrics_enabled",
    "enable_metrics",
    "disable_metrics",
    "parse_prometheus_text",
    "SpanTracer",
    "get_tracer",
    "tracing_enabled",
    "enable_tracing",
    "disable_tracing",
    "span",
    "trace_spool_dir",
    "set_trace_spool_dir",
    "collect_sources",
    "merge_chrome_trace",
    "export_chrome_trace",
    "read_sidecar",
    "write_sidecar",
]
