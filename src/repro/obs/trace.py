"""Span tracer: bounded ring of timing events, Chrome-trace JSON export.

:class:`SpanTracer` records *complete* events (Chrome trace phase ``"X"``:
one record per span carrying start + duration) into a fixed-capacity ring --
old events are overwritten, memory never grows -- and exports the Chrome
trace-event JSON format that ``chrome://tracing`` and Perfetto load directly.

Cost model mirrors the metrics registry: every recording method checks the
tracer's ``enabled`` flag first, so a disabled tracer compiled into a hot
loop costs a branch.  Where the call site already measured a duration for
its own counters (the rollout engines' per-phase ``perf_counter_ns`` pairs),
:meth:`complete` records it without any additional clock read.

Determinism: spans carry wall-clock timestamps and are *diagnostic only* --
nothing reads them back into scheduling or training computation, so tracing
may stay enabled through bit-parity-checked runs (asserted by
``tests/test_parity_matrix.py``).
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional

__all__ = [
    "SpanTracer",
    "get_tracer",
    "tracing_enabled",
    "enable_tracing",
    "disable_tracing",
    "span",
    "chrome_event",
    "trace_spool_dir",
    "set_trace_spool_dir",
]

#: Environment variable seeding the global tracer's enable switch (same
#: worker-propagation story as ``REPRO_OBS_METRICS``).
TRACE_ENV = "REPRO_OBS_TRACE"

#: Directory worker processes drain their span rings into as sidecar files
#: (see :mod:`repro.obs.collect`).  An environment variable so both ``fork``
#: and ``spawn`` children inherit it without any ring-protocol change.
TRACE_DIR_ENV = "REPRO_OBS_TRACE_DIR"

_DEFAULT_CAPACITY = 65536


class _Span:
    """Context manager recording one complete event on exit."""

    __slots__ = ("_tracer", "_name", "_cat", "_args", "_t0")

    def __init__(self, tracer: "SpanTracer", name: str, cat: str, args: Optional[Dict]):
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._args = args

    def __enter__(self) -> "_Span":
        self._t0 = time.perf_counter_ns()
        return self

    def __exit__(self, *exc) -> None:
        t0 = self._t0
        self._tracer.complete(
            self._name, t0, time.perf_counter_ns() - t0, cat=self._cat, args=self._args
        )


class _NullSpan:
    """Shared no-op span handed out while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_SPAN = _NullSpan()


class SpanTracer:
    """Bounded ring of Chrome trace events."""

    def __init__(self, capacity: int = _DEFAULT_CAPACITY, enabled: bool = False):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self.enabled = bool(enabled)
        self._ring: List[Optional[tuple]] = [None] * self.capacity
        #: Total events ever recorded; ``_next % capacity`` is the write slot.
        self._next = 0
        self._dropped = 0

    # -- switches -----------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        self._ring = [None] * self.capacity
        self._next = 0
        self._dropped = 0

    # -- recording ----------------------------------------------------------
    def _record(self, event: tuple) -> None:
        slot = self._next % self.capacity
        if self._ring[slot] is not None:
            self._dropped += 1
        self._ring[slot] = event
        self._next += 1

    def complete(
        self,
        name: str,
        start_ns: int,
        duration_ns: int,
        cat: str = "",
        args: Optional[Dict] = None,
    ) -> None:
        """Record one complete ('X') event from an already-measured
        ``(start, duration)`` pair -- no clock read of its own, so call sites
        that time phases for their counters trace them for free."""
        if not self.enabled:
            return
        self._record(("X", name, cat, start_ns, duration_ns, os.getpid(), args, None))

    def instant(self, name: str, cat: str = "", args: Optional[Dict] = None) -> None:
        """Record an instant ('i') event at the current time."""
        if not self.enabled:
            return
        self._record(("i", name, cat, time.perf_counter_ns(), 0, os.getpid(), args, None))

    def flow_start(
        self,
        name: str,
        flow_id: int,
        ts_ns: int,
        cat: str = "",
        args: Optional[Dict] = None,
    ) -> None:
        """Record a flow-start ('s') event at ``ts_ns``.

        Perfetto binds a flow event to whichever slice encloses its timestamp
        on the same pid/tid lane, so place ``ts_ns`` inside the span the arrow
        should leave from (its start timestamp works).  All events of one flow
        share ``name`` and ``flow_id``.
        """
        if not self.enabled:
            return
        self._record(("s", name, cat, ts_ns, 0, os.getpid(), args, int(flow_id)))

    def flow_step(
        self,
        name: str,
        flow_id: int,
        ts_ns: int,
        cat: str = "",
        args: Optional[Dict] = None,
    ) -> None:
        """Record a flow-step ('t') event: an intermediate hop of the arrow
        chain started by :meth:`flow_start`."""
        if not self.enabled:
            return
        self._record(("t", name, cat, ts_ns, 0, os.getpid(), args, int(flow_id)))

    def flow_end(
        self,
        name: str,
        flow_id: int,
        ts_ns: int,
        cat: str = "",
        args: Optional[Dict] = None,
    ) -> None:
        """Record a flow-end ('f') event terminating the arrow chain (exported
        with binding point ``"e"`` so it attaches to the enclosing slice)."""
        if not self.enabled:
            return
        self._record(("f", name, cat, ts_ns, 0, os.getpid(), args, int(flow_id)))

    def span(self, name: str, cat: str = "", args: Optional[Dict] = None):
        """Context manager timing its body into one complete event."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, cat, args)

    # -- inspection / export -------------------------------------------------
    @property
    def recorded(self) -> int:
        """Total events ever recorded (including since-overwritten ones)."""
        return self._next

    @property
    def dropped(self) -> int:
        """Events overwritten by ring wraparound."""
        return self._dropped

    def events(self) -> List[tuple]:
        """Retained events, oldest first (wraparound-aware)."""
        if self._next <= self.capacity:
            return [e for e in self._ring[: self._next]]
        head = self._next % self.capacity
        return self._ring[head:] + self._ring[:head]

    def to_chrome(self) -> Dict[str, object]:
        """The Chrome trace-event JSON document (``traceEvents`` array of
        phase-``X``/``i``/flow records, timestamps in microseconds)."""
        trace_events = [chrome_event(event) for event in self.events()]
        return {"traceEvents": trace_events, "displayTimeUnit": "ms"}

    def export(self, path) -> None:
        """Write :meth:`to_chrome` as JSON to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_chrome(), handle)
            handle.write("\n")


def chrome_event(event: tuple) -> Dict[str, object]:
    """Convert one ring record to its Chrome trace-event JSON dict.

    Shared by :meth:`SpanTracer.to_chrome` and the cross-process merge in
    :mod:`repro.obs.collect` so both render identically.
    """
    ph, name, cat, start_ns, duration_ns, pid, args, flow_id = event
    record: Dict[str, object] = {
        "name": name,
        "cat": cat or "default",
        "ph": ph,
        "ts": start_ns / 1000.0,
        "pid": pid,
        "tid": pid,
    }
    if ph == "X":
        record["dur"] = duration_ns / 1000.0
    if flow_id is not None:
        record["id"] = int(flow_id)
    if ph == "f":
        # Bind the flow terminus to the enclosing slice rather than the next
        # slice to begin -- matches how the arrows should read in Perfetto.
        record["bp"] = "e"
    if args:
        record["args"] = dict(args)
    return record


_TRACER = SpanTracer(enabled=os.environ.get(TRACE_ENV, "") == "1")


def get_tracer() -> SpanTracer:
    """The process-global tracer."""
    return _TRACER


def tracing_enabled() -> bool:
    return _TRACER.enabled


def enable_tracing() -> None:
    _TRACER.enable()
    os.environ[TRACE_ENV] = "1"


def disable_tracing() -> None:
    _TRACER.disable()
    os.environ.pop(TRACE_ENV, None)


def span(name: str, cat: str = "", args: Optional[Dict] = None):
    """Module-level convenience: a span on the global tracer (no-op singleton
    while tracing is disabled -- safe to leave in hot-ish paths)."""
    return _TRACER.span(name, cat=cat, args=args)


def trace_spool_dir() -> Optional[str]:
    """Directory worker processes should drain their span rings into, or
    ``None`` when cross-process collection is off."""
    value = os.environ.get(TRACE_DIR_ENV, "")
    return value or None


def set_trace_spool_dir(path) -> None:
    """Point workers at a sidecar spool directory (``None`` clears it).

    Stored in the environment so ``fork`` and ``spawn`` children both inherit
    it; call before constructing a lane pool.
    """
    if path is None:
        os.environ.pop(TRACE_DIR_ENV, None)
    else:
        os.environ[TRACE_DIR_ENV] = str(path)
