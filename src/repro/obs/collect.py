"""Cross-process span collection: worker sidecars, merged Chrome traces.

:class:`~repro.obs.trace.SpanTracer` rings are strictly per-process --
lane-pool workers record spans into their own rings, invisible to the
parent.  This module moves those rings across the process boundary:

* **Sidecar export** -- a worker drains its ring into one JSON *sidecar*
  file at shutdown (:func:`write_sidecar`).  The spool directory travels
  through the ``REPRO_OBS_TRACE_DIR`` environment variable (see
  :func:`repro.obs.trace.set_trace_spool_dir`), so both ``fork`` and
  ``spawn`` children find it without any ring-protocol change.  Writes go
  through a temp file + ``os.replace`` so a collector never reads a torn
  sidecar.

* **Deterministic merge** -- :func:`merge_chrome_trace` folds the parent
  ring plus every sidecar into one Chrome trace-event document.  Each
  process keeps its own pid/tid lane; ``M``-phase metadata events name the
  lanes from the sidecar labels.  Event order is a pure function of the
  event *set* (sorted by timestamp, then lane, then phase/name/args), never
  of file enumeration order or of how events were chunked across sidecars,
  so merged bytes are reproducible across worker counts and re-reads.

* **Overflow accounting** -- rings are bounded, so a long run can overwrite
  its oldest spans.  The merge summary reports per-source ``dropped``
  counts and the list of overflowed sources; callers surface the warning
  (``profile_rollout.py`` prints it) instead of silently exporting a trace
  with a hole in it.

Respawn awareness: a worker that replaced a killed one exports under a
generation-tagged label (``worker-3.r1``) and its replayed catch-up rounds
carry ``args={"replay": true}`` on their spans, so recovery work is
distinguishable from first-run work in the merged timeline.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.trace import SpanTracer, chrome_event, get_tracer, trace_spool_dir

__all__ = [
    "write_sidecar",
    "read_sidecar",
    "sidecar_path",
    "sidecar_paths",
    "collect_sources",
    "merge_chrome_trace",
    "export_chrome_trace",
]

_SIDECAR_VERSION = 1
_SIDECAR_SUFFIX = ".spans.json"


def write_sidecar(path, tracer: Optional[SpanTracer] = None, label: Optional[str] = None) -> Path:
    """Drain ``tracer``'s ring (default: the process-global tracer) into a
    sidecar JSON file at ``path``; returns the path written."""
    tracer = get_tracer() if tracer is None else tracer
    doc = {
        "version": _SIDECAR_VERSION,
        "pid": os.getpid(),
        "label": label or f"pid-{os.getpid()}",
        "recorded": tracer.recorded,
        "dropped": tracer.dropped,
        "events": [list(event) for event in tracer.events()],
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(doc), encoding="utf-8")
    os.replace(tmp, path)
    return path


def read_sidecar(path) -> Dict[str, object]:
    """Load one sidecar file back into a source dict (events as tuples)."""
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    version = doc.get("version")
    if version != _SIDECAR_VERSION:
        raise ValueError(f"unsupported sidecar version {version!r} in {path}")
    return {
        "pid": int(doc["pid"]),
        "label": str(doc["label"]),
        "recorded": int(doc.get("recorded", len(doc["events"]))),
        "dropped": int(doc.get("dropped", 0)),
        "events": [tuple(event) for event in doc["events"]],
    }


def sidecar_paths(spool_dir) -> List[Path]:
    """Sidecar files under ``spool_dir`` (sorted; empty when missing)."""
    root = Path(spool_dir)
    if not root.is_dir():
        return []
    return sorted(root.glob(f"*{_SIDECAR_SUFFIX}"))


def sidecar_path(spool_dir, label: str) -> Path:
    """Canonical sidecar filename for ``label`` (pid-suffixed so a respawned
    worker never clobbers its predecessor's file)."""
    safe = "".join(ch if (ch.isalnum() or ch in "-._") else "-" for ch in label)
    return Path(spool_dir) / f"{safe}-p{os.getpid()}{_SIDECAR_SUFFIX}"


def _source_from_tracer(tracer: SpanTracer, label: str) -> Dict[str, object]:
    return {
        "pid": os.getpid(),
        "label": label,
        "recorded": tracer.recorded,
        "dropped": tracer.dropped,
        "events": list(tracer.events()),
    }


def _sort_key(record: Dict[str, object]) -> tuple:
    args = record.get("args")
    return (
        record["ts"],
        record["pid"],
        record["tid"],
        record["ph"],
        record["name"],
        json.dumps(args, sort_keys=True) if args else "",
    )


def merge_chrome_trace(
    sources: Sequence[Dict[str, object]],
) -> Tuple[Dict[str, object], Dict[str, object]]:
    """Merge source dicts (``pid``/``label``/``events``/``dropped``) into one
    Chrome trace document plus a collection summary.

    Returns ``(doc, summary)``.  ``doc`` is ``{"traceEvents": [...],
    "displayTimeUnit": "ms"}`` with ``M``-phase ``process_name`` metadata
    first (one per pid, labels deduplicated and joined when several sources
    share a pid) followed by all span/flow events in deterministic order.
    ``summary`` carries per-source ring accounting and the ``overflowed``
    label list.
    """
    lane_labels: Dict[int, set] = {}
    span_events: List[Dict[str, object]] = []
    for source in sources:
        pid = int(source["pid"])
        lane_labels.setdefault(pid, set()).add(str(source["label"]))
        for event in source["events"]:
            span_events.append(chrome_event(tuple(event)))
    span_events.sort(key=_sort_key)

    trace_events: List[Dict[str, object]] = []
    for pid in sorted(lane_labels):
        name = "+".join(sorted(lane_labels[pid]))
        trace_events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": pid,
                "args": {"name": name},
            }
        )
    trace_events.extend(span_events)

    doc = {"traceEvents": trace_events, "displayTimeUnit": "ms"}
    source_rows = sorted(
        (
            {
                "label": str(source["label"]),
                "pid": int(source["pid"]),
                "recorded": int(source["recorded"]),
                "dropped": int(source["dropped"]),
            }
            for source in sources
        ),
        key=lambda row: (row["label"], row["pid"]),
    )
    summary = {
        "sources": source_rows,
        "events": len(span_events),
        "overflowed": [row["label"] for row in source_rows if row["dropped"] > 0],
    }
    return doc, summary


def collect_sources(
    spool_dir=None,
    parent: Optional[SpanTracer] = None,
    parent_label: str = "parent",
) -> List[Dict[str, object]]:
    """The parent tracer (default: global) plus every sidecar in
    ``spool_dir`` (default: the ``REPRO_OBS_TRACE_DIR`` spool), as merge
    sources."""
    parent = get_tracer() if parent is None else parent
    sources = [_source_from_tracer(parent, parent_label)]
    spool_dir = trace_spool_dir() if spool_dir is None else spool_dir
    if spool_dir is not None:
        for path in sidecar_paths(spool_dir):
            sources.append(read_sidecar(path))
    return sources


def export_chrome_trace(
    path,
    spool_dir=None,
    parent: Optional[SpanTracer] = None,
    parent_label: str = "parent",
) -> Dict[str, object]:
    """Merge parent ring + spooled sidecars and write the Chrome trace to
    ``path`` with deterministic bytes; returns the collection summary."""
    doc, summary = merge_chrome_trace(
        collect_sources(spool_dir=spool_dir, parent=parent, parent_label=parent_label)
    )
    payload = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(payload)
        handle.write("\n")
    return summary
