"""Runtime estimators.

Backfilling needs an estimate of every job's runtime for two purposes: to
compute the reservation time of the blocked high-priority job and to check
whether a candidate would finish before that reservation.  The paper's
Figure 1 experiment compares EASY backfilling under several estimators:

* :class:`UserEstimate` -- the user-submitted Request Time (wall time), the
  default in production schedulers and typically a large over-estimate.
* :class:`ActualRuntime` -- the recorded runtime, i.e. a perfect prediction
  ("EASY-AR" in the tables).
* :class:`NoisyPrediction` -- the actual runtime inflated by a random
  relative error up to ``level`` (+5%, +10%, ... +100% in Figure 1), modelling
  imperfect machine-learning predictors.

Estimators only influence scheduling decisions; simulated job completion
always uses the true runtime.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Union

from repro.utils.rng import SeedLike, as_rng
from repro.workloads.job import Job

__all__ = [
    "RuntimeEstimator",
    "UserEstimate",
    "ActualRuntime",
    "NoisyPrediction",
    "ClampedPrediction",
    "get_estimator",
]


class RuntimeEstimator(ABC):
    """Maps a job to the runtime the scheduler believes it will need."""

    name: str = "estimator"

    #: True when :meth:`estimate` is a pure function of the job -- no hidden
    #: state, no rng draws, so the answer does not depend on *when* or in
    #: what order jobs are queried.  The machine model exploits this to keep
    #: an incrementally-sorted release plan instead of re-querying and
    #: re-sorting at every backfilling decision.  Stateful estimators (e.g.
    #: :class:`NoisyPrediction`, which lazily draws one noise factor per job)
    #: must leave this False so query order stays exactly as the unoptimized
    #: code would produce it.
    stateless: bool = False

    @abstractmethod
    def estimate(self, job: Job) -> float:
        """Estimated runtime of ``job`` in seconds (always positive)."""

    def __call__(self, job: Job) -> float:
        return self.estimate(job)

    def reset(self) -> None:
        """Clear any per-simulation cached state (noop by default)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class UserEstimate(RuntimeEstimator):
    """Use the user-submitted Request Time (the EASY baseline)."""

    name = "request-time"
    stateless = True

    def estimate(self, job: Job) -> float:
        return job.requested_time


class ActualRuntime(RuntimeEstimator):
    """Use the true runtime: the ideal predictor (EASY-AR baseline)."""

    name = "actual-runtime"
    stateless = True

    def estimate(self, job: Job) -> float:
        return job.runtime


class NoisyPrediction(RuntimeEstimator):
    """Actual runtime inflated by a random relative error in ``[0, level]``.

    The error for a given job is sampled once and cached so every query made
    during a simulation sees a consistent prediction, mimicking a deployed
    predictive model.  ``level=0.2`` corresponds to the paper's "+20%" case.
    """

    def __init__(self, level: float, seed: SeedLike = None, cap_at_request: bool = False):
        if level < 0:
            raise ValueError(f"noise level must be non-negative, got {level}")
        self.level = float(level)
        self.cap_at_request = cap_at_request
        self._seed = seed
        self._rng = as_rng(seed)
        self._cache: Dict[int, float] = {}
        self.name = f"noisy+{int(round(level * 100))}%"

    def estimate(self, job: Job) -> float:
        cached = self._cache.get(job.job_id)
        if cached is None:
            factor = 1.0 + self._rng.uniform(0.0, self.level)
            cached = job.runtime * factor
            if self.cap_at_request:
                cached = min(cached, job.requested_time)
            self._cache[job.job_id] = cached
        return cached

    def reset(self) -> None:
        self._cache.clear()
        self._rng = as_rng(self._seed)

    def __repr__(self) -> str:
        return f"NoisyPrediction(level={self.level}, cap_at_request={self.cap_at_request})"


class ClampedPrediction(RuntimeEstimator):
    """Wrap another estimator, clamping its output to ``[minimum, job.requested_time]``.

    Production schedulers never believe a prediction above the wall-time
    request (the job would be killed at that point anyway); this wrapper lets
    any estimator be used under that constraint.
    """

    def __init__(self, inner: RuntimeEstimator, minimum: float = 1.0):
        self.inner = inner
        self.minimum = float(minimum)
        self.name = f"clamped({inner.name})"
        self.stateless = getattr(inner, "stateless", False)

    def estimate(self, job: Job) -> float:
        return float(min(max(self.inner.estimate(job), self.minimum), job.requested_time))

    def reset(self) -> None:
        self.inner.reset()


def get_estimator(spec: Union[str, float, RuntimeEstimator], seed: SeedLike = None) -> RuntimeEstimator:
    """Resolve an estimator from a name, a noise level, or an instance.

    ``"request"``/``"user"`` -> :class:`UserEstimate`;
    ``"actual"``/``"ar"``/``0`` -> :class:`ActualRuntime`;
    a positive float ``x`` -> ``NoisyPrediction(level=x)``.
    """
    if isinstance(spec, RuntimeEstimator):
        return spec
    if isinstance(spec, (int, float)) and not isinstance(spec, bool):
        level = float(spec)
        return ActualRuntime() if level == 0.0 else NoisyPrediction(level, seed=seed)
    key = str(spec).strip().lower()
    if key in {"request", "request-time", "user", "walltime", "easy"}:
        return UserEstimate()
    if key in {"actual", "actual-runtime", "ar", "perfect", "easy-ar"}:
        return ActualRuntime()
    raise KeyError(f"unknown estimator spec {spec!r}")
