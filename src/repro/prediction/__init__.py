"""Job runtime estimators used for reservations and backfilling decisions."""

from repro.prediction.predictors import (
    RuntimeEstimator,
    UserEstimate,
    ActualRuntime,
    NoisyPrediction,
    ClampedPrediction,
    get_estimator,
)

__all__ = [
    "RuntimeEstimator",
    "UserEstimate",
    "ActualRuntime",
    "NoisyPrediction",
    "ClampedPrediction",
    "get_estimator",
]
