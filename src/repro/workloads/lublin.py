"""Lublin-Feitelson (2003) synthetic workload model.

The paper's Lublin-1 / Lublin-2 traces are generated from the rigid-job model
of Lublin & Feitelson, "The workload on parallel supercomputers: modeling the
characteristics of rigid jobs" (JPDC 2003).  The model has three components:

* **Job size** -- a two-stage log-uniform distribution over ``log2`` of the
  number of processors, with extra probability mass on powers of two and a
  separate probability of serial (single-processor) jobs.
* **Job runtime** -- a hyper-gamma distribution: a mixture of two gamma
  distributions whose mixing probability depends linearly on the job size, so
  larger jobs tend to run longer.
* **Inter-arrival time** -- gamma-distributed inter-arrivals modulated by a
  daily cycle so that most jobs arrive during "rush hours".

The implementation keeps the structure of the original ``lublin99.c``
generator while exposing every parameter through :class:`LublinParams`.
Because the paper reports only aggregate characteristics for its two Lublin
configurations (Table 2: mean inter-arrival, mean runtime, mean processors on
a 256-node machine), the generator additionally supports calibration of the
output to target means so the reproduced traces land on the same operating
points.  Lublin traces carry **no user runtime estimates** (requested time is
set equal to the actual runtime), matching the paper's "AR only" note.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from repro.utils.rng import SeedLike, as_rng
from repro.workloads.job import Job, Trace

__all__ = ["LublinParams", "lublin_trace", "LUBLIN_1", "LUBLIN_2"]


@dataclass(frozen=True, slots=True)
class LublinParams:
    """Parameters of the Lublin-Feitelson rigid-job model.

    Defaults follow the published model; the two trace presets
    :data:`LUBLIN_1` and :data:`LUBLIN_2` adjust them to produce the two
    distinct workload characters used in the paper (Lublin-2 has smaller,
    wider jobs arriving faster than Lublin-1).
    """

    num_processors: int = 256

    # --- job size (log2-uniform two-stage model) ---
    serial_prob: float = 0.244          # probability of a single-processor job
    pow2_prob: float = 0.576            # probability that a parallel job size is a power of two
    ulow: float = 0.8                   # lower bound of log2(size) for parallel jobs
    umed: float = 4.5                   # breakpoint of the two-stage uniform
    uhi_margin: float = 1.0             # uhi = log2(num_processors) - uhi_margin
    uprob: float = 0.86                 # probability of drawing from [ulow, umed]

    # --- runtime (hyper-gamma mixture, seconds) ---
    runtime_a1: float = 4.2             # shape of the "short jobs" gamma
    runtime_b1: float = 0.94            # scale exponent of the short gamma (runtime = 2**x)
    runtime_a2: float = 312.0           # shape of the "long jobs" gamma
    runtime_b2: float = 0.03            # scale of the long gamma
    runtime_pa: float = -0.0054         # slope of mixing probability vs. job size
    runtime_pb: float = 0.78            # intercept of mixing probability
    max_runtime: float = 60.0 * 60.0 * 36.0  # cap at 36 hours as in the original model

    # --- inter-arrival (gamma in log2 space with daily cycle) ---
    arrival_alpha: float = 10.23        # shape of the inter-arrival gamma (log2 seconds)
    arrival_beta: float = 0.4871        # scale of the inter-arrival gamma
    daily_cycle_strength: float = 0.6   # 0 disables the cycle, 1 is a full-depth cycle
    peak_hour: float = 11.0             # local hour of peak submission rate

    # --- calibration targets (None keeps the raw model output) ---
    target_mean_interarrival: float | None = None
    target_mean_runtime: float | None = None
    target_mean_processors: float | None = None

    def __post_init__(self) -> None:
        if self.num_processors < 2:
            raise ValueError("num_processors must be at least 2")
        if not 0.0 <= self.serial_prob <= 1.0:
            raise ValueError("serial_prob must be in [0, 1]")
        if not 0.0 <= self.pow2_prob <= 1.0:
            raise ValueError("pow2_prob must be in [0, 1]")
        if not 0.0 <= self.uprob <= 1.0:
            raise ValueError("uprob must be in [0, 1]")
        if self.ulow >= self.umed:
            raise ValueError("ulow must be smaller than umed")

    @property
    def uhi(self) -> float:
        """Upper bound of ``log2(size)`` for parallel jobs."""
        return max(self.umed + 0.1, math.log2(self.num_processors) - self.uhi_margin)

    def with_targets(
        self,
        mean_interarrival: float | None = None,
        mean_runtime: float | None = None,
        mean_processors: float | None = None,
    ) -> "LublinParams":
        """Return a copy with calibration targets set."""
        return replace(
            self,
            target_mean_interarrival=mean_interarrival,
            target_mean_runtime=mean_runtime,
            target_mean_processors=mean_processors,
        )


#: Preset matching the paper's Lublin-1 row of Table 2 (256 procs, ~771 s
#: mean inter-arrival, ~4862 s mean runtime, ~22 mean processors).
LUBLIN_1 = LublinParams(
    num_processors=256,
    target_mean_interarrival=771.0,
    target_mean_runtime=4862.0,
    target_mean_processors=22.0,
)

#: Preset matching the paper's Lublin-2 row of Table 2 (256 procs, ~460 s
#: mean inter-arrival, ~1695 s mean runtime, ~39 mean processors).  Relative
#: to Lublin-1 it favours wider and much shorter jobs arriving faster.
LUBLIN_2 = LublinParams(
    num_processors=256,
    uprob=0.70,
    runtime_pb=0.90,
    target_mean_interarrival=460.0,
    target_mean_runtime=1695.0,
    target_mean_processors=39.0,
)


def _sample_sizes(params: LublinParams, n: int, rng: np.random.Generator) -> np.ndarray:
    """Sample job sizes (processor counts) from the two-stage log-uniform model."""
    sizes = np.empty(n, dtype=np.int64)
    serial = rng.random(n) < params.serial_prob
    sizes[serial] = 1
    n_parallel = int(np.count_nonzero(~serial))
    if n_parallel:
        use_low = rng.random(n_parallel) < params.uprob
        log_sizes = np.where(
            use_low,
            rng.uniform(params.ulow, params.umed, size=n_parallel),
            rng.uniform(params.umed, params.uhi, size=n_parallel),
        )
        raw = np.exp2(log_sizes)
        # Round to a power of two with probability pow2_prob, else to nearest int.
        as_pow2 = rng.random(n_parallel) < params.pow2_prob
        rounded = np.where(as_pow2, np.exp2(np.rint(log_sizes)), np.rint(raw))
        parallel_sizes = np.clip(rounded, 2, params.num_processors).astype(np.int64)
        sizes[~serial] = parallel_sizes
    return sizes


def _sample_runtimes(
    params: LublinParams, sizes: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Sample runtimes from the size-dependent hyper-gamma mixture."""
    n = sizes.shape[0]
    # Mixing probability of the "short" component depends linearly on size
    # (larger jobs are more likely to be long), clipped to a valid range.
    p_short = np.clip(params.runtime_pa * sizes + params.runtime_pb, 0.05, 0.95)
    short = rng.random(n) < p_short
    # Component 1: log2(runtime) ~ Gamma(a1, b1)  -> short/medium jobs.
    log_rt = rng.gamma(shape=params.runtime_a1, scale=params.runtime_b1, size=n)
    runtimes = np.exp2(log_rt)
    # Component 2: runtime ~ Gamma(a2, b2) scaled into seconds -> long jobs.
    long_rt = rng.gamma(shape=params.runtime_a2, scale=params.runtime_b2, size=n)
    runtimes = np.where(short, runtimes, np.exp2(long_rt))
    return np.clip(runtimes, 1.0, params.max_runtime)


def _sample_interarrivals(params: LublinParams, n: int, rng: np.random.Generator) -> np.ndarray:
    """Sample inter-arrival gaps (seconds) with a sinusoidal daily cycle."""
    log_gaps = rng.gamma(shape=params.arrival_alpha, scale=params.arrival_beta, size=n)
    gaps = np.exp2(log_gaps - params.arrival_alpha * params.arrival_beta + 6.0)
    if params.daily_cycle_strength <= 0.0:
        return gaps
    # Modulate gaps by time of day: submissions cluster around ``peak_hour``.
    arrival = np.cumsum(gaps)
    hours = (arrival / 3600.0) % 24.0
    phase = 2.0 * np.pi * (hours - params.peak_hour) / 24.0
    # Rate is highest at the peak hour -> gaps shortest there.
    modulation = 1.0 + params.daily_cycle_strength * np.cos(phase)
    modulation = np.clip(modulation, 0.2, None)
    return gaps / modulation


def _calibrate(values: np.ndarray, target_mean: float | None, minimum: float) -> np.ndarray:
    """Rescale ``values`` so their mean matches ``target_mean`` (if given)."""
    if target_mean is None:
        return values
    current = float(values.mean())
    if current <= 0.0:
        raise ValueError("cannot calibrate values with a non-positive mean")
    return np.maximum(values * (target_mean / current), minimum)


def lublin_trace(
    num_jobs: int,
    params: LublinParams | None = None,
    seed: SeedLike = None,
    name: str = "lublin",
) -> Trace:
    """Generate a synthetic rigid-job trace from the Lublin-Feitelson model.

    Parameters
    ----------
    num_jobs:
        Number of jobs to generate.
    params:
        Model parameters; defaults to :data:`LUBLIN_1`.
    seed:
        Seed or generator controlling the trace content.
    name:
        Trace name recorded on the returned :class:`Trace`.
    """
    if num_jobs <= 0:
        raise ValueError(f"num_jobs must be positive, got {num_jobs}")
    params = params or LUBLIN_1
    rng = as_rng(seed)

    sizes = _sample_sizes(params, num_jobs, rng)
    runtimes = _sample_runtimes(params, sizes, rng)
    gaps = _sample_interarrivals(params, num_jobs, rng)

    runtimes = _calibrate(runtimes, params.target_mean_runtime, minimum=1.0)
    runtimes = np.minimum(runtimes, params.max_runtime * 4)
    gaps = _calibrate(gaps, params.target_mean_interarrival, minimum=0.0)
    if params.target_mean_processors is not None:
        # Processor counts are integers bounded by the machine size, so
        # calibrate multiplicatively and re-round rather than rescale exactly.
        scale = params.target_mean_processors / max(float(sizes.mean()), 1e-9)
        sizes = np.clip(np.rint(sizes * scale), 1, params.num_processors).astype(np.int64)

    submit = np.cumsum(gaps)
    submit -= submit[0]  # first job arrives at t=0

    jobs = [
        Job(
            job_id=i + 1,
            submit_time=float(submit[i]),
            runtime=float(runtimes[i]),
            requested_processors=int(sizes[i]),
            # Lublin traces have no user estimates: requested time == runtime.
            requested_time=float(runtimes[i]),
        )
        for i in range(num_jobs)
    ]
    return Trace.from_jobs(name=name, num_processors=params.num_processors, jobs=jobs)
