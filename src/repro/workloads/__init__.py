"""Workload models: SWF jobs/traces, synthetic generators, sampling, statistics."""

from repro.workloads.job import Job, Trace
from repro.workloads.swf import read_swf, write_swf, parse_swf_lines
from repro.workloads.lublin import LublinParams, lublin_trace
from repro.workloads.synthetic import SyntheticTraceSpec, synthetic_trace, SDSC_SP2_SPEC, HPC2N_SPEC
from repro.workloads.sampling import sample_sequence, sample_sequences, rebase_sequence
from repro.workloads.stats import TraceStatistics, trace_statistics
from repro.workloads.archive import load_trace, available_traces, register_trace

__all__ = [
    "Job",
    "Trace",
    "read_swf",
    "write_swf",
    "parse_swf_lines",
    "LublinParams",
    "lublin_trace",
    "SyntheticTraceSpec",
    "synthetic_trace",
    "SDSC_SP2_SPEC",
    "HPC2N_SPEC",
    "sample_sequence",
    "sample_sequences",
    "rebase_sequence",
    "TraceStatistics",
    "trace_statistics",
    "load_trace",
    "available_traces",
    "register_trace",
]
