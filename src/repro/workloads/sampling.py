"""Sampling job sequences from traces.

Training uses randomly positioned 256-job sequences; evaluation uses 1024-job
sequences sampled with different seeds (paper §4.1.1/§4.3).  A sampled
sequence is rebased so its first submission happens at time zero, which keeps
priority functions that look at absolute submit times (F1) numerically sane
and makes bounded-slowdown numbers comparable across samples.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.utils.rng import SeedLike, as_rng
from repro.workloads.job import Job, Trace

__all__ = ["rebase_sequence", "sample_sequence", "sample_sequences"]


def rebase_sequence(jobs: Sequence[Job], epoch: float = 0.0) -> List[Job]:
    """Shift ``jobs`` so the earliest submission lands at ``epoch`` seconds."""
    if not jobs:
        return []
    origin = min(job.submit_time for job in jobs)
    delta = epoch - origin
    return [job.shifted(delta) for job in jobs]


def sample_sequence(
    trace: Trace,
    length: int,
    seed: SeedLike = None,
    start: int | None = None,
    rebase: bool = True,
) -> List[Job]:
    """Sample ``length`` consecutive jobs from ``trace``.

    Parameters
    ----------
    trace:
        Source trace.
    length:
        Number of consecutive jobs; if the trace is shorter than ``length``
        the whole trace is returned.
    seed:
        Seed or generator used to pick the starting index when ``start`` is
        not given.
    start:
        Explicit starting index (overrides random selection).
    rebase:
        Shift submission times so the sequence starts at t=0.
    """
    if length <= 0:
        raise ValueError(f"length must be positive, got {length}")
    n = len(trace)
    if n == 0:
        raise ValueError(f"trace {trace.name!r} is empty")
    length = min(length, n)
    if start is None:
        rng = as_rng(seed)
        start = int(rng.integers(0, n - length + 1))
    if start < 0 or start + length > n:
        raise IndexError(f"start={start}, length={length} out of range for trace of size {n}")
    jobs = trace.subsequence(start, length)
    return rebase_sequence(jobs) if rebase else jobs


def sample_sequences(
    trace: Trace,
    length: int,
    count: int,
    seed: SeedLike = None,
    rebase: bool = True,
) -> List[List[Job]]:
    """Sample ``count`` independent sequences of ``length`` jobs from ``trace``."""
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    rng = as_rng(seed)
    return [sample_sequence(trace, length, seed=rng, rebase=rebase) for _ in range(count)]
