"""Trace statistics matching the columns of the paper's Table 2.

``trace_statistics`` summarizes a trace with the cluster size, mean
inter-arrival time, mean requested runtime and mean requested processors,
plus a few extra distributional figures useful for sanity checking the
synthetic substitutes against the published numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, asdict
from typing import Mapping

import numpy as np

from repro.workloads.job import Trace

__all__ = ["TraceStatistics", "trace_statistics"]


@dataclass(frozen=True, slots=True)
class TraceStatistics:
    """Summary statistics for a job trace (paper Table 2 columns + extras)."""

    name: str
    num_jobs: int
    num_processors: int                 # "size" column
    mean_interarrival: float            # "it" column (seconds)
    mean_requested_time: float          # "rt" column (seconds)
    mean_requested_processors: float    # "nt" column
    mean_runtime: float                 # mean actual runtime (seconds)
    median_runtime: float
    p95_runtime: float
    mean_overestimation: float          # mean requested_time / runtime
    has_user_estimates: bool
    offered_load: float                 # sum(area) / (span * processors)

    def as_dict(self) -> Mapping[str, float]:
        return asdict(self)

    def table2_row(self) -> tuple:
        """Return the row exactly as Table 2 reports it: (name, size, it, rt, nt, runtime-kinds)."""
        runtime_kinds = "both" if self.has_user_estimates else "AR"
        return (
            self.name,
            self.num_processors,
            round(self.mean_interarrival),
            round(self.mean_requested_time),
            round(self.mean_requested_processors),
            runtime_kinds,
        )


def trace_statistics(trace: Trace) -> TraceStatistics:
    """Compute :class:`TraceStatistics` for ``trace``."""
    if len(trace) == 0:
        raise ValueError(f"trace {trace.name!r} is empty")
    submit = np.array([j.submit_time for j in trace], dtype=np.float64)
    runtimes = np.array([j.runtime for j in trace], dtype=np.float64)
    requested_time = np.array([j.requested_time for j in trace], dtype=np.float64)
    processors = np.array([j.requested_processors for j in trace], dtype=np.float64)

    gaps = np.diff(np.sort(submit))
    mean_gap = float(gaps.mean()) if gaps.size else 0.0
    span = float(submit.max() - submit.min())
    total_area = float((runtimes * processors).sum())
    # Offered load approximates utilization demand; guard the degenerate
    # single-instant trace.
    offered_load = total_area / (span * trace.num_processors) if span > 0 else float("inf")

    return TraceStatistics(
        name=trace.name,
        num_jobs=len(trace),
        num_processors=trace.num_processors,
        mean_interarrival=mean_gap,
        mean_requested_time=float(requested_time.mean()),
        mean_requested_processors=float(processors.mean()),
        mean_runtime=float(runtimes.mean()),
        median_runtime=float(np.median(runtimes)),
        p95_runtime=float(np.percentile(runtimes, 95)),
        mean_overestimation=float((requested_time / runtimes).mean()),
        has_user_estimates=trace.has_user_estimates,
        offered_load=offered_load,
    )
