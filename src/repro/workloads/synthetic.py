"""Calibrated synthetic equivalents of the archive traces used in the paper.

The evaluation uses two real traces from the Parallel Workloads Archive
(SDSC-SP2 1998 and HPC2N 2002).  Those files cannot be redistributed in this
offline environment, so this module generates synthetic traces whose headline
characteristics match the paper's Table 2:

=========  =====  ==========  ==========  ====
Trace      size   mean it(s)  mean rt(s)  mean nt
SDSC-SP2   128    1055        6687        11
HPC2N      240    538         17024       6
=========  =====  ==========  ==========  ====

The generators model the properties that matter to backfilling research:

* heavy-tailed (log-normal) actual runtimes,
* bursty arrivals (hyper-exponential inter-arrival gaps),
* small-skewed, power-of-two-leaning processor requests, and
* **user wall-time overestimation**: the requested time is the actual runtime
  inflated by a random factor and snapped to "round" wall-clock values, the
  behaviour documented for real users by Mu'alem & Feitelson (2001).

The substitution is recorded in DESIGN.md §4.  Real SWF files, when
available, can be loaded with :func:`repro.workloads.swf.read_swf` and used
everywhere a synthetic trace is used.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import SeedLike, as_rng
from repro.workloads.job import Job, Trace

__all__ = ["SyntheticTraceSpec", "synthetic_trace", "SDSC_SP2_SPEC", "HPC2N_SPEC"]

#: Common wall-time values (seconds) users request: 5/10/15/30 min, 1/2/4/8/12/18/24/36/48 h.
_ROUND_WALLTIMES = np.array(
    [300, 600, 900, 1800, 3600, 7200, 14400, 28800, 43200, 64800, 86400, 129600, 172800],
    dtype=np.float64,
)


@dataclass(frozen=True, slots=True)
class SyntheticTraceSpec:
    """Target characteristics for a calibrated synthetic trace."""

    name: str
    num_processors: int
    mean_interarrival: float        # seconds between consecutive submissions
    mean_runtime: float             # mean *requested* runtime, as reported in Table 2
    mean_processors: float          # mean requested processors
    runtime_sigma: float = 1.6      # log-normal sigma of actual runtimes (heavier tail = larger)
    burstiness: float = 0.7         # fraction of arrivals drawn from the "burst" component
    burst_scale: float = 0.15       # burst gaps are this fraction of the mean gap
    overestimate_low: float = 1.0   # lower bound of the multiplicative over-request factor
    overestimate_high: float = 6.0  # upper bound of the multiplicative over-request factor
    round_walltimes: bool = True    # snap requested time up to common wall-clock values
    max_fraction_of_machine: float = 1.0  # cap on job width relative to the machine
    #: Exponent coupling runtime to job width: wider jobs run longer, the
    #: correlation observed in archive traces (and what makes the offered
    #: load realistic despite modest per-dimension means).
    width_runtime_correlation: float = 0.8
    #: Target fraction of machine capacity demanded by the trace
    #: (sum of runtime x processors over the trace span).  Archive traces run
    #: their machines at 70-90% utilization; without this the backfilling
    #: problem degenerates (empty queues, bsld ~ 1).
    target_offered_load: float | None = 0.85
    #: Probability that a job repeats the previous job's shape (width and
    #: similar runtime): models user campaigns / parameter sweeps, which are
    #: what creates the deep bursty queues seen in archive traces.
    session_repeat_prob: float = 0.35

    def __post_init__(self) -> None:
        if self.num_processors <= 0:
            raise ValueError("num_processors must be positive")
        if min(self.mean_interarrival, self.mean_runtime, self.mean_processors) <= 0:
            raise ValueError("trace means must be positive")
        if not 0.0 <= self.burstiness < 1.0:
            raise ValueError("burstiness must be in [0, 1)")
        if self.overestimate_low < 1.0 or self.overestimate_high < self.overestimate_low:
            raise ValueError("over-request factors must satisfy 1 <= low <= high")


#: SDSC-SP2 (San Diego Supercomputer Center IBM SP2, 1998): 128 processors,
#: relatively slow arrivals, medium-length jobs, narrow requests.
SDSC_SP2_SPEC = SyntheticTraceSpec(
    name="SDSC-SP2",
    num_processors=128,
    mean_interarrival=1055.0,
    mean_runtime=6687.0,
    mean_processors=11.0,
    runtime_sigma=1.8,
    burstiness=0.65,
    target_offered_load=0.88,
)

#: HPC2N (Swedish HPC2N Linux cluster, 2002): 240 processors, faster arrivals,
#: long requested runtimes, mostly very narrow (serial-ish) jobs.
HPC2N_SPEC = SyntheticTraceSpec(
    name="HPC2N",
    num_processors=240,
    mean_interarrival=538.0,
    mean_runtime=17024.0,
    mean_processors=6.0,
    runtime_sigma=2.1,
    burstiness=0.75,
    overestimate_high=10.0,
    target_offered_load=0.82,
)


def _sample_processor_counts(
    spec: SyntheticTraceSpec, n: int, rng: np.random.Generator
) -> np.ndarray:
    """Sample processor requests: geometric-ish with a bias towards powers of two."""
    max_procs = max(1, int(spec.num_processors * spec.max_fraction_of_machine))
    # Log-normal over log2(size) truncated to the machine, calibrated below.
    mu = np.log(max(spec.mean_processors, 1.0)) - 0.5
    raw = rng.lognormal(mean=mu, sigma=1.0, size=n)
    sizes = np.clip(np.rint(raw), 1, max_procs)
    # Snap roughly half of the parallel jobs to the nearest power of two,
    # reproducing the strong power-of-two bias of archive traces.
    snap = rng.random(n) < 0.5
    pow2 = np.exp2(np.rint(np.log2(np.maximum(sizes, 1))))
    sizes = np.where(snap, np.clip(pow2, 1, max_procs), sizes)
    # Calibrate the mean by probabilistically demoting/promoting widths.
    scale = spec.mean_processors / max(float(sizes.mean()), 1e-9)
    sizes = np.clip(np.rint(sizes * scale), 1, max_procs)
    return sizes.astype(np.int64)


def _sample_runtimes(spec: SyntheticTraceSpec, n: int, rng: np.random.Generator) -> np.ndarray:
    """Sample heavy-tailed actual runtimes (seconds)."""
    sigma = spec.runtime_sigma
    # Choose mu so that the log-normal mean is roughly half the *requested*
    # mean runtime (users over-request); exact calibration happens on the
    # requested times below.
    target_actual_mean = spec.mean_runtime / 2.5
    mu = np.log(target_actual_mean) - 0.5 * sigma**2
    runtimes = rng.lognormal(mean=mu, sigma=sigma, size=n)
    return np.clip(runtimes, 30.0, 7.0 * 86400.0)


def _sample_interarrivals(spec: SyntheticTraceSpec, n: int, rng: np.random.Generator) -> np.ndarray:
    """Sample bursty inter-arrival gaps (hyper-exponential mixture)."""
    mean_gap = spec.mean_interarrival
    burst = rng.random(n) < spec.burstiness
    burst_mean = mean_gap * spec.burst_scale
    # Choose the quiet-component mean so the mixture hits the target mean.
    quiet_weight = max(1.0 - spec.burstiness, 1e-9)
    quiet_mean = (mean_gap - spec.burstiness * burst_mean) / quiet_weight
    gaps = np.where(
        burst,
        rng.exponential(scale=burst_mean, size=n),
        rng.exponential(scale=quiet_mean, size=n),
    )
    return gaps


def _requested_times(
    spec: SyntheticTraceSpec, runtimes: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Inflate actual runtimes into user wall-time requests and calibrate the mean."""
    factors = rng.uniform(spec.overestimate_low, spec.overestimate_high, size=runtimes.shape[0])
    requested = runtimes * factors
    if spec.round_walltimes:
        # Snap up to the next "round" wall-time bucket (users request 1h, 4h, ...).
        idx = np.searchsorted(_ROUND_WALLTIMES, requested, side="left")
        idx = np.clip(idx, 0, len(_ROUND_WALLTIMES) - 1)
        snapped = _ROUND_WALLTIMES[idx]
        requested = np.maximum(snapped, requested * 0.0 + snapped)
        requested = np.maximum(requested, runtimes)  # never below the actual runtime
    # Calibrate the mean requested runtime to the Table 2 target while keeping
    # the request >= actual runtime invariant.
    scale = spec.mean_runtime / max(float(requested.mean()), 1e-9)
    requested = np.maximum(requested * scale, runtimes)
    return requested


def synthetic_trace(
    spec: SyntheticTraceSpec,
    num_jobs: int,
    seed: SeedLike = None,
    name: str | None = None,
) -> Trace:
    """Generate a calibrated synthetic trace for ``spec`` with ``num_jobs`` jobs."""
    if num_jobs <= 0:
        raise ValueError(f"num_jobs must be positive, got {num_jobs}")
    rng = as_rng(seed)
    sizes = _sample_processor_counts(spec, num_jobs, rng)
    runtimes = _sample_runtimes(spec, num_jobs, rng)
    gaps = _sample_interarrivals(spec, num_jobs, rng)
    # Calibrate the arrival rate exactly.
    gaps *= spec.mean_interarrival / max(float(gaps.mean()), 1e-9)

    # User campaigns: consecutive jobs from the same submission burst often
    # share shape (same executable swept over parameters).
    if spec.session_repeat_prob > 0.0:
        repeat = rng.random(num_jobs) < spec.session_repeat_prob
        jitter = rng.lognormal(mean=0.0, sigma=0.2, size=num_jobs)
        for i in range(1, num_jobs):
            if repeat[i]:
                sizes[i] = sizes[i - 1]
                runtimes[i] = max(runtimes[i - 1] * jitter[i], 30.0)

    # Couple runtime to width (wider jobs run longer), then calibrate the
    # offered load so the machine is realistically contended.
    if spec.width_runtime_correlation > 0.0:
        runtimes = runtimes * (sizes / max(float(sizes.mean()), 1.0)) ** spec.width_runtime_correlation
    if spec.target_offered_load is not None:
        demand = float((runtimes * sizes).mean())
        capacity_per_job = spec.mean_interarrival * spec.num_processors
        runtimes = runtimes * (spec.target_offered_load * capacity_per_job / max(demand, 1e-9))
    runtimes = np.clip(runtimes, 30.0, 14.0 * 86400.0)

    requested = _requested_times(spec, runtimes, rng)
    submit = np.cumsum(gaps)
    submit -= submit[0]

    jobs = [
        Job(
            job_id=i + 1,
            submit_time=float(submit[i]),
            runtime=float(runtimes[i]),
            requested_processors=int(sizes[i]),
            requested_time=float(requested[i]),
            user_id=int(rng.integers(1, 200)),
        )
        for i in range(num_jobs)
    ]
    return Trace.from_jobs(
        name=name or spec.name, num_processors=spec.num_processors, jobs=jobs
    )
