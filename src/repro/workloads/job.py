"""Batch job model and trace container following the Standard Workload Format.

A :class:`Job` carries the attributes the paper's Table 1 lists (submit time,
requested nodes, requested time) plus the actual runtime recorded by the
archive after execution.  Jobs are immutable; all scheduling state (start
time, completion time, wait time) lives in the simulator so the same trace
object can be scheduled many times concurrently.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, List, Sequence

__all__ = ["Job", "Trace"]


@dataclass(frozen=True, slots=True)
class Job:
    """A single rigid batch job.

    Attributes
    ----------
    job_id:
        Identifier unique within the trace (SWF field 1).
    submit_time:
        Submission time in seconds from the start of the trace (SWF field 2).
    runtime:
        Actual runtime in seconds observed after the job ran (SWF field 4).
        This is the ground truth the EASY-AR baseline and the noisy runtime
        predictors draw from.
    requested_processors:
        Number of processors requested; the job occupies exactly this many
        nodes for ``runtime`` seconds once started (rigid job model).
    requested_time:
        User-provided wall-time estimate (SWF field 9).  Always an upper
        bound used by EASY backfilling; ``-1`` in the archive means missing
        and is normalized to ``runtime`` at construction time by the parsers.
    user_id, group_id, executable, queue, partition, status:
        Optional SWF metadata kept for completeness; ``partition`` binds the
        job to a node group on heterogeneous clusters (see docs/cluster.md),
        the rest is unused by the scheduler.
    used_memory, requested_memory:
        Per-processor memory in the trace's unit (SWF fields 7 and 10, KB in
        the archives); ``-1`` is the archive's "missing" sentinel.  The
        allocator layer turns these into a per-job memory requirement
        (:func:`repro.cluster.allocator.job_request`).
    requested_gpus:
        GPUs the job occupies while running.  SWF has no GPU field; scenario
        transforms assign this (default 0 -- no GPU demand, the homogeneous
        case).
    """

    job_id: int
    submit_time: float
    runtime: float
    requested_processors: int
    requested_time: float
    user_id: int = -1
    group_id: int = -1
    executable: int = -1
    queue: int = -1
    partition: int = -1
    status: int = 1
    used_memory: int = -1
    requested_memory: int = -1
    requested_gpus: int = 0

    def __post_init__(self) -> None:
        if self.requested_processors <= 0:
            raise ValueError(
                f"job {self.job_id}: requested_processors must be positive, "
                f"got {self.requested_processors}"
            )
        if self.runtime <= 0:
            raise ValueError(f"job {self.job_id}: runtime must be positive, got {self.runtime}")
        if self.requested_time <= 0:
            raise ValueError(
                f"job {self.job_id}: requested_time must be positive, got {self.requested_time}"
            )
        if self.submit_time < 0:
            raise ValueError(
                f"job {self.job_id}: submit_time must be non-negative, got {self.submit_time}"
            )
        if self.used_memory < -1 or self.requested_memory < -1:
            raise ValueError(
                f"job {self.job_id}: memory fields must be >= -1 (-1 = missing), "
                f"got used={self.used_memory}, requested={self.requested_memory}"
            )
        if self.requested_gpus < 0:
            raise ValueError(
                f"job {self.job_id}: requested_gpus must be non-negative, "
                f"got {self.requested_gpus}"
            )

    @property
    def area(self) -> float:
        """Processor-seconds actually consumed (runtime x processors)."""
        return self.runtime * self.requested_processors

    @property
    def requested_area(self) -> float:
        """Processor-seconds reserved according to the user estimate."""
        return self.requested_time * self.requested_processors

    @property
    def overestimation_factor(self) -> float:
        """Ratio of the user wall-time estimate to the actual runtime (>= 0)."""
        return self.requested_time / self.runtime

    def shifted(self, delta: float) -> "Job":
        """Return a copy whose submit time is shifted by ``delta`` seconds."""
        return replace(self, submit_time=self.submit_time + delta)

    def with_requested_time(self, requested_time: float) -> "Job":
        """Return a copy with a different wall-time estimate."""
        return replace(self, requested_time=requested_time)


@dataclass(frozen=True, slots=True)
class Trace:
    """An ordered collection of jobs plus the cluster size they ran on.

    Jobs are stored sorted by submit time (ties broken by job id) so trace
    slicing and sequence sampling are well defined.
    """

    name: str
    num_processors: int
    jobs: tuple[Job, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.num_processors <= 0:
            raise ValueError(f"trace {self.name}: num_processors must be positive")
        ordered = tuple(sorted(self.jobs, key=lambda j: (j.submit_time, j.job_id)))
        object.__setattr__(self, "jobs", ordered)
        for job in ordered:
            if job.requested_processors > self.num_processors:
                raise ValueError(
                    f"trace {self.name}: job {job.job_id} requests "
                    f"{job.requested_processors} processors but the cluster has "
                    f"{self.num_processors}"
                )

    @classmethod
    def from_jobs(cls, name: str, num_processors: int, jobs: Iterable[Job]) -> "Trace":
        return cls(name=name, num_processors=num_processors, jobs=tuple(jobs))

    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self) -> Iterator[Job]:
        return iter(self.jobs)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return Trace(name=self.name, num_processors=self.num_processors, jobs=self.jobs[index])
        return self.jobs[index]

    def head(self, n: int) -> "Trace":
        """Return the first ``n`` jobs (the paper uses the first 10K jobs)."""
        return self[: max(0, n)]

    def subsequence(self, start: int, length: int) -> List[Job]:
        """Return ``length`` consecutive jobs starting at index ``start``."""
        if start < 0 or length < 0:
            raise ValueError("start and length must be non-negative")
        if start + length > len(self.jobs):
            raise IndexError(
                f"subsequence [{start}, {start + length}) out of range for trace of "
                f"length {len(self.jobs)}"
            )
        return list(self.jobs[start : start + length])

    @property
    def duration(self) -> float:
        """Span between the first and last submission, in seconds."""
        if not self.jobs:
            return 0.0
        return self.jobs[-1].submit_time - self.jobs[0].submit_time

    @property
    def has_user_estimates(self) -> bool:
        """Whether the trace carries user wall-time estimates distinct from runtimes.

        Synthetic Lublin traces only carry actual runtimes (the paper omits
        their EASY columns); this flag drives that behaviour downstream.
        """
        return any(abs(j.requested_time - j.runtime) > 1e-9 for j in self.jobs)

    def describe(self) -> str:
        return (
            f"Trace({self.name!r}, processors={self.num_processors}, jobs={len(self.jobs)}, "
            f"duration={self.duration:.0f}s)"
        )


def validate_sequence(jobs: Sequence[Job]) -> None:
    """Raise ``ValueError`` if ``jobs`` is not sorted by submit time."""
    for previous, current in zip(jobs, list(jobs)[1:]):
        if current.submit_time < previous.submit_time:
            raise ValueError(
                "job sequence is not sorted by submit time: "
                f"job {current.job_id} at {current.submit_time} follows "
                f"job {previous.job_id} at {previous.submit_time}"
            )
