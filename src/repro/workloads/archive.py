"""Trace registry: load the four evaluation traces by name.

``load_trace("SDSC-SP2")`` returns the trace used throughout the experiments.
When the environment variable ``REPRO_SWF_DIR`` points at a directory with
the original archive files (``SDSC-SP2-1998-4.2-cln.swf`` etc.), those are
parsed and used.  Otherwise the calibrated synthetic substitutes documented
in DESIGN.md §4 are generated deterministically from the trace name.

The registry is extensible: :func:`register_trace` adds a new named loader,
which the experiment drivers then accept anywhere a built-in name is used.
"""

from __future__ import annotations

import os
import zlib
from functools import lru_cache
from typing import Callable, Dict, Iterable

import numpy as np

from repro.utils.rng import SeedLike, derive_seed
from repro.workloads.job import Trace
from repro.workloads.lublin import LUBLIN_1, LUBLIN_2, lublin_trace
from repro.workloads.swf import read_swf
from repro.workloads.synthetic import HPC2N_SPEC, SDSC_SP2_SPEC, synthetic_trace

__all__ = [
    "load_trace",
    "available_traces",
    "register_trace",
    "clear_trace_cache",
    "real_swf_path",
]

#: Environment variable naming a directory that holds the original SWF files.
SWF_DIR_ENV = "REPRO_SWF_DIR"

#: Candidate archive file names per trace, checked inside ``REPRO_SWF_DIR``.
_SWF_FILENAMES: Dict[str, tuple[str, ...]] = {
    "SDSC-SP2": ("SDSC-SP2-1998-4.2-cln.swf", "SDSC-SP2-1998-4.2.swf", "SDSC-SP2.swf"),
    "HPC2N": ("HPC2N-2002-2.2-cln.swf", "HPC2N-2002-2.1-cln.swf", "HPC2N.swf"),
}

TraceFactory = Callable[[int, int], Trace]


def _sdsc_sp2_factory(num_jobs: int, seed: int) -> Trace:
    return synthetic_trace(SDSC_SP2_SPEC, num_jobs=num_jobs, seed=seed)


def _hpc2n_factory(num_jobs: int, seed: int) -> Trace:
    return synthetic_trace(HPC2N_SPEC, num_jobs=num_jobs, seed=seed)


def _lublin1_factory(num_jobs: int, seed: int) -> Trace:
    return lublin_trace(num_jobs=num_jobs, params=LUBLIN_1, seed=seed, name="Lublin-1")


def _lublin2_factory(num_jobs: int, seed: int) -> Trace:
    return lublin_trace(num_jobs=num_jobs, params=LUBLIN_2, seed=seed, name="Lublin-2")


_REGISTRY: Dict[str, TraceFactory] = {
    "SDSC-SP2": _sdsc_sp2_factory,
    "HPC2N": _hpc2n_factory,
    "Lublin-1": _lublin1_factory,
    "Lublin-2": _lublin2_factory,
}


def available_traces() -> list[str]:
    """Names accepted by :func:`load_trace`, in registration order."""
    return list(_REGISTRY)


def register_trace(name: str, factory: TraceFactory, overwrite: bool = False) -> None:
    """Register a custom named trace factory ``factory(num_jobs, seed) -> Trace``."""
    if name in _REGISTRY and not overwrite:
        raise ValueError(f"trace {name!r} is already registered (pass overwrite=True to replace)")
    _REGISTRY[name] = factory
    clear_trace_cache()


def _find_swf_file(name: str) -> str | None:
    swf_dir = os.environ.get(SWF_DIR_ENV)
    if not swf_dir or not os.path.isdir(swf_dir):
        return None
    for candidate in _SWF_FILENAMES.get(name, ()) + (f"{name}.swf",):
        path = os.path.join(swf_dir, candidate)
        if os.path.isfile(path):
            return path
    return None


def real_swf_path(name: str) -> str | None:
    """Path of the *real* archive SWF file ``load_trace(name)`` would parse.

    ``None`` when ``$REPRO_SWF_DIR`` is unset or holds no file for ``name``
    -- in that case ``load_trace`` falls back to the calibrated synthetic
    equivalent.  CI scripts use this to distinguish "training on genuine
    archive data" from the synthetic fallback.
    """
    return _find_swf_file(name)


@lru_cache(maxsize=32)
def _load_cached(name: str, num_jobs: int, seed: int) -> Trace:
    swf_path = _find_swf_file(name)
    if swf_path is not None:
        trace = read_swf(swf_path, name=name)
        return trace.head(num_jobs)
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown trace {name!r}; available: {', '.join(available_traces())}"
        ) from None
    return factory(num_jobs, seed)


def load_trace(name: str, num_jobs: int = 10_000, seed: SeedLike = None) -> Trace:
    """Load one of the evaluation traces by name.

    Parameters
    ----------
    name:
        One of :func:`available_traces` (``SDSC-SP2``, ``HPC2N``, ``Lublin-1``,
        ``Lublin-2``) or a custom registered name.
    num_jobs:
        Number of jobs to keep; the paper uses the first 10K jobs of each trace.
    seed:
        Seed for the synthetic generators, following the uniform workload
        seeding rule (see :mod:`repro.utils.rng`): an ``int`` or
        ``SeedSequence`` selects a reproducible trace, an existing
        ``Generator`` draws the trace seed from its stream (advancing it),
        and ``None`` derives a stable seed from the trace name so repeated
        calls return identical traces.
    """
    if seed is None:
        # zlib.crc32 is stable across interpreter runs (unlike hash() on str),
        # so the default trace content is identical for every process.
        seed = derive_seed(zlib.crc32(name.encode("utf-8")), 0)
    elif isinstance(seed, np.random.Generator):
        seed = int(seed.integers(0, 2**63 - 1))
    elif isinstance(seed, np.random.SeedSequence):
        # Derive from the sequence's own state (entropy AND spawn_key), so
        # spawned siblings select distinct traces and tuple entropy works.
        seed = int(seed.generate_state(1, dtype=np.uint64)[0] % (2**63 - 1))
    return _load_cached(name, int(num_jobs), int(seed))


def clear_trace_cache() -> None:
    """Drop memoized traces (mainly for tests that register temporary traces)."""
    _load_cached.cache_clear()


def load_all(num_jobs: int = 10_000, names: Iterable[str] | None = None) -> Dict[str, Trace]:
    """Load every registered trace (or the subset ``names``) keyed by name."""
    return {name: load_trace(name, num_jobs=num_jobs) for name in (names or available_traces())}
