"""Reader/writer for the Standard Workload Format (SWF).

The Parallel Workloads Archive distributes job traces as SWF text files: one
job per line, 18 whitespace-separated fields, ``;`` comment lines carrying
header metadata such as ``MaxProcs``.  The paper's real traces (SDSC-SP2,
HPC2N) come from this archive; this module lets users drop in the original
files, while :mod:`repro.workloads.synthetic` provides offline substitutes.
"""

from __future__ import annotations

import os
from typing import Iterable, Iterator, Sequence

from repro.workloads.job import Job, Trace

__all__ = ["read_swf", "write_swf", "parse_swf_lines", "SWF_FIELD_COUNT"]

#: Number of whitespace-separated fields in a standard SWF record.
SWF_FIELD_COUNT = 18

# SWF field indices (0-based) used by the simulator.
_F_JOB_ID = 0
_F_SUBMIT = 1
_F_WAIT = 2
_F_RUNTIME = 3
_F_ALLOC_PROCS = 4
_F_USED_MEM = 6
_F_REQ_PROCS = 7
_F_REQ_TIME = 8
_F_REQ_MEM = 9
_F_STATUS = 10
_F_USER = 11
_F_GROUP = 12
_F_EXE = 13
_F_QUEUE = 14
_F_PARTITION = 15


def _parse_header_max_procs(line: str) -> int | None:
    """Extract ``MaxProcs`` (or ``MaxNodes``) from an SWF comment line."""
    stripped = line.lstrip(";").strip()
    for key in ("MaxProcs:", "MaxNodes:"):
        if stripped.startswith(key):
            value = stripped[len(key) :].strip().split()[0]
            try:
                return int(value)
            except ValueError:
                return None
    return None


def _parse_memory(token: str) -> int:
    """Parse an SWF memory field (per-processor KB) to an int, ``-1`` if unusable.

    The archives write ``-1`` for "unknown"; some traces carry malformed
    tokens (empty placeholders, stray text) in these optional columns.  Either
    way the job itself is still valid, so a bad memory token degrades to the
    missing sentinel instead of skipping the record.
    """
    try:
        value = int(float(token))
    except ValueError:
        return -1
    return value if value >= 0 else -1


def parse_swf_lines(
    lines: Iterable[str],
    name: str = "swf",
    num_processors: int | None = None,
    skip_invalid: bool = True,
) -> Trace:
    """Parse SWF text ``lines`` into a :class:`Trace`.

    Jobs with non-positive runtime or processor counts (cancelled jobs, jobs
    killed at submission) are skipped when ``skip_invalid`` is true, matching
    the preprocessing used by RLScheduler and the paper.  Missing request
    times (``-1``) fall back to the actual runtime.
    """
    jobs: list[Job] = []
    header_procs: int | None = None
    max_seen_procs = 0
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith(";"):
            parsed = _parse_header_max_procs(line)
            if parsed is not None:
                header_procs = parsed
            continue
        fields = line.split()
        if len(fields) < SWF_FIELD_COUNT:
            if skip_invalid:
                continue
            raise ValueError(f"line {lineno}: expected {SWF_FIELD_COUNT} fields, got {len(fields)}")
        try:
            job_id = int(fields[_F_JOB_ID])
            submit = float(fields[_F_SUBMIT])
            runtime = float(fields[_F_RUNTIME])
            alloc = int(float(fields[_F_ALLOC_PROCS]))
            req_procs = int(float(fields[_F_REQ_PROCS]))
            req_time = float(fields[_F_REQ_TIME])
        except ValueError as exc:
            if skip_invalid:
                continue
            raise ValueError(f"line {lineno}: malformed SWF record") from exc
        processors = req_procs if req_procs > 0 else alloc
        if req_time <= 0:
            req_time = runtime
        if runtime <= 0 or processors <= 0 or submit < 0:
            if skip_invalid:
                continue
            raise ValueError(f"line {lineno}: job {job_id} has non-positive runtime/processors")
        max_seen_procs = max(max_seen_procs, processors)
        jobs.append(
            Job(
                job_id=job_id,
                submit_time=submit,
                runtime=runtime,
                requested_processors=processors,
                requested_time=max(req_time, runtime) if req_time < runtime else req_time,
                user_id=int(float(fields[_F_USER])),
                group_id=int(float(fields[_F_GROUP])),
                executable=int(float(fields[_F_EXE])),
                queue=int(float(fields[_F_QUEUE])),
                partition=int(float(fields[_F_PARTITION])),
                status=int(float(fields[_F_STATUS])),
                used_memory=_parse_memory(fields[_F_USED_MEM]),
                requested_memory=_parse_memory(fields[_F_REQ_MEM]),
            )
        )
    procs = num_processors or header_procs or max_seen_procs
    if procs <= 0:
        raise ValueError("could not determine cluster size: no MaxProcs header and no jobs parsed")
    return Trace.from_jobs(name=name, num_processors=procs, jobs=jobs)


def read_swf(path: str | os.PathLike, name: str | None = None, num_processors: int | None = None) -> Trace:
    """Read an SWF file from ``path`` into a :class:`Trace`."""
    trace_name = name or os.path.splitext(os.path.basename(os.fspath(path)))[0]
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        return parse_swf_lines(handle, name=trace_name, num_processors=num_processors)


def _format_job(job: Job, wait_time: float = -1.0) -> str:
    fields: list[float | int] = [0] * SWF_FIELD_COUNT
    fields[_F_JOB_ID] = job.job_id
    fields[_F_SUBMIT] = int(job.submit_time)
    fields[_F_WAIT] = int(wait_time)
    fields[_F_RUNTIME] = int(round(job.runtime))
    fields[_F_ALLOC_PROCS] = job.requested_processors
    fields[5] = -1  # average CPU time
    fields[_F_USED_MEM] = job.used_memory
    fields[_F_REQ_PROCS] = job.requested_processors
    fields[_F_REQ_TIME] = int(round(job.requested_time))
    fields[_F_REQ_MEM] = job.requested_memory
    fields[_F_STATUS] = job.status
    fields[_F_USER] = job.user_id
    fields[_F_GROUP] = job.group_id
    fields[_F_EXE] = job.executable
    fields[_F_QUEUE] = job.queue
    fields[_F_PARTITION] = job.partition
    fields[16] = -1  # preceding job
    fields[17] = -1  # think time
    return " ".join(str(v) for v in fields)


def write_swf(trace: Trace, path: str | os.PathLike) -> None:
    """Write ``trace`` to ``path`` in SWF format (round-trips with :func:`read_swf`)."""
    lines: list[str] = [
        f"; Generated by repro.workloads.swf",
        f"; MaxProcs: {trace.num_processors}",
        f"; MaxJobs: {len(trace)}",
    ]
    lines.extend(_format_job(job) for job in trace)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")


def iter_swf_records(trace: Trace) -> Iterator[str]:
    """Yield SWF-formatted records for ``trace`` without touching disk."""
    for job in trace:
        yield _format_job(job)


def merge_traces(name: str, traces: Sequence[Trace]) -> Trace:
    """Concatenate traces in time: each trace starts after the previous ends."""
    if not traces:
        raise ValueError("merge_traces requires at least one trace")
    jobs: list[Job] = []
    offset = 0.0
    next_id = 1
    for trace in traces:
        for job in trace:
            jobs.append(
                Job(
                    job_id=next_id,
                    submit_time=job.submit_time + offset,
                    runtime=job.runtime,
                    requested_processors=job.requested_processors,
                    requested_time=job.requested_time,
                    user_id=job.user_id,
                    group_id=job.group_id,
                )
            )
            next_id += 1
        offset += trace.duration + 1.0
    return Trace.from_jobs(
        name=name, num_processors=max(t.num_processors for t in traces), jobs=jobs
    )
