"""Quickstart: load a workload, schedule it with several backfilling strategies.

Run from the repository root with:  python examples/quickstart.py
(no PYTHONPATH needed; alternatively ``pip install -e .``)
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.prediction import ActualRuntime, UserEstimate
from repro.scheduler import ConservativeBackfill, EasyBackfill, NoBackfill, Simulator
from repro.utils.tables import format_table
from repro.workloads import load_trace, sample_sequence, trace_statistics


def main() -> None:
    # 1. Load one of the evaluation traces (a calibrated synthetic equivalent
    #    of the SDSC-SP2 archive trace; drop the real SWF file into
    #    $REPRO_SWF_DIR to use the original).
    trace = load_trace("SDSC-SP2", num_jobs=3000)
    stats = trace_statistics(trace)
    print(trace.describe())
    print(f"  mean inter-arrival {stats.mean_interarrival:.0f}s, "
          f"mean requested runtime {stats.mean_requested_time:.0f}s, "
          f"mean processors {stats.mean_requested_processors:.1f}, "
          f"offered load {stats.offered_load:.2f}")

    # 2. Sample a 512-job sequence and schedule it under FCFS with different
    #    backfilling strategies and runtime estimators.
    jobs = sample_sequence(trace, 512, seed=42)
    configurations = [
        ("no backfilling", NoBackfill(), UserEstimate()),
        ("EASY (request time)", EasyBackfill(), UserEstimate()),
        ("EASY-AR (actual runtime)", EasyBackfill(), ActualRuntime()),
        ("conservative", ConservativeBackfill(), UserEstimate()),
    ]
    rows = []
    for label, backfill, estimator in configurations:
        simulator = Simulator(
            num_processors=trace.num_processors,
            policy="FCFS",
            backfill=backfill,
            estimator=estimator,
        )
        result = simulator.run(jobs)
        rows.append(
            (
                label,
                result.bsld,
                result.metrics.average_wait_time / 3600.0,
                result.metrics.utilization,
                result.backfill_count,
            )
        )
    print()
    print(
        format_table(
            ["strategy", "bsld", "avg wait (h)", "utilization", "backfilled"],
            rows,
            title="FCFS scheduling of 512 SDSC-SP2 jobs",
        )
    )


if __name__ == "__main__":
    main()
