"""Figure 1 scenario: does better runtime prediction always help EASY backfilling?

Reproduces the paper's motivating experiment: EASY backfilling with runtime
predictions of decreasing accuracy (perfect, +5% ... +100% noise) under four
base scheduling policies.  Run with:

    python examples/prediction_tradeoff.py [--scale quick|paper]
"""

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.experiments import run_figure1


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="quick", choices=["quick", "paper", "smoke"])
    parser.add_argument("--trace", default="SDSC-SP2")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    result = run_figure1(args.scale, trace=args.trace, seed=args.seed)
    print(result.to_text())
    print()
    for policy in result.values:
        print(f"{policy}: best prediction accuracy is {result.best_noise(policy)}")
    if result.accuracy_is_not_monotonic():
        print("\nAs in the paper's Figure 1, more accurate runtime predictions do NOT")
        print("always produce better scheduling: noisy predictions leave a larger")
        print("backfilling area, which can outweigh the more accurate reservation.")
    else:
        print("\nAt this scale every policy preferred the perfect prediction; "
              "rerun with --scale paper for the full sweep.")


if __name__ == "__main__":
    main()
