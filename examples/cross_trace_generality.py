"""Table 5 scenario: apply a model trained on trace X to a different trace Y.

Trains small RLBackfilling models on two traces and cross-evaluates them,
reproducing the structure of the paper's generality experiment.  Run with:

    python examples/cross_trace_generality.py [--scale quick]
"""

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.experiments import run_table5


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="quick", choices=["smoke", "quick", "paper"])
    parser.add_argument(
        "--traces", nargs="+", default=["SDSC-SP2", "Lublin-1"],
        help="traces to train on and evaluate against",
    )
    parser.add_argument("--policies", nargs="+", default=["FCFS"])
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    result = run_table5(args.scale, traces=args.traces, policies=args.policies, seed=args.seed)
    print(result.to_text())
    print()
    for policy in args.policies:
        for trained_on in args.traces:
            for applied_to in args.traces:
                if trained_on == applied_to:
                    continue
                verdict = (
                    "beats EASY"
                    if result.transfer_beats_easy(policy, trained_on, applied_to)
                    else "does not beat EASY at this training budget"
                )
                print(f"[{policy}] RL-{trained_on} applied to {applied_to}: {verdict}")


if __name__ == "__main__":
    main()
