"""Train an RLBackfilling agent and compare it against the EASY baselines.

This walks the full §3/§4.2 pipeline: build the backfilling environment on a
trace, train the PPO actor-critic (rollouts collected through the vectorized
multi-environment engine), plot (textually) the Figure 4 training curve,
evaluate the trained policy on held-out job sequences, and save a checkpoint.
Run from the repository root with:

    python examples/train_rlbackfilling.py [--trace SDSC-SP2] [--epochs 12] [--num-envs 4]

On a multi-core machine, add ``--backend process`` to shard the lanes across
a pool of worker processes (shared-memory batching; the policy forward pass
stays batched in this process).
"""

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.core import (
    BackfillEnvironment,
    RLBackfillAgent,
    RLBackfillPolicy,
    Trainer,
    TrainerConfig,
)
from repro.core.checkpoints import save_agent
from repro.core.observation import ObservationConfig
from repro.experiments.runner import SchedulingConfiguration, evaluate_strategy
from repro.rl.ppo import PPOConfig
from repro.utils.tables import format_table
from repro.workloads import load_trace, sample_sequences


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", default="SDSC-SP2")
    parser.add_argument("--policy", default="FCFS")
    parser.add_argument("--epochs", type=int, default=12)
    parser.add_argument("--trajectories", type=int, default=8)
    parser.add_argument("--sequence-length", type=int, default=256)
    parser.add_argument("--max-queue", type=int, default=32)
    parser.add_argument("--num-envs", type=int, default=4,
                        help="environment lanes stepped in lockstep by the vectorized rollout engine")
    parser.add_argument("--backend", choices=("local", "process"), default="local",
                        help="step lanes in-process, or shard them across a multiprocess "
                             "lane pool exchanging batches through shared memory")
    parser.add_argument("--num-workers", type=int, default=None,
                        help="worker processes for --backend process (default: one per core)")
    parser.add_argument("--pipeline-depth", type=int, choices=(1, 2), default=1,
                        help="process-backend round scheduling: 1 = lockstep, 2 = "
                             "double-buffered cohorts that overlap the batched forward "
                             "pass with worker simulator stepping")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--checkpoint", default="rlbackfill_agent.npz")
    args = parser.parse_args()

    trace = load_trace(args.trace, num_jobs=4000)
    observation_config = ObservationConfig(max_queue_size=args.max_queue)
    environment = BackfillEnvironment(
        trace,
        policy=args.policy,
        sequence_length=args.sequence_length,
        observation_config=observation_config,
        seed=args.seed,
        training_pool_size=6,
        min_baseline_bsld=2.0,
    )
    agent = RLBackfillAgent(observation_config=observation_config, seed=args.seed)
    trainer = Trainer(
        environment,
        agent,
        TrainerConfig(
            epochs=args.epochs,
            trajectories_per_epoch=args.trajectories,
            ppo=PPOConfig(policy_iterations=20, value_iterations=20),
            num_envs=args.num_envs,
            backend=args.backend,
            num_workers=args.num_workers,
            pipeline_depth=args.pipeline_depth,
        ),
        seed=args.seed,
    )

    lanes_where = "in-process" if args.backend == "local" else (
        f"sharded across {trainer.vec_env.num_workers} worker processes"
        + (", pipelined cohorts" if args.pipeline_depth > 1 else ""))
    print(f"Training RLBackfilling on {trace.name} with {args.policy} base policy "
          f"({args.epochs} epochs x {args.trajectories} trajectories, "
          f"{args.num_envs} rollout lanes {lanes_where})")
    with trainer:
        history = trainer.train(
            callback=lambda e: print(
                f"  epoch {e.epoch:3d}: bsld {e.mean_bsld:8.2f} "
                f"(baseline {e.mean_baseline_bsld:8.2f}), reward {e.mean_episode_reward:7.3f}"
            )
        )
    print(f"training curve (Figure 4 style): {[round(v, 1) for v in history.bslds]}")

    # Held-out evaluation on longer sequences, as in Table 4.
    sequences = sample_sequences(trace, length=512, count=3, seed=args.seed + 1000)
    rows = []
    for configuration in (
        SchedulingConfiguration.easy(args.policy),
        SchedulingConfiguration.easy_ar(args.policy),
        SchedulingConfiguration.rl(args.policy, agent),
    ):
        rows.append((configuration.label, evaluate_strategy(trace, configuration, sequences)))
    print()
    print(format_table(["configuration", "bsld"], rows, title=f"Held-out evaluation on {trace.name}"))

    path = save_agent(agent, args.checkpoint)
    print(f"\nSaved trained agent to {path}")
    print("Reload it with repro.core.load_agent(path) and wrap it in RLBackfillPolicy "
          "to use it inside any Simulator.")
    # Silence the linter about the unused import in the docstring example.
    _ = RLBackfillPolicy


if __name__ == "__main__":
    main()
