#!/usr/bin/env python
"""Closed-loop load generator for the online scheduling service.

Starts a :class:`~repro.service.server.SchedulingService` in-process, drives
it over real TCP with concurrent closed-loop clients (each submits a batch,
waits for the response, submits the next), then drains the service, verifies
the replay log offline, and writes a ``service-timing.json`` telemetry
sidecar consumed by ``scripts/check_benchmark_trend.py --service-report``.

Reported metrics are machine-relative so they transfer across runners:

* ``decisions_per_second`` -- served decisions during the live window (drain
  excluded) divided by live wall seconds;
* ``latency_p50/p95/p99_ms`` -- submit round-trip percentiles;
* ``reference_forward_seconds`` -- the measured serial (``row_block=1``)
  policy forward on this machine;
* ``p99_latency_per_forward`` / ``decision_throughput_x_forward`` -- the two
  ratios committed to ``benchmarks/throughput_baseline.json``.

Run ``PYTHONPATH=src python scripts/load_service.py --quick`` for the CI
smoke configuration (~15s wall).  ``--min-rate`` turns the throughput floor
into a hard exit code; replay parity is always enforced unless
``--no-parity-check``.
"""

from __future__ import annotations

import argparse
import asyncio
import http.client
import json
import random
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.agent import RLBackfillAgent  # noqa: E402
from repro.experiments.runner import load_or_train_agent  # noqa: E402
from repro.faults.plan import FaultPlan  # noqa: E402
from repro.obs import enable_tracing, export_chrome_trace  # noqa: E402
from repro.obs.metrics import (  # noqa: E402
    LATENCY_BUCKETS_S,
    Histogram,
    parse_prometheus_text,
)
from repro.service import (  # noqa: E402
    SchedulingService,
    ServiceClient,
    ServiceConfig,
    verify_replay_log,
)


def parse_args(argv: Optional[List[str]] = None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke preset: short run, untrained weights"
    )
    parser.add_argument(
        "--checkpoint",
        default=None,
        help="agent checkpoint (.npz); trained at smoke scale if missing (see "
        "load_or_train_agent). Default: untrained weights with --quick, "
        "otherwise a smoke-scale training run without persisting.",
    )
    parser.add_argument("--duration", type=float, default=None, help="live window wall seconds")
    parser.add_argument("--clients", type=int, default=4, help="concurrent closed-loop clients")
    parser.add_argument("--batch", type=int, default=16, help="jobs per submit request")
    parser.add_argument("--procs", type=int, default=64, help="simulated cluster width")
    parser.add_argument(
        "--time-scale",
        type=float,
        default=1200.0,
        help="event seconds per wall second (tuned so arrivals keep the cluster contended)",
    )
    parser.add_argument(
        "--wide-fraction",
        type=float,
        default=0.25,
        help="fraction of wide jobs (they block the queue head and create backfill decisions)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--admission-rate",
        type=float,
        default=None,
        help="per-tenant refill tokens/sec (default: effectively unthrottled for load runs)",
    )
    parser.add_argument("--out", default=None, help="service-timing JSON path")
    parser.add_argument("--replay-out", default=None, help="replay log JSONL path")
    parser.add_argument(
        "--metrics-out",
        default=None,
        help="write the service's Prometheus text exposition (the `metrics` "
        "wire op, scraped after drain) to this path",
    )
    parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        help="also serve GET /metrics + /healthz over plain HTTP on this "
        "port (0 = ephemeral) and verify the scrape body matches the "
        "`metrics` wire op byte for byte",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        help="enable span tracing and write the merged Chrome trace-event "
        "JSON (request-correlated service spans with flow events; view in "
        "ui.perfetto.dev)",
    )
    parser.add_argument(
        "--min-rate",
        type=float,
        default=None,
        help="fail (exit 1) if live decisions/sec falls below this floor",
    )
    parser.add_argument(
        "--connection-drops",
        type=int,
        default=0,
        help="chaos mode: this many request ordinals per --drop-window are "
        "dropped mid-flight (written, never read) and retried with the same "
        "dedup_key; replay parity then proves the retries never double-admit",
    )
    parser.add_argument(
        "--drop-window",
        type=int,
        default=64,
        help="request-ordinal window the FaultPlan drop ordinals are drawn "
        "over; the plan repeats every window, giving a sustained drop rate",
    )
    parser.add_argument(
        "--no-parity-check",
        action="store_true",
        help="skip the offline replay verification (parity is enforced by default)",
    )
    args = parser.parse_args(argv)
    if args.duration is None:
        args.duration = 8.0 if args.quick else 20.0
    return args


def make_batch(
    rng: np.random.Generator,
    next_id: int,
    batch: int,
    procs: int,
    wide_fraction: float,
) -> List[Dict[str, object]]:
    """One submit batch: mostly narrow/short backfill fodder, occasionally a
    wide job that blocks the FCFS head and opens backfill opportunities.
    Runtimes are in event seconds (the service assigns submit times)."""
    jobs = []
    for offset in range(batch):
        if rng.random() < wide_fraction:
            width = int(rng.integers(procs // 2, max(procs // 2 + 1, procs - 4)))
            runtime = float(rng.exponential(40.0)) + 5.0
        else:
            width = int(rng.integers(1, 5))
            runtime = float(rng.exponential(8.0)) + 1.0
        jobs.append(
            {
                "job_id": next_id + offset,
                "runtime": runtime,
                "requested_processors": width,
                "requested_time": runtime * 2.0,
            }
        )
    return jobs


class ChaosClient(ServiceClient):
    """A :class:`ServiceClient` that can abandon an in-flight submit.

    ``submit_dropped`` writes the request and closes the socket without
    reading the response -- the FaultPlan ``connection_drops`` failure mode:
    the service may or may not have executed the request, and only an
    idempotent ``dedup_key`` retry can safely find out.
    """

    async def submit_dropped(
        self, jobs: List[Dict[str, object]], tenant: str, dedup_key: str
    ) -> None:
        await self.connect()
        payload = {"op": "submit", "tenant": tenant, "dedup_key": dedup_key, "jobs": jobs}
        assert self._writer is not None
        self._writer.write(json.dumps(payload).encode() + b"\n")
        await self._writer.drain()
        await self.close()


async def run_client(
    index: int,
    host: str,
    port: int,
    args: argparse.Namespace,
    deadline: float,
    id_stride: int,
    latencies: Histogram,
    totals: Dict[str, int],
    fault_plan: Optional[FaultPlan] = None,
    ordinals: Optional[Dict[str, int]] = None,
) -> None:
    rng = np.random.default_rng(args.seed * 1000 + index)
    retry_rng = random.Random(args.seed * 1000 + index)
    next_id = index + 1
    async with ChaosClient(host, port) as client:
        while time.perf_counter() < deadline:
            jobs = make_batch(rng, next_id, args.batch, args.procs, args.wide_fraction)
            # Stride ids by client so concurrent submitters never collide.
            for offset, job in enumerate(jobs):
                job["job_id"] = next_id + offset * id_stride
            next_id += args.batch * id_stride
            # One global submit ordinal across all clients (asyncio tasks
            # interleave on one thread, so the counter needs no lock); the
            # fault plan's drop ordinals repeat every --drop-window requests.
            drop = False
            if fault_plan is not None and ordinals is not None:
                ordinal = ordinals["next"]
                ordinals["next"] = ordinal + 1
                drop = fault_plan.drops_connection(ordinal % args.drop_window)
            t0 = time.perf_counter()
            if drop:
                dedup_key = f"chaos-{index}-{next_id}"
                await client.submit_dropped(jobs, f"tenant-{index}", dedup_key)
                totals["dropped"] += 1
                await client.connect()
                response = await client.submit_with_retry(
                    jobs, tenant=f"tenant-{index}", dedup_key=dedup_key, rng=retry_rng
                )
                if response.get("deduplicated"):
                    totals["deduplicated"] += 1
            else:
                response = await client.submit(jobs, tenant=f"tenant-{index}")
            latencies.observe(time.perf_counter() - t0)
            if not response.get("ok"):
                if response.get("error") == "overloaded":
                    totals["overloaded"] += 1
                    await asyncio.sleep(0.005)
                    continue
                raise RuntimeError(f"client {index}: submit failed: {response}")
            totals["decisions"] += len(response["decisions"])
            for result in response["results"]:
                if result.get("admitted"):
                    totals["admitted"] += 1
                else:
                    totals["rejected"] += 1


def measure_reference_forward(service: SchedulingService, repeats: int = 2000) -> float:
    """Mean serial-forward seconds of the *serving* agent (the ``row_block=1``
    deep copy), measured on this machine after the load run."""
    agent = service.strategy.agent
    cfg = agent.observation_config
    rng = np.random.default_rng(0)
    observation = rng.standard_normal(cfg.observation_size) * 0.1
    mask = np.ones(cfg.num_actions)
    agent.step(observation, mask, deterministic=True)  # warm caches
    t0 = time.perf_counter()
    for _ in range(repeats):
        agent.step(observation, mask, deterministic=True)
    return (time.perf_counter() - t0) / repeats


async def _http_get(host: str, port: int, path: str) -> Tuple[int, str]:
    """One stdlib-HTTP GET, run in the default executor: the service's loop
    must stay free to render the scrape body for the handler thread."""

    def fetch() -> Tuple[int, str]:
        conn = http.client.HTTPConnection(host, port, timeout=10.0)
        try:
            conn.request("GET", path)
            response = conn.getresponse()
            return response.status, response.read().decode("utf-8")
        finally:
            conn.close()

    return await asyncio.get_running_loop().run_in_executor(None, fetch)


async def check_http_scrape(
    service: SchedulingService, client: ServiceClient
) -> Dict[str, object]:
    """Verify ``GET /metrics`` equals the ``metrics`` wire op byte for byte.

    A background tick can observe into the registry between the two scrapes,
    so a transient mismatch is retried; a persistent one is a real failure
    (the report's ``matched_wire_body`` goes false and main() exits 1).
    """
    mhost, mport = service.metrics_address
    health_status, _ = await _http_get(mhost, mport, "/healthz")
    matched = False
    attempts = 0
    for attempts in range(1, 31):
        status, http_body = await _http_get(mhost, mport, "/metrics")
        wire_body = str((await client.metrics()).get("body", ""))
        if status == 200 and http_body == wire_body:
            matched = True
            break
    return {
        "port": mport,
        "healthz_status": health_status,
        "matched_wire_body": matched,
        "attempts": attempts,
    }


def percentile_ms(latencies: Histogram, q: float) -> float:
    """Bucket-interpolated percentile in milliseconds, ``q`` in percent.

    Uses the same fixed-bucket histogram the service exposes over its
    ``metrics`` wire op, so offline report percentiles and scraped
    ``service_request_seconds`` quantiles share one implementation (and one
    set of compiled-in bucket edges) instead of a separate np.percentile
    code path."""
    return latencies.quantile(q / 100.0) * 1000.0


async def run_load(args: argparse.Namespace, agent: RLBackfillAgent) -> Dict[str, object]:
    config = ServiceConfig(
        num_processors=args.procs,
        time_scale=args.time_scale,
        replay_log_path=args.replay_out,
        admission_capacity=1e9 if args.admission_rate is None else 4 * args.admission_rate,
        admission_refill=((0.0, 1e9 if args.admission_rate is None else args.admission_rate),),
        metrics_port=args.metrics_port,
    )
    service = SchedulingService(agent, config)
    # Standalone (registry-less) histogram: always records, shared by every
    # client task (asyncio tasks interleave on one thread, so no locking).
    latencies = Histogram("load_client_submit_seconds", LATENCY_BUCKETS_S)
    totals = {
        "decisions": 0,
        "admitted": 0,
        "rejected": 0,
        "overloaded": 0,
        "dropped": 0,
        "deduplicated": 0,
    }
    fault_plan = None
    ordinals = {"next": 0}
    if args.connection_drops > 0:
        fault_plan = FaultPlan.generate(
            args.seed,
            num_requests=args.drop_window,
            num_connection_drops=args.connection_drops,
        )
    async with service:
        host, port = service.address
        start = time.perf_counter()
        deadline = start + args.duration
        clients = [
            asyncio.create_task(
                run_client(
                    i, host, port, args, deadline, args.clients, latencies, totals,
                    fault_plan=fault_plan, ordinals=ordinals,
                )
            )
            for i in range(args.clients)
        ]
        await asyncio.gather(*clients)
        live_seconds = time.perf_counter() - start
        live_decisions = service.counters.decisions
        async with ServiceClient(host, port) as client:
            drain = await client.drain()
            stats = (await client.stats())["stats"]
            metrics_text = str((await client.metrics()).get("body", ""))
            http_check = None
            if args.metrics_port is not None:
                http_check = await check_http_scrape(service, client)
            await client.shutdown()
        await service.wait_stopped()

    replay = {"checked": False, "matched": None, "jobs": None, "decisions": None}
    if not args.no_parity_check:
        source = args.replay_out if args.replay_out else service.replay.records
        check = verify_replay_log(source, agent)
        replay = {
            "checked": True,
            "matched": check.matched,
            "jobs": check.jobs,
            "decisions": check.decisions,
            "mismatches": list(check.mismatches),
        }

    forward_seconds = measure_reference_forward(service)
    rate = live_decisions / live_seconds if live_seconds > 0 else 0.0
    p99_ms = percentile_ms(latencies, 99.0)
    report: Dict[str, object] = {
        "service_load_wall_seconds": live_seconds,
        "decisions": live_decisions,
        "decisions_per_second": rate,
        "drain_decisions": int(drain.get("decisions_served", 0)) - live_decisions,
        "jobs_admitted": totals["admitted"],
        "jobs_rejected": totals["rejected"],
        "overloaded_responses": totals["overloaded"],
        "connections_dropped": totals["dropped"],
        "deduplicated_retries": totals["deduplicated"],
        "requests": latencies.count,
        "latency_p50_ms": percentile_ms(latencies, 50.0),
        "latency_p95_ms": percentile_ms(latencies, 95.0),
        "latency_p99_ms": p99_ms,
        "reference_forward_seconds": forward_seconds,
        "p99_latency_per_forward": (p99_ms / 1000.0) / forward_seconds,
        "decision_throughput_x_forward": rate * forward_seconds,
        "replay": replay,
        "drain": {k: v for k, v in drain.items() if k != "ok"},
        "service_stats": stats,
        "service_metrics": {
            name: value
            for name, value in parse_prometheus_text(metrics_text).items()
            if "_bucket" not in name
        },
        "metrics_text": metrics_text,
        "metrics_http": http_check,
        "config": {
            "clients": args.clients,
            "batch": args.batch,
            "procs": args.procs,
            "time_scale": args.time_scale,
            "wide_fraction": args.wide_fraction,
            "duration": args.duration,
            "seed": args.seed,
            "quick": args.quick,
            "connection_drops": args.connection_drops,
            "drop_window": args.drop_window,
        },
    }
    return report


def main(argv: Optional[List[str]] = None) -> int:
    args = parse_args(argv)
    if args.checkpoint is not None:
        agent = load_or_train_agent(args.checkpoint, scale="smoke", seed=args.seed)
    elif args.quick:
        # CI smoke: untrained weights exercise the identical forward path and
        # determinism contract without a training run in the loop.
        agent = RLBackfillAgent(seed=args.seed)
    else:
        agent = load_or_train_agent(None, scale="smoke", seed=args.seed)

    if args.trace_out:
        enable_tracing()

    report = asyncio.run(run_load(args, agent))

    if args.trace_out:
        trace_path = Path(args.trace_out)
        trace_path.parent.mkdir(parents=True, exist_ok=True)
        # The service runs in-process (no workers), so the merged export is
        # just the parent ring -- queue_wait/handle/respond spans connected
        # per request id by flow events.
        summary = export_chrome_trace(trace_path)
        print(f"wrote {trace_path} ({summary['events']} spans)")

    metrics_text = str(report.pop("metrics_text", ""))
    if args.metrics_out:
        metrics_path = Path(args.metrics_out)
        metrics_path.parent.mkdir(parents=True, exist_ok=True)
        metrics_path.write_text(metrics_text, encoding="utf-8")
        print(f"wrote {metrics_path}")

    print(
        f"live: {report['decisions']} decisions in "
        f"{report['service_load_wall_seconds']:.1f}s = "
        f"{report['decisions_per_second']:.0f} dec/s "
        f"(+{report['drain_decisions']} on drain)"
    )
    print(
        f"latency ms: p50={report['latency_p50_ms']:.1f} "
        f"p95={report['latency_p95_ms']:.1f} p99={report['latency_p99_ms']:.1f}"
    )
    print(
        f"reference forward: {report['reference_forward_seconds'] * 1e6:.0f}us; "
        f"p99/forward={report['p99_latency_per_forward']:.0f}; "
        f"throughput*forward={report['decision_throughput_x_forward']:.3f}"
    )
    if report["connections_dropped"]:
        print(
            f"chaos: {report['connections_dropped']} connections dropped, "
            f"{report['deduplicated_retries']} retries answered from the dedup cache"
        )
    replay = report["replay"]
    if replay["checked"]:
        print(
            f"replay: {replay['jobs']} jobs, {replay['decisions']} decisions, "
            f"matched={replay['matched']}"
        )
    http_check = report.get("metrics_http")
    if http_check is not None:
        print(
            f"http scrape: port={http_check['port']} "
            f"healthz={http_check['healthz_status']} "
            f"matched_wire_body={http_check['matched_wire_body']} "
            f"(attempt {http_check['attempts']})"
        )

    if args.out:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8")
        print(f"wrote {out}")

    failed = False
    if replay["checked"] and not replay["matched"]:
        print("FAIL: served decisions are not bit-identical to the offline replay:")
        for mismatch in replay.get("mismatches", [])[:5]:
            print(f"  {mismatch}")
        failed = True
    if args.min_rate is not None and report["decisions_per_second"] < args.min_rate:
        print(
            f"FAIL: {report['decisions_per_second']:.0f} decisions/s is below the "
            f"--min-rate floor of {args.min_rate:.0f}"
        )
        failed = True
    if http_check is not None and not (
        http_check["matched_wire_body"] and http_check["healthz_status"] == 200
    ):
        print("FAIL: HTTP /metrics scrape did not match the metrics wire op")
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
