"""Offline tuning run: does a longer quick-scale training beat EASY?

Writes progress to stdout; used to pick the quick-scale defaults recorded in
EXPERIMENTS.md.  Not part of the test/benchmark suites.  Rollouts go through
the vectorized engine; pass ``--num-envs`` to change the lane count.
"""
import argparse
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.core import BackfillEnvironment, RLBackfillAgent, Trainer, TrainerConfig
from repro.core.environment import RewardConfig
from repro.core.observation import ObservationConfig
from repro.core.rlbackfill import RLBackfillPolicy
from repro.prediction import ActualRuntime, UserEstimate
from repro.rl.ppo import PPOConfig
from repro.scheduler import EasyBackfill, Simulator
from repro.workloads import load_trace, sample_sequence


def evaluate(trace, agent, seqs):
    def ev(backfill, est):
        return float(
            np.mean(
                [
                    Simulator(trace.num_processors, policy="FCFS", backfill=backfill, estimator=est)
                    .run(j)
                    .bsld
                    for j in seqs
                ]
            )
        )

    return {
        "EASY": ev(EasyBackfill(), UserEstimate()),
        "EASY-AR": ev(EasyBackfill(), ActualRuntime()),
        "EASY-SJF": ev(EasyBackfill(order="sjf"), UserEstimate()),
        "RLBF": ev(RLBackfillPolicy(agent), UserEstimate()),
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--num-envs", type=int, default=4,
                        help="vectorized rollout lanes (1 = serial collection)")
    parser.add_argument("--backend", choices=("local", "process"), default="local",
                        help="where the lanes live: in-process, or sharded across "
                             "a multiprocess lane pool with shared-memory batching")
    parser.add_argument("--num-workers", type=int, default=None,
                        help="worker processes for --backend process "
                             "(default: one per available core)")
    parser.add_argument("--pipeline-depth", type=int, choices=(1, 2), default=1,
                        help="process-backend round scheduling: 1 = lockstep, "
                             "2 = double-buffered cohorts overlapping the forward "
                             "pass with worker stepping")
    parser.add_argument("--epochs", type=int, default=60)
    args = parser.parse_args()
    trace = load_trace("SDSC-SP2", num_jobs=4000)
    obs_cfg = ObservationConfig(max_queue_size=32)
    env = BackfillEnvironment(
        trace,
        policy="FCFS",
        sequence_length=256,
        observation_config=obs_cfg,
        seed=7,
        training_pool_size=4,
        min_baseline_bsld=5.0,
        reward_config=RewardConfig(delay_penalty=-2.0),
    )
    agent = RLBackfillAgent(observation_config=obs_cfg, seed=7)
    seqs = [sample_sequence(trace, 512, seed=100 + i) for i in range(3)]
    print("untrained", evaluate(trace, agent, seqs), flush=True)
    cfg = TrainerConfig(
        epochs=args.epochs,
        trajectories_per_epoch=8,
        ppo=PPOConfig(policy_iterations=20, value_iterations=30, value_lr=3e-3, lam=0.9),
        seed=7,
        num_envs=args.num_envs,
        backend=args.backend,
        num_workers=args.num_workers,
        pipeline_depth=args.pipeline_depth,
    )
    with Trainer(env, agent, cfg, seed=7) as trainer:
        start = time.time()
        for epoch in range(1, cfg.epochs + 1):
            stats = trainer.train_epoch(epoch)
            if epoch % 5 == 0 or epoch == 1:
                print(
                    f"epoch {epoch:3d} bsld {stats.mean_bsld:7.1f} baseline {stats.mean_baseline_bsld:7.1f} "
                    f"reward {stats.mean_episode_reward:7.2f} viol {stats.mean_violations:.1f} "
                    f"kl {stats.approximate_kl:.4f} ({time.time() - start:.0f}s)",
                    flush=True,
                )
            if epoch % 15 == 0:
                print("  eval", {k: round(v, 1) for k, v in evaluate(trace, agent, seqs).items()}, flush=True)
    print("final eval", {k: round(v, 1) for k, v in evaluate(trace, agent, seqs).items()}, flush=True)


if __name__ == "__main__":
    main()
