"""Table-4 smoke test on the real SDSC-SP2 and HPC2N archive traces.

CI fetches (or restores from the actions cache) the public SWF files from the
Parallel Workloads Archive into ``$REPRO_SWF_DIR`` and runs this script; it
verifies the *real* traces are actually being parsed (not the calibrated
synthetic substitutes), regenerates the Table 4 structure at smoke scale on
both traces, and sanity-checks every measured cell.  Exit codes:

* 0 -- smoke passed,
* 1 -- table values failed validation,
* 2 -- the SWF files are missing (environment/setup problem, not a code bug).

Run locally with:

    REPRO_SWF_DIR=/path/to/swf python scripts/real_trace_smoke.py
"""

import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from repro.experiments.table4 import run_table4
from repro.workloads import archive
from repro.workloads.archive import load_trace

TRACES = ("SDSC-SP2", "HPC2N")


def main() -> int:
    swf_dir = os.environ.get(archive.SWF_DIR_ENV)
    if not swf_dir:
        print(f"{archive.SWF_DIR_ENV} is not set; nothing to smoke-test", file=sys.stderr)
        return 2
    missing = [name for name in TRACES if archive.real_swf_path(name) is None]
    if missing:
        print(
            f"no SWF archive file found in {swf_dir!r} for: {', '.join(missing)}",
            file=sys.stderr,
        )
        return 2

    for name in TRACES:
        trace = load_trace(name, num_jobs=1_500)
        path = archive.real_swf_path(name)
        print(
            f"{name}: parsed real archive trace from {path} -- "
            f"{len(trace)} jobs, {trace.num_processors} processors, "
            f"user estimates: {trace.has_user_estimates}"
        )
        if not trace.has_user_estimates:
            print(f"{name}: real archive trace should carry user estimates", file=sys.stderr)
            return 1

    result = run_table4(scale="smoke", traces=TRACES, seed=0)
    print()
    print(result.to_text())

    failures = []
    for trace_name, row in result.values.items():
        for label, value in row.items():
            if value is None:
                continue
            if not np.isfinite(value) or value < 1.0:
                failures.append(f"{trace_name}/{label} = {value}")
        for policy in ("FCFS", "SJF"):
            if row.get(f"{policy}+RLBF") is None:
                failures.append(f"{trace_name}/{policy}+RLBF missing")
    if failures:
        print("\nreal-trace table-4 smoke FAILED:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("\nreal-trace table-4 smoke passed "
          f"({sum(len(row) for row in result.values.values())} cells validated)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
