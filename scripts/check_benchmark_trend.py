"""CI rollout-throughput trend check.

Compares the ratio metrics recorded in a pytest-benchmark JSON artifact
(``extra_info`` of each benchmark) against the committed baseline in
``benchmarks/throughput_baseline.json`` and exits non-zero when any metric
regresses by more than the configured tolerance (default 20%).

The baseline stores machine-*relative* ratios (e.g. ``vec[16]`` vs the
serial reference, or the 4-worker lane pool vs the single-process engine)
rather than absolute decisions/sec, so the check transfers across runner
hardware.  Metrics can be gated on a minimum usable-core count recorded by
the benchmark itself (``min_cores``/``cores_key``), which keeps the
multiprocess speedup check honest on small runners.  Each metric declares
``higher_is_better``; lower-is-better metrics regress when the measurement
exceeds ``baseline * (1 + tolerance)``.

A benchmark or metric absent from the results JSON is reported as MISSING
with a warning but does not fail the check by default -- the (deliberately
non-blocking) benchmark job's own failure covers that case; pass
``--strict`` to treat missing data as a failure instead.

Usage:
    python scripts/check_benchmark_trend.py [--strict] RESULTS.json [BASELINE.json]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).resolve().parents[1] / "benchmarks" / "throughput_baseline.json"


def load_extra_info(results_path: Path) -> dict[str, dict]:
    """Map benchmark name fragments to their recorded extra_info dicts."""
    with results_path.open() as handle:
        results = json.load(handle)
    infos: dict[str, dict] = {}
    for bench in results.get("benchmarks", []):
        # pytest-benchmark names look like "test_bench_lane_pool" or
        # "benchmarks/test_bench_lane_pool.py::test_bench_lane_pool".
        infos[bench["name"].split("::")[-1]] = bench.get("extra_info", {})
    return infos


def check(results_path: Path, baseline_path: Path, strict: bool = False) -> int:
    baseline = json.loads(baseline_path.read_text())
    tolerance = float(baseline.get("tolerance", 0.2))
    infos = load_extra_info(results_path)

    failures: list[str] = []
    missing: list[str] = []
    skipped: list[str] = []
    passed: list[str] = []
    for metric in baseline["metrics"]:
        bench_name = metric["benchmark"]
        key = metric["key"]
        reference = float(metric["baseline"])
        higher_is_better = bool(metric.get("higher_is_better", True))
        info = infos.get(bench_name)
        label = f"{bench_name}:{key}"
        if info is None:
            missing.append(f"{label}: benchmark missing from results JSON")
            continue
        min_cores = metric.get("min_cores")
        if min_cores is not None:
            cores = info.get(metric.get("cores_key", "usable_cores"))
            if cores is None or int(cores) < int(min_cores):
                skipped.append(f"{label}: needs >= {min_cores} cores (run had {cores})")
                continue
        measured = info.get(key)
        if measured is None:
            missing.append(f"{label}: metric missing from benchmark extra_info")
            continue
        measured = float(measured)
        if higher_is_better:
            limit = reference * (1.0 - tolerance)
            regressed = measured < limit
            bound = f"floor {limit:.3f} (-{tolerance:.0%})"
        else:
            limit = reference * (1.0 + tolerance)
            regressed = measured > limit
            bound = f"ceiling {limit:.3f} (+{tolerance:.0%})"
        verdict = f"{label}: measured {measured:.3f}, baseline {reference:.3f}, {bound}"
        if regressed:
            failures.append(f"REGRESSION {verdict}")
        else:
            passed.append(f"ok {verdict}")

    for line in passed:
        print(line)
    for line in skipped:
        print(f"skipped {line}")
    for line in missing:
        # ::warning:: renders as an annotation on GitHub runners and is
        # harmless plain text elsewhere.
        print(f"::warning::trend check MISSING {line}")
    if strict and missing:
        failures.extend(missing)
    if failures:
        print()
        for line in failures:
            print(line, file=sys.stderr)
        print(
            f"\nrollout-throughput trend check FAILED "
            f"({len(failures)} metric(s) regressed > {tolerance:.0%} or missing)",
            file=sys.stderr,
        )
        return 1
    note = f", {len(missing)} missing (non-strict)" if missing else ""
    print(f"\nrollout-throughput trend check passed ({len(passed)} metric(s){note})")
    return 0


def main(argv: list[str]) -> int:
    args = [a for a in argv[1:] if a != "--strict"]
    strict = "--strict" in argv[1:]
    if len(args) not in (1, 2):
        print(__doc__, file=sys.stderr)
        return 2
    results_path = Path(args[0])
    baseline_path = Path(args[1]) if len(args) == 2 else DEFAULT_BASELINE
    if not results_path.is_file():
        print(f"results file not found: {results_path}", file=sys.stderr)
        return 2
    return check(results_path, baseline_path, strict=strict)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
