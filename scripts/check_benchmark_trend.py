"""CI rollout-throughput trend check.

Compares metrics recorded in a pytest-benchmark JSON artifact against the
committed baseline in ``benchmarks/throughput_baseline.json`` and exits
non-zero when any metric regresses by more than the configured tolerance
(default 20%).

A baseline metric reads one value per benchmark, in one of two forms:

* ``key`` -- a ratio the benchmark itself recorded in its ``extra_info``
  (e.g. ``speedup_vec16_vs_serial``, ``speedup_pipelined_vs_lockstep``);
* ``stat`` -- a pytest-benchmark timing statistic of the benchmark run
  (e.g. ``mean``, ``median``).

An absolute timing statistic does not transfer across runner hardware, so a
``stat`` metric should declare ``relative_to`` -- another
``{benchmark, stat|key}`` reference the measurement is divided by before
comparison.  That turns two machine-dependent timings into one
machine-relative ratio (e.g. the EASY-backfill simulator's mean run time per
policy-forward mean), which is what the committed baselines store.  Metrics
may override the file-level ``tolerance`` per entry, and can be gated on a
minimum usable-core count recorded by the benchmark itself
(``min_cores``/``cores_key``), which keeps multiprocess speedup checks
honest on small runners.  Each metric declares ``higher_is_better``;
lower-is-better metrics regress when the measurement exceeds
``baseline * (1 + tolerance)``.

Two non-verdict outcomes are reported **distinctly** and must not be
conflated:

* ``GATED`` -- the benchmark ran and recorded its usable-core count, but the
  run had fewer cores than the metric's ``min_cores``.  This is the expected
  state on small runners and never fails the check.
* ``MISSING`` -- the benchmark, the metric's field, or the core count the
  gate needs is absent from the results JSON.  A core-gated metric whose
  benchmark did not record ``usable_cores`` is MISSING, not gated: otherwise
  a still-unmeasured baseline (e.g. ``speedup_pipelined_vs_lockstep``) could
  pass silently forever by looking like a small-runner skip.  MISSING warns
  by default -- the (deliberately non-blocking) benchmark job's own failure
  covers that case -- and fails the check under ``--strict``.

Scenario-evaluation telemetry joins the same check: ``--scenario-report
TIMING.json`` ingests the timing document written by
``scripts/evaluate_scenarios.py`` (``--timing-out``) as a pseudo-benchmark
named ``scenario_evaluation`` -- its total wall-clock becomes ``stats.mean``
and the cell/worker counts land in ``extra_info`` -- so baseline metrics can
reference it like any other benchmark.  The timing document also carries
``reference_cell_seconds`` (one representative cell re-timed inline on the
same machine), which is what the committed scenario metric divides by: the
suite/reference-cell ratio transfers across runners where the old absolute
30s wall-clock ceiling did not.

Service-load telemetry likewise: ``--service-report TIMING.json`` ingests
the document written by ``scripts/load_service.py --out`` as a
pseudo-benchmark named ``service_load`` (``stats.mean`` = live wall seconds;
decision rate, tail latencies, and the machine-relative
``p99_latency_per_forward`` / ``decision_throughput_x_forward`` ratios in
``extra_info``).

Chaos telemetry completes the set: ``--chaos-report TIMING.json`` ingests the
document written by ``scripts/chaos_smoke.py --out`` as a pseudo-benchmark
named ``chaos_smoke`` (``stats.mean`` = harness wall seconds; the
machine-relative ``recovery_overhead_vs_clean`` ratio plus the hard
``pool_parity_ok`` / ``service_recovery_ok`` bits in ``extra_info``).

Usage:
    python scripts/check_benchmark_trend.py [--strict]
        [--scenario-report TIMING.json] [--service-report TIMING.json]
        [--chaos-report TIMING.json] RESULTS.json [BASELINE.json]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).resolve().parents[1] / "benchmarks" / "throughput_baseline.json"


def load_benchmarks(results_path: Path) -> dict[str, dict]:
    """Map benchmark name fragments to their recorded result dicts."""
    with results_path.open() as handle:
        results = json.load(handle)
    benches: dict[str, dict] = {}
    for bench in results.get("benchmarks", []):
        # pytest-benchmark names look like "test_bench_lane_pool" or
        # "benchmarks/test_bench_lane_pool.py::test_bench_lane_pool".
        benches[bench["name"].split("::")[-1]] = bench
    return benches


#: Name under which an ingested scenario-evaluation timing document appears.
SCENARIO_BENCH_NAME = "scenario_evaluation"


def ingest_scenario_report(benches: dict[str, dict], timing_path: Path) -> None:
    """Fold a scenario-evaluation timing JSON into the benchmark map.

    The timing document is the non-deterministic sidecar of the (byte-stable)
    scenario report: total wall seconds, cell count, worker count.  It is
    mapped onto the pytest-benchmark result shape so baseline metrics address
    it uniformly (``stats.mean`` = total wall seconds).
    """
    timing = json.loads(timing_path.read_text())
    wall = timing.get("scenario_eval_wall_seconds")
    if wall is None:
        raise ValueError(
            f"{timing_path}: not a scenario timing document "
            "(missing 'scenario_eval_wall_seconds')"
        )
    extra_info = {
        "cells": timing.get("cells"),
        "workers": timing.get("workers"),
        "cells_per_second": timing.get("cells_per_second"),
        "scenario_eval_wall_seconds": float(wall),
    }
    reference = timing.get("reference_cell_seconds")
    if reference is not None:
        extra_info["reference_cell_seconds"] = float(reference)
        extra_info["reference_cell"] = timing.get("reference_cell")
    benches[SCENARIO_BENCH_NAME] = {
        "name": SCENARIO_BENCH_NAME,
        "stats": {"mean": float(wall)},
        "extra_info": extra_info,
    }


#: Name under which an ingested service-load timing document appears.
SERVICE_BENCH_NAME = "service_load"


def ingest_service_report(benches: dict[str, dict], timing_path: Path) -> None:
    """Fold a service-load timing JSON into the benchmark map.

    The document is written by ``scripts/load_service.py --out``; its live
    wall seconds become ``stats.mean`` and the throughput/latency metrics --
    including the two machine-relative ratios the committed baseline gates --
    land in ``extra_info``.
    """
    timing = json.loads(timing_path.read_text())
    wall = timing.get("service_load_wall_seconds")
    if wall is None:
        raise ValueError(
            f"{timing_path}: not a service timing document "
            "(missing 'service_load_wall_seconds')"
        )
    replay = timing.get("replay") or {}
    benches[SERVICE_BENCH_NAME] = {
        "name": SERVICE_BENCH_NAME,
        "stats": {"mean": float(wall)},
        "extra_info": {
            "decisions": timing.get("decisions"),
            "decisions_per_second": timing.get("decisions_per_second"),
            "latency_p50_ms": timing.get("latency_p50_ms"),
            "latency_p95_ms": timing.get("latency_p95_ms"),
            "latency_p99_ms": timing.get("latency_p99_ms"),
            "reference_forward_seconds": timing.get("reference_forward_seconds"),
            "p99_latency_per_forward": timing.get("p99_latency_per_forward"),
            "decision_throughput_x_forward": timing.get("decision_throughput_x_forward"),
            "replay_matched": 1.0 if replay.get("matched") else 0.0,
        },
    }


#: Name under which an ingested chaos-smoke timing document appears.
CHAOS_BENCH_NAME = "chaos_smoke"


def ingest_chaos_report(benches: dict[str, dict], timing_path: Path) -> None:
    """Fold a chaos-smoke timing JSON into the benchmark map.

    The document is written by ``scripts/chaos_smoke.py --out``; its total
    wall seconds become ``stats.mean`` and the gated quantities land in
    ``extra_info``: ``recovery_overhead_vs_clean`` (fault-injected pool wall
    over clean pool wall -- machine-relative, transfers across runners) plus
    the two hard parity bits (``pool_parity_ok``, ``service_recovery_ok``).
    """
    timing = json.loads(timing_path.read_text())
    wall = timing.get("chaos_wall_seconds")
    if wall is None:
        raise ValueError(
            f"{timing_path}: not a chaos timing document "
            "(missing 'chaos_wall_seconds')"
        )
    benches[CHAOS_BENCH_NAME] = {
        "name": CHAOS_BENCH_NAME,
        "stats": {"mean": float(wall)},
        "extra_info": {
            "recovery_overhead_vs_clean": timing.get("recovery_overhead_vs_clean"),
            "pool_parity_ok": timing.get("pool_parity_ok"),
            "service_recovery_ok": timing.get("service_recovery_ok"),
        },
    }


def read_value(benches: dict[str, dict], spec: dict) -> tuple[float | None, str, str]:
    """Resolve one ``{benchmark, key|stat}`` reference.

    Returns ``(value, label, problem)``; ``value`` is ``None`` when the
    benchmark or field is missing and ``problem`` says which.
    """
    bench_name = spec["benchmark"]
    if "key" in spec:
        field, source = spec["key"], "extra_info"
    else:
        field, source = spec["stat"], "stats"
    label = f"{bench_name}:{field}"
    bench = benches.get(bench_name)
    if bench is None:
        return None, label, f"{label}: benchmark missing from results JSON"
    value = bench.get(source, {}).get(field)
    if value is None:
        return None, label, f"{label}: {source}[{field!r}] missing from benchmark"
    return float(value), label, ""


def check(
    results_path: Path,
    baseline_path: Path,
    strict: bool = False,
    scenario_report: Path | None = None,
    service_report: Path | None = None,
    chaos_report: Path | None = None,
) -> int:
    baseline = json.loads(baseline_path.read_text())
    default_tolerance = float(baseline.get("tolerance", 0.2))
    benches = load_benchmarks(results_path)
    if scenario_report is not None:
        ingest_scenario_report(benches, scenario_report)
    if service_report is not None:
        ingest_service_report(benches, service_report)
    if chaos_report is not None:
        ingest_chaos_report(benches, chaos_report)

    failures: list[str] = []
    missing: list[str] = []
    skipped: list[str] = []
    passed: list[str] = []
    for metric in baseline["metrics"]:
        reference = float(metric["baseline"])
        tolerance = float(metric.get("tolerance", default_tolerance))
        higher_is_better = bool(metric.get("higher_is_better", True))
        measured, label, problem = read_value(benches, metric)
        if measured is None:
            missing.append(problem)
            continue
        min_cores = metric.get("min_cores")
        if min_cores is not None:
            cores_key = metric.get("cores_key", "usable_cores")
            bench = benches.get(metric["benchmark"], {})
            cores = bench.get("extra_info", {}).get(cores_key)
            if cores is None:
                # No recorded core count is missing data, not a small-runner
                # gate -- report it as such so an unmeasured metric cannot
                # pass silently by masquerading as core-gated.
                missing.append(
                    f"{label}: extra_info[{cores_key!r}] missing from benchmark "
                    f"(needed by its min_cores={min_cores} gate)"
                )
                continue
            if int(cores) < int(min_cores):
                skipped.append(f"{label}: needs >= {min_cores} cores (run had {cores})")
                continue
        relative_to = metric.get("relative_to")
        if relative_to is not None:
            ref_value, ref_label, problem = read_value(benches, relative_to)
            if ref_value is None:
                missing.append(problem)
                continue
            if ref_value == 0.0:
                missing.append(f"{label}: relative_to {ref_label} measured 0")
                continue
            measured = measured / ref_value
            label = f"{label}/{ref_label}"
        if higher_is_better:
            limit = reference * (1.0 - tolerance)
            regressed = measured < limit
            bound = f"floor {limit:.3f} (-{tolerance:.0%})"
        else:
            limit = reference * (1.0 + tolerance)
            regressed = measured > limit
            bound = f"ceiling {limit:.3f} (+{tolerance:.0%})"
        verdict = f"{label}: measured {measured:.3f}, baseline {reference:.3f}, {bound}"
        if regressed:
            failures.append(f"REGRESSION {verdict}")
        else:
            passed.append(f"ok {verdict}")

    for line in passed:
        print(line)
    for line in skipped:
        print(f"GATED (min_cores) {line}")
    for line in missing:
        # ::warning:: renders as an annotation on GitHub runners and is
        # harmless plain text elsewhere.
        print(f"::warning::trend check MISSING {line}")
    if strict and missing:
        failures.extend(f"MISSING {line}" for line in missing)
    if failures:
        print()
        for line in failures:
            print(line, file=sys.stderr)
        print(
            f"\nrollout-throughput trend check FAILED "
            f"({len(failures)} metric(s) regressed or missing)",
            file=sys.stderr,
        )
        return 1
    summary = f"{len(passed)} metric(s) ok"
    if skipped:
        summary += f", {len(skipped)} gated off by min_cores"
    if missing:
        summary += f", {len(missing)} MISSING (non-strict)"
    print(f"\nrollout-throughput trend check passed ({summary})")
    return 0


def main(argv: list[str]) -> int:
    args: list[str] = []
    strict = False
    scenario_report: Path | None = None
    service_report: Path | None = None
    chaos_report: Path | None = None
    rest = list(argv[1:])
    while rest:
        arg = rest.pop(0)
        if arg == "--strict":
            strict = True
        elif arg == "--scenario-report":
            if not rest:
                print("--scenario-report needs a path", file=sys.stderr)
                return 2
            scenario_report = Path(rest.pop(0))
        elif arg == "--service-report":
            if not rest:
                print("--service-report needs a path", file=sys.stderr)
                return 2
            service_report = Path(rest.pop(0))
        elif arg == "--chaos-report":
            if not rest:
                print("--chaos-report needs a path", file=sys.stderr)
                return 2
            chaos_report = Path(rest.pop(0))
        else:
            args.append(arg)
    if len(args) not in (1, 2):
        print(__doc__, file=sys.stderr)
        return 2
    results_path = Path(args[0])
    baseline_path = Path(args[1]) if len(args) == 2 else DEFAULT_BASELINE
    if not results_path.is_file():
        print(f"results file not found: {results_path}", file=sys.stderr)
        return 2
    if scenario_report is not None and not scenario_report.is_file():
        print(f"scenario timing file not found: {scenario_report}", file=sys.stderr)
        return 2
    if service_report is not None and not service_report.is_file():
        print(f"service timing file not found: {service_report}", file=sys.stderr)
        return 2
    if chaos_report is not None and not chaos_report.is_file():
        print(f"chaos timing file not found: {chaos_report}", file=sys.stderr)
        return 2
    return check(
        results_path,
        baseline_path,
        strict=strict,
        scenario_report=scenario_report,
        service_report=service_report,
        chaos_report=chaos_report,
    )


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
