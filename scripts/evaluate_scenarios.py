"""Evaluate backfilling policies across the scenario suite.

Fans every (scenario x policy) cell of a scenario suite across a process
worker pool, aggregates per-cell scheduling metrics, and writes one
deterministic JSON report with per-scenario policy rankings -- the harness
behind the ``scenario-matrix`` CI job and the robustness claims in
``docs/scenarios.md``.

The report is byte-identical across runs with the same ``--seed`` (and across
worker counts); wall-clock telemetry goes to a separate timing JSON that
``scripts/check_benchmark_trend.py --scenario-report`` folds into the
throughput trend check.

Usage:
    python scripts/evaluate_scenarios.py --suite core [--scale quick]
        [--policies easy,conservative,rl] [--seed 0] [--workers N]
        [--agent CHECKPOINT.npz] [--out report.json] [--timing-out timing.json]
        [--quick] [--list]

``--quick`` is the CI preset: heuristic policies only on the smoke scale.
``--workers 0`` evaluates inline (no worker processes).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.core.checkpoints import load_agent  # noqa: E402
from repro.scenarios.evaluate import (  # noqa: E402
    DEFAULT_POLICIES,
    HEURISTIC_POLICIES,
    AgentBundle,
    evaluate_suite,
    report_to_json,
)
from repro.scenarios.registry import get_scenario, scenario_names, suite_scenarios  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument("--suite", default="core",
                        help="suite name ('core') or comma-separated scenario names")
    parser.add_argument("--scale", default=None, help="experiment scale (smoke/quick/paper; default quick)")
    parser.add_argument("--seed", type=int, default=0, help="suite seed (report is a pure function of it)")
    parser.add_argument("--policies", default=None,
                        help="comma-separated policy names (easy, conservative, rl; "
                             f"default {','.join(DEFAULT_POLICIES)})")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes (0 = inline; default: min(cells, cores))")
    parser.add_argument("--agent", default=None,
                        help="trained agent checkpoint (.npz) for the rl policy; "
                             "omitted = train a fresh one deterministically from --seed")
    parser.add_argument("--out", default="scenario-report.json", help="report JSON path")
    parser.add_argument("--timing-out", default=None,
                        help="timing JSON path (default: <out> with a .timing.json suffix)")
    parser.add_argument("--quick", action="store_true",
                        help="CI preset: smoke scale, heuristic policies only")
    parser.add_argument("--list", action="store_true", help="list registered scenarios and exit")
    args = parser.parse_args(argv)

    if args.list:
        for name in scenario_names():
            spec = get_scenario(name)
            print(f"{name:24s} {spec.description}")
        return 0

    # --quick presets scale and policies, but explicit flags still win: an
    # explicitly given --scale/--policies overrides the preset, and a loaded
    # --agent checkpoint keeps the rl policy in the matrix.
    if args.quick:
        scale = args.scale or "smoke"
        if args.policies is not None:
            policies = [p for p in args.policies.split(",") if p]
        elif args.agent is not None:
            policies = [*HEURISTIC_POLICIES, "rl"]
        else:
            policies = list(HEURISTIC_POLICIES)
    else:
        scale = args.scale or "quick"
        policies = [p for p in (args.policies or ",".join(DEFAULT_POLICIES)).split(",") if p]

    agent_bundle = None
    if args.agent is not None:
        if "rl" not in policies:
            parser.error("--agent was given but the policy set excludes 'rl'")
        agent_bundle = AgentBundle.from_agent(load_agent(args.agent))

    scenarios = suite_scenarios(args.suite)
    print(
        f"evaluating {len(scenarios)} scenario(s) x {len(policies)} policy(ies) "
        f"at scale {scale!r}, seed {args.seed}"
        + (f", {args.workers} worker(s)" if args.workers is not None else "")
    )
    started = time.perf_counter()
    report, timing = evaluate_suite(
        suite=args.suite,
        scale=scale,
        seed=args.seed,
        policies=policies,
        num_workers=args.workers,
        agent_bundle=agent_bundle,
    )
    wall = time.perf_counter() - started

    out_path = Path(args.out)
    out_path.write_text(report_to_json(report))
    timing_path = (
        Path(args.timing_out)
        if args.timing_out is not None
        else out_path.with_suffix(".timing.json")
    )
    timing_path.write_text(json.dumps(timing, indent=2, sort_keys=True) + "\n")

    for name, block in report["scenarios"].items():
        bslds = ", ".join(
            f"{policy}={block['policies'][policy]['average_bounded_slowdown']:.2f}"
            for policy in report["policies"]
        )
        print(f"  {name:24s} best={block['best_policy']:14s} bsld: {bslds}")
    wins = report["summary"]["wins"]
    print(f"wins: {wins}; report -> {out_path}, timing -> {timing_path} ({wall:.1f}s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
