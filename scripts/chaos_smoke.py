#!/usr/bin/env python
"""Chaos smoke harness: fault-injected runs must stay bit-identical.

Exercises the failure domains end to end (docs/resilience.md) and writes a
``chaos-timing.json`` telemetry sidecar consumed by
``scripts/check_benchmark_trend.py --chaos-report``:

* **Lane pool**: the same rollout workload runs through a clean process pool
  and through pools whose :class:`~repro.faults.plan.FaultPlan` SIGKILLs
  workers at round boundaries (lockstep and pipelined).  Every fault column
  must reproduce the unfailed local engine's episode infos and buffer floats
  bit for bit; the harness also reports ``recovery_overhead_vs_clean`` --
  fault-injected wall seconds over clean pool wall seconds -- the
  machine-relative cost of respawn + command replay that the trend check
  gates.
* **Service**: a live service is crashed mid-stream (stopped without drain,
  replay log torn mid-record), recovered via
  :meth:`~repro.service.server.SchedulingService.recover`, driven further,
  drained, and the combined pre-crash + post-recovery log is verified
  offline.  Any parity mismatch exits non-zero.

Run ``PYTHONPATH=src python scripts/chaos_smoke.py --quick`` for the CI
configuration (~30s wall).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import BackfillEnvironment, RLBackfillAgent  # noqa: E402
from repro.core.observation import ObservationConfig  # noqa: E402
from repro.faults import FaultPlan  # noqa: E402
from repro.obs import (  # noqa: E402
    enable_tracing,
    export_chrome_trace,
    set_trace_spool_dir,
)
from repro.rl.buffer import TrajectoryBuffer  # noqa: E402
from repro.rl.lane_pool import ProcessLanePool  # noqa: E402
from repro.rl.vec_env import VecBackfillEnv  # noqa: E402
from repro.service import (  # noqa: E402
    SchedulingService,
    ServiceClient,
    ServiceConfig,
    read_replay_log,
    verify_replay_log,
)
from repro.workloads.synthetic import SyntheticTraceSpec, synthetic_trace  # noqa: E402

OBS_CONFIG = ObservationConfig(max_queue_size=16)


def parse_args(argv: Optional[List[str]] = None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke preset")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--lanes", type=int, default=8)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--kills", type=int, default=3, help="worker kills drawn into the fault plan"
    )
    parser.add_argument("--out", default=None, help="chaos timing JSON path")
    parser.add_argument(
        "--trace-out",
        default=None,
        help="enable span tracing and write the merged Chrome trace-event "
        "JSON (parent + surviving worker rings; respawned workers' replay "
        "rounds are tagged args.replay=true; view in ui.perfetto.dev)",
    )
    return parser.parse_args(argv)


def make_env(seed: int) -> BackfillEnvironment:
    spec = SyntheticTraceSpec(
        name="chaos",
        num_processors=64,
        mean_interarrival=300.0,
        mean_runtime=3000.0,
        mean_processors=8.0,
    )
    trace = synthetic_trace(spec, num_jobs=600, seed=123)
    return BackfillEnvironment(
        trace,
        policy="FCFS",
        sequence_length=96,
        observation_config=OBS_CONFIG,
        seed=seed,
        training_pool_size=3,
        min_baseline_bsld=1.1,
    )


def buffer_arrays(buffer: TrajectoryBuffer) -> Dict[str, np.ndarray]:
    return {
        "observations": np.stack(buffer.observations),
        "masks": np.stack(buffer.masks),
        "actions": np.asarray(buffer.actions),
        "rewards": np.asarray(buffer.rewards),
        "values": np.asarray(buffer.values),
        "log_probs": np.asarray(buffer.log_probs),
        "advantages": np.asarray(buffer.advantages),
        "returns": np.asarray(buffer.returns),
    }


def lane_rngs(count: int) -> List[np.random.Generator]:
    return [np.random.default_rng(i) for i in range(count)]


def run_pool(
    args: argparse.Namespace,
    agent: RLBackfillAgent,
    fault_plan: Optional[FaultPlan],
    pipeline_depth: int,
) -> Dict[str, object]:
    pool = ProcessLanePool.from_template(
        make_env(seed=5),
        args.lanes,
        seed=11,
        num_workers=args.workers,
        work_stealing=False,
        pipeline_depth=pipeline_depth,
        fault_plan=fault_plan,
    )
    with pool:
        buffer = TrajectoryBuffer()
        t0 = time.perf_counter()
        infos = pool.rollout(agent, args.lanes, buffer, rngs=lane_rngs(args.lanes))
        wall = time.perf_counter() - t0
        stats = pool.stats()
    return {
        "wall_seconds": wall,
        "infos": infos,
        "arrays": buffer_arrays(buffer),
        "respawns": stats["respawns"],
        "replayed_commands": stats["replayed_commands"],
    }


def pool_chaos(args: argparse.Namespace) -> Dict[str, object]:
    """Kill-matrix parity + the recovery-overhead ratio."""
    agent = RLBackfillAgent(observation_config=OBS_CONFIG, seed=5)
    # Ground truth: the unfailed local engine.
    vec = VecBackfillEnv.from_template(make_env(seed=5), args.lanes, seed=11)
    buffer = TrajectoryBuffer()
    reference_infos = vec.rollout(agent, args.lanes, buffer, rngs=lane_rngs(args.lanes))
    reference_arrays = buffer_arrays(buffer)

    plan = FaultPlan.generate(
        args.seed,
        rounds=6,
        num_workers=args.workers,
        num_worker_kills=args.kills,
    )
    clean = run_pool(args, agent, None, pipeline_depth=1)
    columns: Dict[str, Dict[str, object]] = {}
    mismatches: List[str] = []
    for label, depth in (("lockstep", 1), ("pipelined", 2)):
        faulted = run_pool(args, agent, plan, pipeline_depth=depth)
        parity = faulted["infos"] == reference_infos and all(
            np.array_equal(faulted["arrays"][key], reference_arrays[key])
            for key in reference_arrays
        )
        if not parity:
            mismatches.append(f"pool[{label}]: fault-injected rollout diverged")
        if not faulted["respawns"]:
            mismatches.append(f"pool[{label}]: fault plan injected no kills")
        columns[label] = {
            "wall_seconds": faulted["wall_seconds"],
            "respawns": faulted["respawns"],
            "replayed_commands": faulted["replayed_commands"],
            "parity_ok": bool(parity),
        }
    overhead = (
        columns["lockstep"]["wall_seconds"] / clean["wall_seconds"]
        if clean["wall_seconds"] > 0
        else float("inf")
    )
    return {
        "clean_wall_seconds": clean["wall_seconds"],
        "columns": columns,
        "recovery_overhead_vs_clean": overhead,
        "fault_plan": plan.describe(),
        "parity_ok": not mismatches,
        "mismatches": mismatches,
    }


def wire_jobs(rng: np.random.Generator, next_id: int, count: int, procs: int = 64):
    jobs = []
    for k in range(count):
        if rng.random() < 0.25:
            width = int(rng.integers(procs // 2, procs - 4))
            runtime = float(rng.exponential(2000.0)) + 100.0
        else:
            width = int(rng.integers(1, 5))
            runtime = float(rng.exponential(400.0)) + 10.0
        jobs.append(
            {
                "job_id": next_id + k,
                "runtime": runtime,
                "requested_processors": width,
                "requested_time": runtime * 2.0,
            }
        )
    return jobs


def service_chaos(args: argparse.Namespace, log_path: Path) -> Dict[str, object]:
    """Crash a live service mid-stream, tear the log, recover, verify."""
    agent = RLBackfillAgent(seed=args.seed)
    config = ServiceConfig(
        num_processors=64,
        time_scale=5000.0,
        tick_interval=0.01,
        admission_capacity=1e6,
        admission_refill=((0.0, 1e6),),
        replay_log_path=str(log_path),
        replay_durability="fsync",
    )

    async def crash_phase() -> None:
        service = SchedulingService(agent, config)
        async with service:
            host, port = service.address
            rng = np.random.default_rng(args.seed + 2)
            async with ServiceClient(host, port) as client:
                for burst in range(6):
                    response = await client.submit(wire_jobs(rng, burst * 8 + 1, 8))
                    assert response["ok"], response
                    await asyncio.sleep(0.003)
            # Crash: stop without drain; the log keeps only its durable prefix.

    asyncio.run(crash_phase())
    with log_path.open("a", encoding="utf-8") as handle:
        handle.write('{"type": "decision", "index": 10')  # torn mid-record

    torn = read_replay_log(log_path, allow_torn_tail=True)

    async def recovery_phase():
        service = SchedulingService.recover(agent, log_path)
        async with service:
            host, port = service.address
            rng = np.random.default_rng(args.seed + 99)
            async with ServiceClient(host, port, timeout=10.0) as client:
                response = await client.submit_with_retry(wire_jobs(rng, 1000, 8))
                assert response["ok"], response
                drain = await client.drain()
                await client.shutdown()
            await service.wait_stopped()
        return drain

    drain = asyncio.run(recovery_phase())
    check = verify_replay_log(log_path, agent)
    return {
        "torn_tail_detected": bool(torn.torn_tail),
        "jobs_before_crash": len(torn.jobs),
        "jobs_total": int(drain["jobs"]),
        "decisions_total": check.decisions,
        "recovery_ok": bool(check.matched and torn.torn_tail),
        "mismatches": list(check.mismatches),
    }


def main(argv: Optional[List[str]] = None) -> int:
    args = parse_args(argv)
    spool_dir = None
    if args.trace_out:
        enable_tracing()
        # Workers drain their span rings here at pool close; SIGKILLed
        # workers never get the chance (their rings are lost by design),
        # but their respawned replacements export generation-tagged rings
        # whose recovery-replay spans carry args.replay=true.
        spool_dir = tempfile.mkdtemp(prefix="repro-chaos-spans-")
        set_trace_spool_dir(spool_dir)
    t0 = time.perf_counter()
    pool = pool_chaos(args)
    log_path = Path(args.out).parent if args.out else Path(".")
    service = service_chaos(args, log_path / "chaos-replay.jsonl")
    wall = time.perf_counter() - t0

    if args.trace_out:
        trace_path = Path(args.trace_out)
        trace_path.parent.mkdir(parents=True, exist_ok=True)
        summary = export_chrome_trace(trace_path, spool_dir=spool_dir)
        print(
            f"wrote {trace_path} ({summary['events']} spans merged from "
            f"{len(summary['sources'])} ring(s))"
        )
        set_trace_spool_dir(None)
        shutil.rmtree(spool_dir, ignore_errors=True)

    report: Dict[str, object] = {
        "chaos_wall_seconds": wall,
        "pool": pool,
        "service": service,
        "recovery_overhead_vs_clean": pool["recovery_overhead_vs_clean"],
        "pool_parity_ok": 1.0 if pool["parity_ok"] else 0.0,
        "service_recovery_ok": 1.0 if service["recovery_ok"] else 0.0,
        "config": {
            "lanes": args.lanes,
            "workers": args.workers,
            "kills": args.kills,
            "seed": args.seed,
            "quick": args.quick,
        },
    }

    print(
        f"pool: clean {pool['clean_wall_seconds']:.2f}s, "
        f"faulted {pool['columns']['lockstep']['wall_seconds']:.2f}s "
        f"(overhead x{pool['recovery_overhead_vs_clean']:.2f}), "
        f"respawns {pool['columns']['lockstep']['respawns']}"
        f"+{pool['columns']['pipelined']['respawns']}, parity_ok={pool['parity_ok']}"
    )
    print(
        f"service: {service['jobs_before_crash']} jobs survived the crash, "
        f"{service['jobs_total']} total after recovery, "
        f"torn_tail={service['torn_tail_detected']}, "
        f"recovery_ok={service['recovery_ok']}"
    )

    if args.out:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8")
        print(f"wrote {out}")

    failed = False
    if not pool["parity_ok"]:
        print("FAIL: fault-injected pool rollouts diverged from the clean reference:")
        for mismatch in pool["mismatches"]:
            print(f"  {mismatch}")
        failed = True
    if not service["recovery_ok"]:
        print("FAIL: service crash recovery did not verify:")
        for mismatch in service["mismatches"][:5]:
            print(f"  {mismatch}")
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
