"""Nightly quick-scale training-convergence run on the real archive traces.

CI restores the SDSC-SP2/HPC2N SWF files from the actions cache into
``$REPRO_SWF_DIR`` (the same cache the ``real-traces`` smoke job uses) and
runs this script nightly; it trains an RLBackfilling agent at quick scale on
each real trace, records the full per-epoch history, and writes a metrics
JSON for the uploaded artifact.  Exit codes:

* 0 -- every trace trained and its bsld curve converged (final <= first),
* 1 -- training ran but at least one curve failed to converge,
* 2 -- the SWF files are missing (environment/setup problem, not a code bug).

Run locally with:

    REPRO_SWF_DIR=/path/to/swf python scripts/train_convergence.py --out metrics.json
"""

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.experiments.runner import train_rlbackfilling
from repro.workloads import archive

TRACES = ("SDSC-SP2", "HPC2N")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="convergence-metrics.json",
                        help="where to write the metrics JSON")
    parser.add_argument("--traces", nargs="+", default=list(TRACES))
    parser.add_argument("--scale", default="quick")
    parser.add_argument("--epochs", type=int, default=None,
                        help="override the scale's epoch count")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    swf_dir = os.environ.get(archive.SWF_DIR_ENV)
    if not swf_dir:
        print(f"{archive.SWF_DIR_ENV} is not set; nothing to train on", file=sys.stderr)
        return 2
    missing = [name for name in args.traces if archive.real_swf_path(name) is None]
    if missing:
        print(
            f"no SWF archive file found in {swf_dir!r} for: {', '.join(missing)}",
            file=sys.stderr,
        )
        return 2

    from repro.experiments.config import get_scale

    scale = get_scale(args.scale)
    if args.epochs is not None:
        scale = scale.with_epochs(args.epochs)

    metrics = {
        "scale": scale.name,
        "epochs": scale.trainer.epochs,
        "trajectories_per_epoch": scale.trainer.trajectories_per_epoch,
        "seed": args.seed,
        "traces": {},
    }
    diverged = []
    for name in args.traces:
        print(f"training on real {name} at {scale.name} scale ...", flush=True)
        start = time.perf_counter()
        model = train_rlbackfilling(name, policy="FCFS", scale=scale, seed=args.seed)
        elapsed = time.perf_counter() - start
        history = model.history
        improved = history.improved()
        final = history.final()
        metrics["traces"][name] = {
            "policy": model.policy_name,
            "wall_time_seconds": round(elapsed, 1),
            "improved": improved,
            "first_bsld": history.bslds[0],
            "final_bsld": history.bslds[-1],
            "final_baseline_bsld": final.mean_baseline_bsld,
            "improvement_over_baseline": round(final.improvement_over_baseline, 4),
            "bsld_curve": [round(v, 3) for v in history.bslds],
            "reward_curve": [round(v, 4) for v in history.rewards],
            "mean_violations_final": final.mean_violations,
        }
        print(
            f"{name}: bsld {history.bslds[0]:.1f} -> {history.bslds[-1]:.1f} "
            f"(baseline {final.mean_baseline_bsld:.1f}) in {elapsed:.0f}s; "
            f"{'converged' if improved else 'DID NOT CONVERGE'}",
            flush=True,
        )
        if not improved:
            diverged.append(name)

    out = Path(args.out)
    out.write_text(json.dumps(metrics, indent=2) + "\n")
    print(f"\nwrote {out}")
    if diverged:
        print(
            f"training-convergence check FAILED on: {', '.join(diverged)}",
            file=sys.stderr,
        )
        return 1
    print("training-convergence check passed on all traces")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
