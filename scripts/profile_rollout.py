"""Per-phase wall-time breakdown of rollout collection.

Runs the same warm rollout workload through the in-process engine
(``backend="local"``) and the multiprocess lane pool (``backend="process"``)
at both pipeline depths, and prints where the time goes per configuration:

* **encode**  -- batched observation feature encoding
  (:meth:`ObservationBuilder.encode_batch`; worker-side for the pool),
* **forward** -- the batched policy/value forward pass (always parent-side),
* **step**    -- simulator stepping + episode resets (worker-side for the
  pool; includes the baseline simulations of non-pre-sampled resets),
* **ipc wait** -- parent time blocked on result frames, and the workers'
  mean idle fraction while blocked on command frames.

The numbers come from ``engine.stats()`` (cumulative; this script diffs
snapshots around the measured block), so the breakdown is exactly what the
``Trainer`` logs at epoch boundaries.  The pipelined pool should show the
parent's result wait and the workers' idle fraction both shrinking relative
to lockstep -- that overlap is the point of ``pipeline_depth=2``.

Usage:
    PYTHONPATH=src python scripts/profile_rollout.py [--num-envs 16]
        [--trajectories 24] [--num-workers N] [--trace SDSC-SP2]
        [--configs local process:1 process:2]
"""

import argparse
import shutil
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.core import BackfillEnvironment, RLBackfillAgent, Trainer, TrainerConfig
from repro.core.observation import ObservationConfig
from repro.obs import (
    enable_tracing,
    engine_stats_delta,
    export_chrome_trace,
    get_tracer,
    set_trace_spool_dir,
)
from repro.rl.buffer import TrajectoryBuffer
from repro.workloads import load_trace


def parse_config(text: str) -> tuple[str, int]:
    """``"local"`` or ``"process:DEPTH"`` -> (backend, pipeline_depth)."""
    backend, _, depth = text.partition(":")
    if backend not in ("local", "process"):
        raise argparse.ArgumentTypeError(f"unknown backend {backend!r}")
    return backend, int(depth) if depth else 1


def profile(args, backend: str, pipeline_depth: int) -> dict:
    environment = BackfillEnvironment(
        load_trace(args.trace, num_jobs=4000),
        policy="FCFS",
        sequence_length=args.sequence_length,
        observation_config=ObservationConfig(max_queue_size=args.max_queue),
        seed=7,
        training_pool_size=4,
    )
    agent = RLBackfillAgent(observation_config=environment.observation_config, seed=7)
    config = TrainerConfig(
        epochs=1,
        trajectories_per_epoch=4,
        num_envs=args.num_envs,
        backend=backend,
        num_workers=args.num_workers,
        pipeline_depth=pipeline_depth,
    )
    with Trainer(environment, agent, config, seed=7) as trainer:
        # Warm the lanes' training pools so measured resets reuse cached
        # baseline simulations, mirroring the benchmark methodology.
        scratch = TrajectoryBuffer()
        trainer.collect_rollouts(scratch, 2 * args.num_envs)
        before = trainer.vec_env.stats()

        buffer = TrajectoryBuffer()
        start = time.perf_counter()
        infos = trainer.collect_rollouts(buffer, args.trajectories)
        elapsed = time.perf_counter() - start
        after = trainer.vec_env.stats()

    # engine_stats_delta recomputes worker_idle_fraction over the measured
    # block only (the stats() value is cumulative since pool construction and
    # would fold in the warmup) -- the same helper behind the Trainer's
    # epoch-boundary engine log.
    delta = engine_stats_delta(after, before)
    decisions = sum(info["episode_steps"] for info in infos)
    return {
        "label": backend if backend == "local" else f"{backend}[depth={pipeline_depth}]",
        "decisions_per_sec": decisions / elapsed,
        "wall_s": elapsed,
        "idle_fraction": delta.pop("worker_idle_fraction", 0.0),
        **{key: value for key, value in delta.items() if not isinstance(value, str)},
    }


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("--trace", default="SDSC-SP2")
    parser.add_argument("--num-envs", type=int, default=16)
    parser.add_argument("--num-workers", type=int, default=None)
    parser.add_argument("--trajectories", type=int, default=24)
    parser.add_argument("--sequence-length", type=int, default=256)
    parser.add_argument("--max-queue", type=int, default=32)
    parser.add_argument(
        "--configs",
        nargs="+",
        type=parse_config,
        default=[("local", 1), ("process", 1), ("process", 2)],
        metavar="BACKEND[:DEPTH]",
        help="configurations to profile (default: local process:1 process:2)",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        help="enable span tracing and write a Chrome trace-event JSON "
        "(chrome://tracing / Perfetto) covering every profiled rollout",
    )
    args = parser.parse_args()

    spool_dir = None
    if args.trace_out:
        enable_tracing()
        # Process-backend workers drain their span rings into sidecar files
        # here at pool shutdown; the export below merges them with the parent
        # ring so the trace is no longer parent-only (mostly empty) for
        # process configurations.
        spool_dir = tempfile.mkdtemp(prefix="repro-spans-")
        set_trace_spool_dir(spool_dir)

    phases = ("encode_s", "forward_s", "step_s", "result_wait_s")
    rows = []
    for backend, depth in args.configs:
        print(f"profiling {backend} pipeline_depth={depth} ...", flush=True)
        rows.append(profile(args, backend, depth))

    if args.trace_out:
        trace_path = Path(args.trace_out)
        trace_path.parent.mkdir(parents=True, exist_ok=True)
        summary = export_chrome_trace(trace_path, spool_dir=spool_dir)
        print(
            f"wrote {trace_path} ({summary['events']} spans merged from "
            f"{len(summary['sources'])} ring(s))"
        )
        for label in summary["overflowed"]:
            print(
                f"WARNING: span ring overflowed in {label}; "
                "its oldest spans are missing from the merged trace"
            )
        set_trace_spool_dir(None)
        shutil.rmtree(spool_dir, ignore_errors=True)

    header = (
        f"{'configuration':<18} {'dec/s':>8} {'wall':>7} "
        + "".join(f"{phase[:-2]:>9} " for phase in phases)
        + f"{'other':>8} {'idle%':>6}"
    )
    print()
    print(header)
    print("-" * len(header))
    for row in rows:
        accounted = sum(row[phase] for phase in phases)
        other = max(0.0, row["rollout_s"] - accounted)
        print(
            f"{row['label']:<18} {row['decisions_per_sec']:>8,.0f} "
            f"{row['wall_s']:>6.2f}s "
            + "".join(
                f"{row[phase]:>8.2f}s " for phase in phases
            )
            + f"{other:>7.2f}s {row['idle_fraction']:>6.1%}"
        )
    print(
        "\nphases: encode/step are worker-side for the process backend; "
        "result_wait is parent time blocked on result frames; idle% is the "
        "workers' mean command-wait fraction (0 for local).  Overlap shows "
        "up as result_wait + idle% shrinking at pipeline_depth=2."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
