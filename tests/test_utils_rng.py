"""Tests for deterministic RNG helpers."""

import numpy as np
import pytest

from repro.utils.rng import as_rng, check_probability, derive_seed, spawn_rngs


class TestAsRng:
    def test_none_returns_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        assert as_rng(42).integers(0, 1000) == as_rng(42).integers(0, 1000)

    def test_different_seeds_differ(self):
        a = as_rng(1).random(8)
        b = as_rng(2).random(8)
        assert not np.allclose(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(7)
        assert as_rng(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(5)
        assert isinstance(as_rng(seq), np.random.Generator)


class TestSpawnRngs:
    def test_spawn_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_spawn_zero(self):
        assert spawn_rngs(0, 0) == []

    def test_spawn_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_children_are_independent(self):
        a, b = spawn_rngs(3, 2)
        assert not np.allclose(a.random(16), b.random(16))

    def test_spawn_reproducible_from_same_seed(self):
        first = [g.integers(0, 10**9) for g in spawn_rngs(11, 3)]
        second = [g.integers(0, 10**9) for g in spawn_rngs(11, 3)]
        assert first == second

    def test_spawn_from_generator(self):
        children = spawn_rngs(np.random.default_rng(0), 4)
        assert len(children) == 4


class TestDeriveSeed:
    def test_stable(self):
        assert derive_seed(10, 3) == derive_seed(10, 3)

    def test_index_changes_seed(self):
        assert derive_seed(10, 0) != derive_seed(10, 1)

    def test_base_changes_seed(self):
        assert derive_seed(1, 0) != derive_seed(2, 0)

    def test_rejects_generator(self):
        with pytest.raises(TypeError):
            derive_seed(np.random.default_rng(0), 1)

    def test_none_base_allowed(self):
        assert isinstance(derive_seed(None, 2), int)


class TestCheckProbability:
    @pytest.mark.parametrize("p", [0.0, 0.5, 1.0])
    def test_valid(self, p):
        assert check_probability(p) == p

    @pytest.mark.parametrize("p", [-0.1, 1.1, 5.0])
    def test_invalid(self, p):
        with pytest.raises(ValueError):
            check_probability(p)
