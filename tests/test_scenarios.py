"""Scenario subsystem: transforms, registry, and the evaluation harness."""

import json

import numpy as np
import pytest

from repro.scenarios.evaluate import (
    HEURISTIC_POLICIES,
    METRIC_FIELDS,
    evaluate_cell,
    evaluate_suite,
    make_configuration,
    report_to_json,
    scenario_sequences,
)
from repro.scenarios.registry import (
    CORE_SUITE,
    ClusterSpec,
    DowntimeSpec,
    ScenarioSpec,
    get_scenario,
    register_scenario,
    scenario_names,
    suite_scenarios,
)
from repro.scenarios.transforms import (
    ArrivalThin,
    BurstInject,
    Compose,
    EstimateInflate,
    EstimateNoise,
    LoadScale,
    SizeFilter,
    SizeRescale,
    apply_transforms,
)
from repro.experiments.config import get_scale
from repro.workloads.job import Job, Trace
from repro.workloads.lublin import lublin_trace


@pytest.fixture(scope="module")
def base_trace():
    return lublin_trace(400, seed=7, name="base")


class TestTransforms:
    def test_load_scale_compresses_interarrivals(self, base_trace):
        rng = np.random.default_rng(0)
        scaled = LoadScale(2.0).apply(base_trace, rng)
        assert len(scaled) == len(base_trace)
        assert scaled.duration == pytest.approx(base_trace.duration / 2.0)
        # Everything but submit times is untouched.
        assert [j.runtime for j in scaled] == [j.runtime for j in base_trace]
        assert [j.requested_processors for j in scaled] == [
            j.requested_processors for j in base_trace
        ]

    def test_load_scale_validation(self):
        with pytest.raises(ValueError):
            LoadScale(0.0)

    def test_burst_inject_preserves_jobs(self, base_trace):
        rng = np.random.default_rng(1)
        bursty = BurstInject(num_bursts=3, burst_length=10, span_seconds=60.0).apply(
            base_trace, rng
        )
        assert len(bursty) == len(base_trace)
        assert sorted(j.job_id for j in bursty) == sorted(j.job_id for j in base_trace)
        # Bursts create tighter minimum gaps than the original trace.
        def min_gap(trace):
            submits = sorted(j.submit_time for j in trace)
            return min(b - a for a, b in zip(submits, submits[1:]))
        assert min_gap(bursty) <= min_gap(base_trace)

    def test_arrival_thin_drops_jobs(self, base_trace):
        rng = np.random.default_rng(2)
        thinned = ArrivalThin(keep_fraction=0.5).apply(base_trace, rng)
        assert len(thinned) < len(base_trace)
        assert len(thinned) >= ArrivalThin().min_jobs

    def test_arrival_thin_keeps_minimum(self, base_trace):
        rng = np.random.default_rng(3)
        thinned = ArrivalThin(keep_fraction=0.0001, min_jobs=16).apply(base_trace, rng)
        assert len(thinned) >= 16

    def test_estimate_noise_perturbs_requests(self, base_trace):
        rng = np.random.default_rng(4)
        noisy = EstimateNoise(sigma=1.0).apply(base_trace, rng)
        changed = sum(
            1
            for a, b in zip(base_trace, noisy)
            if abs(a.requested_time - b.requested_time) > 1e-9
        )
        assert changed > len(base_trace) * 0.9
        assert all(j.requested_time >= 1.0 for j in noisy)

    def test_estimate_noise_floor_at_runtime(self, base_trace):
        rng = np.random.default_rng(5)
        noisy = EstimateNoise(sigma=2.0, allow_underestimate=False).apply(base_trace, rng)
        assert all(j.requested_time >= j.runtime - 1e-9 for j in noisy)

    def test_estimate_inflate(self, base_trace):
        rng = np.random.default_rng(6)
        inflated = EstimateInflate(3.0).apply(base_trace, rng)
        for a, b in zip(base_trace, inflated):
            assert b.requested_time == pytest.approx(a.requested_time * 3.0)

    def test_size_filter(self, base_trace):
        rng = np.random.default_rng(7)
        narrow = SizeFilter(min_processors=1, max_processors=4).apply(base_trace, rng)
        assert all(j.requested_processors <= 4 for j in narrow)
        with pytest.raises(ValueError):
            SizeFilter(min_processors=10_000).apply(base_trace, rng)

    def test_size_rescale_clips_to_machine(self, base_trace):
        rng = np.random.default_rng(8)
        wide = SizeRescale(1000.0).apply(base_trace, rng)
        assert all(j.requested_processors == base_trace.num_processors for j in wide)

    def test_transforms_are_pure(self, base_trace):
        before = [(j.submit_time, j.requested_time) for j in base_trace]
        apply_transforms(
            base_trace, [LoadScale(2.0), EstimateNoise(sigma=1.0)], seed=0
        )
        assert [(j.submit_time, j.requested_time) for j in base_trace] == before

    def test_apply_transforms_deterministic(self, base_trace):
        chain = [ArrivalThin(0.7), BurstInject(2, 8, 30.0), EstimateNoise(0.5)]
        a = apply_transforms(base_trace, chain, seed=11)
        b = apply_transforms(base_trace, chain, seed=11)
        assert [(j.job_id, j.submit_time, j.requested_time) for j in a] == [
            (j.job_id, j.submit_time, j.requested_time) for j in b
        ]
        c = apply_transforms(base_trace, chain, seed=12)
        assert [(j.job_id, j.submit_time) for j in a] != [
            (j.job_id, j.submit_time) for j in c
        ]

    def test_composition_is_order_sensitive(self, base_trace):
        """thin-then-burst bursts the survivors; burst-then-thin thins the
        bursts -- the two orders must not commute."""
        thin = ArrivalThin(keep_fraction=0.6)
        burst = BurstInject(num_bursts=3, burst_length=12, span_seconds=45.0)
        ab = apply_transforms(base_trace, [thin, burst], seed=5)
        ba = apply_transforms(base_trace, [burst, thin], seed=5)
        assert [(j.job_id, round(j.submit_time, 6)) for j in ab] != [
            (j.job_id, round(j.submit_time, 6)) for j in ba
        ]

    def test_compose_matches_apply_transforms(self, base_trace):
        chain = (LoadScale(1.5), EstimateInflate(2.0))
        composed = Compose(chain).apply(base_trace, np.random.default_rng(3))
        sequential = apply_transforms(base_trace, chain, np.random.default_rng(3))
        assert [(j.submit_time, j.requested_time) for j in composed] == [
            (j.submit_time, j.requested_time) for j in sequential
        ]

    def test_describe_is_json_serializable(self):
        chain = Compose((LoadScale(2.0), ArrivalThin(0.5), EstimateNoise(0.3)))
        json.dumps(chain.describe())


class TestDowntimeSpec:
    def test_exactly_one_timing_form(self):
        with pytest.raises(ValueError):
            DowntimeSpec(start=1.0, duration=2.0, start_fraction=0.1,
                         duration_fraction=0.1, processors=1)
        with pytest.raises(ValueError):
            DowntimeSpec(processors=1)

    def test_exactly_one_size_form(self):
        with pytest.raises(ValueError):
            DowntimeSpec(start=0.0, duration=1.0)
        with pytest.raises(ValueError):
            DowntimeSpec(start=0.0, duration=1.0, processors=2, fraction_of_machine=0.5)

    def test_fractional_resolution(self):
        spec = DowntimeSpec(start_fraction=0.25, duration_fraction=0.5,
                            fraction_of_machine=0.5)
        window = spec.resolve(span_seconds=1000.0, num_processors=64)
        assert window.start == pytest.approx(250.0)
        assert window.end == pytest.approx(750.0)
        assert window.processors == 32

    def test_absolute_resolution(self):
        spec = DowntimeSpec(start=10.0, duration=20.0, processors=3)
        window = spec.resolve(span_seconds=99999.0, num_processors=8)
        assert (window.start, window.end, window.processors) == (10.0, 30.0, 3)


class TestRegistry:
    def test_core_suite_is_large_enough(self):
        assert len(CORE_SUITE) >= 8
        assert len(set(CORE_SUITE)) == len(CORE_SUITE)
        for name in CORE_SUITE:
            assert get_scenario(name).name == name

    def test_core_suite_has_downtime_scenario(self):
        assert any(get_scenario(name).cluster.has_downtime for name in CORE_SUITE)

    def test_unknown_scenario(self):
        with pytest.raises(KeyError):
            get_scenario("no-such-scenario")

    def test_register_and_overwrite(self):
        spec = ScenarioSpec(name="tmp-test-scenario", base_trace="Lublin-1")
        register_scenario(spec)
        try:
            assert "tmp-test-scenario" in scenario_names()
            with pytest.raises(ValueError):
                register_scenario(spec)
            register_scenario(spec, overwrite=True)
        finally:
            from repro.scenarios import registry

            registry._REGISTRY.pop("tmp-test-scenario", None)

    def test_suite_resolution_forms(self):
        assert [s.name for s in suite_scenarios("core")] == list(CORE_SUITE)
        assert [s.name for s in suite_scenarios("baseline-sdsc,burst-storm")] == [
            "baseline-sdsc",
            "burst-storm",
        ]
        assert [s.name for s in suite_scenarios(["estimate-noise"])] == ["estimate-noise"]
        with pytest.raises(ValueError):
            suite_scenarios([])

    def test_build_is_seed_deterministic(self):
        spec = get_scenario("burst-storm")
        a = spec.build(seed=3, num_jobs=300)
        b = spec.build(seed=3, num_jobs=300)
        assert [(j.job_id, j.submit_time) for j in a.trace] == [
            (j.job_id, j.submit_time) for j in b.trace
        ]
        c = spec.build(seed=4, num_jobs=300)
        assert [(j.job_id, j.submit_time) for j in a.trace] != [
            (j.job_id, j.submit_time) for j in c.trace
        ]

    def test_build_applies_transforms(self):
        clean = get_scenario("baseline-sdsc").build(seed=0, num_jobs=300)
        surged = get_scenario("load-surge-1.5x").build(seed=0, num_jobs=300)
        assert surged.trace.duration < clean.trace.duration

    def test_capacity_schedule_resolution(self):
        built = get_scenario("downtime-half").build(seed=0, num_jobs=300)
        assert built.has_downtime
        windows = built.capacity_schedule(span_seconds=10_000.0)
        assert len(windows) == 1
        assert windows[0].processors == built.trace.num_processors // 2
        clean = get_scenario("baseline-sdsc").build(seed=0, num_jobs=300)
        assert clean.capacity_schedule(10_000.0) is None

    def test_describe_is_json_serializable(self):
        for name in CORE_SUITE:
            json.dumps(get_scenario(name).describe())


class TestEvaluationHarness:
    def test_make_configuration_heuristics(self):
        for policy in HEURISTIC_POLICIES:
            configuration = make_configuration(policy)
            assert configuration.label == policy
        with pytest.raises(ValueError):
            make_configuration("rl")  # needs an agent bundle
        with pytest.raises(KeyError):
            make_configuration("nope")

    def test_evaluate_cell_fields(self):
        scale = get_scale("smoke")
        built = get_scenario("baseline-lublin").build(seed=0, num_jobs=scale.trace_jobs)
        row = evaluate_cell(built, "easy", scale, seed=0)
        assert set(row) == set(METRIC_FIELDS)
        assert row["average_bounded_slowdown"] >= 1.0
        assert np.isnan(row["window_utilization"])  # no downtime here

    def test_downtime_cell_reports_window_utilization_below_capacity(self):
        """Acceptance criterion: capacity actually drops under every policy."""
        scale = get_scale("smoke")
        built = get_scenario("downtime-half").build(seed=0, num_jobs=scale.trace_jobs)
        sequences = scenario_sequences(built, scale, seed=0)
        for policy in HEURISTIC_POLICIES:
            row = evaluate_cell(built, policy, scale, seed=0, sequences=sequences)
            assert 0.0 <= row["window_utilization"] < 1.0

    def test_report_deterministic_and_worker_count_invariant(self):
        kwargs = dict(
            suite="baseline-lublin,downtime-half",
            scale="smoke",
            seed=0,
            policies=HEURISTIC_POLICIES,
        )
        inline_report, _ = evaluate_suite(num_workers=0, **kwargs)
        inline_again, _ = evaluate_suite(num_workers=0, **kwargs)
        pooled_report, timing = evaluate_suite(num_workers=2, **kwargs)
        assert report_to_json(inline_report) == report_to_json(inline_again)
        assert report_to_json(inline_report) == report_to_json(pooled_report)
        assert timing["cells"] == 4
        assert timing["scenario_eval_wall_seconds"] > 0

    def test_report_seed_sensitivity(self):
        kwargs = dict(
            suite="baseline-lublin", scale="smoke", policies=("easy",), num_workers=0
        )
        a, _ = evaluate_suite(seed=0, **kwargs)
        b, _ = evaluate_suite(seed=1, **kwargs)
        assert report_to_json(a) != report_to_json(b)

    def test_report_structure(self):
        report, _ = evaluate_suite(
            suite="baseline-lublin,estimate-noise",
            scale="smoke",
            seed=0,
            policies=HEURISTIC_POLICIES,
            num_workers=0,
        )
        assert report["policies"] == list(HEURISTIC_POLICIES)
        for name in ("baseline-lublin", "estimate-noise"):
            block = report["scenarios"][name]
            assert set(block["policies"]) == set(HEURISTIC_POLICIES)
            assert block["ranking"][0] == block["best_policy"]
            assert sorted(block["ranking"]) == sorted(HEURISTIC_POLICIES)
        assert sum(report["summary"]["wins"].values()) == 2
        # Canonical serialization round-trips.
        parsed = json.loads(report_to_json(report))
        assert parsed["suite"] == "baseline-lublin,estimate-noise"

    def test_worker_error_propagates(self):
        """A failing cell surfaces the worker's traceback, not a hang."""
        from repro.experiments.config import get_scale
        from repro.scenarios.pool import ScenarioWorkerPool

        bad = ScenarioSpec(name="tmp-bad-scenario", base_trace="no-such-trace")
        with ScenarioWorkerPool(
            scenarios=[bad],
            policies=["easy"],
            scale=get_scale("smoke"),
            seed=0,
            num_workers=1,
        ) as pool:
            with pytest.raises(RuntimeError, match="tmp-bad-scenario"):
                pool.run()

    def test_evaluate_configurations_accepts_scenario_names(self):
        """The runner wiring: scenario: names resolve through the registry."""
        from repro.experiments.runner import evaluate_configurations

        results = evaluate_configurations(
            "scenario:baseline-lublin",
            [make_configuration("easy")],
            scale="smoke",
            seed=0,
        )
        assert set(results) == {"easy"}
        assert results["easy"] >= 1.0
