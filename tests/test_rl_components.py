"""Tests for NN modules, optimizers, the trajectory buffer, and running stats."""

import numpy as np
import pytest

from repro.rl.autograd import Tensor
from repro.rl.buffer import TrajectoryBuffer, discount_cumsum
from repro.rl.nn import MLP, Linear, Module, ReLU, Sequential, Tanh
from repro.rl.optim import SGD, Adam
from repro.rl.running_stat import RunningMeanStd


class TestLinear:
    def test_output_shape(self):
        layer = Linear(4, 3, seed=0)
        out = layer(Tensor(np.ones((5, 4))))
        assert out.shape == (5, 3)

    def test_parameters(self):
        layer = Linear(4, 3, seed=0)
        assert len(layer.parameters()) == 2
        assert layer.num_parameters() == 4 * 3 + 3

    def test_no_bias(self):
        layer = Linear(4, 3, bias=False, seed=0)
        assert len(layer.parameters()) == 1

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            Linear(0, 3)

    def test_deterministic_init(self):
        a = Linear(4, 3, seed=7).weight.numpy()
        b = Linear(4, 3, seed=7).weight.numpy()
        np.testing.assert_allclose(a, b)


class TestMLP:
    def test_forward_shape(self):
        mlp = MLP([6, 8, 2], seed=0)
        assert mlp(Tensor(np.ones((3, 6)))).shape == (3, 2)

    def test_activations(self):
        for activation in ("tanh", "relu"):
            mlp = MLP([4, 4, 1], activation=activation, seed=0)
            assert mlp(Tensor(np.ones((2, 4)))).shape == (2, 1)

    def test_unknown_activation(self):
        with pytest.raises(KeyError):
            MLP([4, 1], activation="sigmoid")

    def test_too_few_sizes(self):
        with pytest.raises(ValueError):
            MLP([4])

    def test_parameter_count(self):
        mlp = MLP([4, 8, 2], seed=0)
        assert mlp.num_parameters() == (4 * 8 + 8) + (8 * 2 + 2)

    def test_gradients_flow_to_all_parameters(self):
        mlp = MLP([4, 8, 1], seed=0)
        loss = mlp(Tensor(np.random.default_rng(0).normal(size=(5, 4)))).sum()
        loss.backward()
        assert all(p.grad is not None for p in mlp.parameters())

    def test_state_dict_round_trip(self):
        a = MLP([4, 6, 2], seed=0)
        b = MLP([4, 6, 2], seed=1)
        b.load_state_dict(a.state_dict())
        x = Tensor(np.ones((2, 4)))
        np.testing.assert_allclose(a(x).numpy(), b(x).numpy())

    def test_state_dict_shape_mismatch(self):
        a = MLP([4, 6, 2], seed=0)
        b = MLP([4, 8, 2], seed=0)
        with pytest.raises(ValueError):
            b.load_state_dict(a.state_dict())

    def test_sequential_iteration(self):
        seq = Sequential(Linear(2, 2, seed=0), Tanh(), ReLU())
        assert len(seq) == 3
        assert isinstance(list(seq)[1], Tanh)


class TestQualifiedStateDict:
    """State dicts key parameters by attribute path, not flat index."""

    def test_mlp_keys_are_qualified_paths(self):
        mlp = MLP([4, 6, 2], seed=0)
        assert list(mlp.state_dict()) == [
            "network.0.weight",
            "network.0.bias",
            "network.2.weight",
            "network.2.bias",
        ]

    def test_named_parameters_order_matches_parameters(self):
        mlp = MLP([4, 6, 2], seed=0)
        named = mlp.named_parameters()
        assert [param for _, param in named] == mlp.parameters()

    def test_attribute_order_cannot_scramble_a_load(self):
        """Same parameter count and shapes, different attribute layout.

        With flat-index keys this silently loaded ``first``'s weights into
        ``second`` (the checkpoint-into-the-wrong-layers bug); qualified
        paths map each array to its named layer regardless of the order the
        attributes were defined in.
        """

        class Forward(Module):
            def __init__(self, seed):
                self.first = Linear(3, 3, seed=seed)
                self.second = Linear(3, 3, seed=seed + 1)

            def forward(self, x):
                return self.second(self.first(x))

        class Backward(Module):
            def __init__(self, seed):
                self.second = Linear(3, 3, seed=seed + 1)
                self.first = Linear(3, 3, seed=seed)

            def forward(self, x):
                return self.second(self.first(x))

        source = Forward(seed=0)
        target = Backward(seed=7)
        target.load_state_dict(source.state_dict())
        np.testing.assert_array_equal(
            target.first.weight.numpy(), source.first.weight.numpy()
        )
        np.testing.assert_array_equal(
            target.second.weight.numpy(), source.second.weight.numpy()
        )
        x = Tensor(np.random.default_rng(0).normal(size=(2, 3)))
        np.testing.assert_array_equal(source(x).numpy(), target(x).numpy())

    def test_missing_and_unexpected_keys_are_reported(self):
        mlp = MLP([4, 6, 2], seed=0)
        state = mlp.state_dict()
        state["network.4.weight"] = state.pop("network.2.weight")
        with pytest.raises(ValueError, match="network.2.weight"):
            mlp.load_state_dict(state)
        with pytest.raises(ValueError, match="network.4.weight"):
            mlp.load_state_dict(state)

    def test_index_keyed_fallback_loads_with_deprecation_warning(self):
        a = MLP([4, 6, 2], seed=0)
        b = MLP([4, 6, 2], seed=1)
        legacy = {str(i): p.data.copy() for i, p in enumerate(a.parameters())}
        with pytest.warns(DeprecationWarning, match="index-keyed"):
            b.load_state_dict(legacy)
        x = Tensor(np.ones((2, 4)))
        np.testing.assert_allclose(a(x).numpy(), b(x).numpy())

    def test_index_keyed_fallback_still_checks_count_and_shape(self):
        mlp = MLP([4, 6, 2], seed=0)
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="parameters"):
                mlp.load_state_dict({"0": np.zeros((4, 6))})
        legacy = {str(i): p.data.copy() for i, p in enumerate(mlp.parameters())}
        legacy["0"] = np.zeros((9, 9))
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="shape mismatch"):
                mlp.load_state_dict(legacy)

    def test_shared_tensor_appears_once(self):
        class Tied(Module):
            def __init__(self):
                self.embed = Linear(4, 4, bias=False, seed=0)
                self.tied = self.embed.weight  # same tensor, second path

            def forward(self, x):
                return self.embed(x)

        module = Tied()
        assert len(module.parameters()) == 1
        assert list(module.state_dict()) == ["embed.weight"]


class TestOptimizers:
    def _quadratic_problem(self):
        target = np.array([1.0, -2.0, 3.0])
        param = Tensor(np.zeros(3), requires_grad=True)
        return param, target

    def test_sgd_reduces_loss(self):
        param, target = self._quadratic_problem()
        opt = SGD([param], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            loss = ((param - Tensor(target)) ** 2).sum()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(param.data, target, atol=1e-3)

    def test_sgd_momentum(self):
        param, target = self._quadratic_problem()
        opt = SGD([param], lr=0.05, momentum=0.9)
        for _ in range(200):
            opt.zero_grad()
            ((param - Tensor(target)) ** 2).sum().backward()
            opt.step()
        np.testing.assert_allclose(param.data, target, atol=1e-2)

    def test_adam_reduces_loss(self):
        param, target = self._quadratic_problem()
        opt = Adam([param], lr=0.1)
        for _ in range(300):
            opt.zero_grad()
            ((param - Tensor(target)) ** 2).sum().backward()
            opt.step()
        np.testing.assert_allclose(param.data, target, atol=1e-2)

    def test_empty_parameters_rejected(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.1)

    def test_invalid_lr(self):
        param = Tensor(np.zeros(2), requires_grad=True)
        with pytest.raises(ValueError):
            SGD([param], lr=0.0)

    def test_non_grad_parameter_rejected(self):
        with pytest.raises(ValueError):
            Adam([Tensor(np.zeros(2))], lr=0.1)

    def test_clip_grad_norm(self):
        param = Tensor(np.zeros(4), requires_grad=True)
        opt = SGD([param], lr=0.1)
        (param * 100.0).sum().backward()
        norm = opt.clip_grad_norm(1.0)
        assert norm == pytest.approx(200.0)
        assert np.linalg.norm(param.grad) == pytest.approx(1.0)

    def test_step_skips_parameters_without_grad(self):
        param = Tensor(np.ones(2), requires_grad=True)
        Adam([param], lr=0.1).step()  # no backward yet, must not crash
        np.testing.assert_allclose(param.data, np.ones(2))


class TestDiscountCumsum:
    def test_gamma_one_is_reverse_cumsum(self):
        values = np.array([1.0, 2.0, 3.0])
        np.testing.assert_allclose(discount_cumsum(values, 1.0), [6.0, 5.0, 3.0])

    def test_gamma_zero_is_identity(self):
        values = np.array([1.0, 2.0, 3.0])
        np.testing.assert_allclose(discount_cumsum(values, 0.0), values)

    def test_discounting(self):
        values = np.array([1.0, 1.0])
        np.testing.assert_allclose(discount_cumsum(values, 0.5), [1.5, 1.0])


class TestTrajectoryBuffer:
    def _fill_episode(self, buffer, rewards, values=None):
        values = values if values is not None else [0.0] * len(rewards)
        for i, (r, v) in enumerate(zip(rewards, values)):
            buffer.store(np.zeros(3), np.ones(2), i % 2, r, v, -0.5)
        buffer.finish_path(0.0)

    def test_store_and_len(self):
        buffer = TrajectoryBuffer()
        self._fill_episode(buffer, [0.0, 0.0, 1.0])
        assert len(buffer) == 3

    def test_returns_terminal_only_reward(self):
        buffer = TrajectoryBuffer(gamma=1.0, lam=1.0)
        self._fill_episode(buffer, [0.0, 0.0, 2.0])
        data = buffer.get()
        np.testing.assert_allclose(data["returns"], [2.0, 2.0, 2.0])

    def test_advantages_normalized(self):
        buffer = TrajectoryBuffer()
        self._fill_episode(buffer, [0.0, 1.0, 0.0, 3.0])
        data = buffer.get()
        assert abs(data["advantages"].mean()) < 1e-9
        assert data["advantages"].std() == pytest.approx(1.0, abs=1e-6)

    def test_advantage_uses_value_baseline(self):
        buffer = TrajectoryBuffer(gamma=1.0, lam=1.0)
        # Perfect value predictions -> raw advantages are all zero -> the
        # normalized advantages should stay (near) zero rather than explode.
        self._fill_episode(buffer, [0.0, 0.0, 4.0], values=[4.0, 4.0, 4.0])
        data = buffer.get()
        np.testing.assert_allclose(data["advantages"], np.zeros(3), atol=1e-9)

    def test_get_clears_buffer(self):
        buffer = TrajectoryBuffer()
        self._fill_episode(buffer, [1.0])
        buffer.get()
        assert len(buffer) == 0

    def test_get_empty_raises(self):
        with pytest.raises(RuntimeError):
            TrajectoryBuffer().get()

    def test_get_with_open_path_raises(self):
        buffer = TrajectoryBuffer()
        buffer.store(np.zeros(3), np.ones(2), 0, 1.0, 0.0, -0.5)
        with pytest.raises(RuntimeError):
            buffer.get()

    def test_multiple_paths(self):
        buffer = TrajectoryBuffer(gamma=1.0, lam=1.0)
        self._fill_episode(buffer, [1.0, 1.0])
        self._fill_episode(buffer, [5.0])
        data = buffer.get()
        assert data["observations"].shape == (3, 3)
        np.testing.assert_allclose(data["returns"], [2.0, 1.0, 5.0])

    def test_bootstrap_value(self):
        buffer = TrajectoryBuffer(gamma=1.0, lam=1.0)
        buffer.store(np.zeros(3), np.ones(2), 0, 1.0, 0.0, -0.5)
        buffer.finish_path(last_value=10.0)
        data = buffer.get()
        np.testing.assert_allclose(data["returns"], [11.0])

    def test_invalid_gamma(self):
        with pytest.raises(ValueError):
            TrajectoryBuffer(gamma=1.5)

    def test_shapes_in_get(self):
        buffer = TrajectoryBuffer()
        self._fill_episode(buffer, [0.0, 1.0])
        data = buffer.get()
        assert data["masks"].shape == (2, 2)
        assert data["actions"].dtype == np.int64
        assert data["log_probs"].shape == (2,)


class TestRunningMeanStd:
    def test_scalar_stream(self):
        stat = RunningMeanStd()
        for value in [1.0, 2.0, 3.0, 4.0]:
            stat.update(value)
        assert stat.mean == pytest.approx(2.5)
        assert stat.variance == pytest.approx(np.var([1, 2, 3, 4], ddof=1))

    def test_vector_stream(self):
        stat = RunningMeanStd(shape=(2,))
        stat.update_batch([[1.0, 10.0], [3.0, 30.0]])
        np.testing.assert_allclose(stat.mean, [2.0, 20.0])

    def test_normalize(self):
        stat = RunningMeanStd()
        stat.update_batch([0.0, 2.0])
        assert stat.normalize(1.0) == pytest.approx(0.0)

    def test_single_sample_variance_is_one(self):
        stat = RunningMeanStd()
        stat.update(5.0)
        assert stat.variance == pytest.approx(1.0)
