"""Tests for the CI rollout-throughput trend check (scripts/check_benchmark_trend.py).

The check's three outcomes must stay distinguishable: a metric can PASS or
REGRESS (verdicts), be GATED off by the run's usable-core count (expected on
small runners, never a failure), or be MISSING from the results JSON (warn by
default, fail under ``--strict``).  A core-gated metric whose benchmark did
not record its core count is MISSING, not gated -- the regression that let a
still-unmeasured baseline pass silently.
"""

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "check_benchmark_trend",
    Path(__file__).resolve().parents[1] / "scripts" / "check_benchmark_trend.py",
)
trend = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(trend)


def write_results(tmp_path, benchmarks):
    path = tmp_path / "results.json"
    path.write_text(json.dumps({"benchmarks": benchmarks}))
    return path


def write_baseline(tmp_path, metrics, tolerance=0.2):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"tolerance": tolerance, "metrics": metrics}))
    return path


def bench(name, extra_info=None, stats=None):
    return {"name": f"benchmarks/x.py::{name}", "extra_info": extra_info or {}, "stats": stats or {}}


class TestVerdicts:
    def test_passing_metric(self, tmp_path, capsys):
        results = write_results(tmp_path, [bench("b", {"ratio": 4.0})])
        baseline = write_baseline(tmp_path, [{"benchmark": "b", "key": "ratio", "baseline": 3.8}])
        assert trend.check(results, baseline) == 0
        assert "ok b:ratio" in capsys.readouterr().out

    def test_higher_is_better_regression_fails(self, tmp_path, capsys):
        results = write_results(tmp_path, [bench("b", {"ratio": 2.0})])
        baseline = write_baseline(tmp_path, [{"benchmark": "b", "key": "ratio", "baseline": 3.8}])
        assert trend.check(results, baseline) == 1
        assert "REGRESSION" in capsys.readouterr().err

    def test_lower_is_better_ceiling(self, tmp_path, capsys):
        metrics = [
            {
                "benchmark": "b",
                "key": "overhead",
                "baseline": 1.6,
                "higher_is_better": False,
                "tolerance": 0.25,
            }
        ]
        ok = write_results(tmp_path, [bench("b", {"overhead": 1.9})])
        assert trend.check(ok, write_baseline(tmp_path, metrics)) == 0
        too_slow = write_results(tmp_path, [bench("b", {"overhead": 2.1})])
        assert trend.check(too_slow, write_baseline(tmp_path, metrics)) == 1

    def test_relative_to_divides_stats(self, tmp_path):
        results = write_results(
            tmp_path,
            [
                bench("sim", stats={"mean": 6.0}),
                bench("fwd", stats={"mean": 2.0}),
            ],
        )
        baseline = write_baseline(
            tmp_path,
            [
                {
                    "benchmark": "sim",
                    "stat": "mean",
                    "relative_to": {"benchmark": "fwd", "stat": "mean"},
                    "baseline": 3.3,
                    "higher_is_better": False,
                }
            ],
        )
        assert trend.check(results, baseline) == 0


class TestGatedVsMissing:
    CORE_GATED = [
        {
            "benchmark": "pool",
            "key": "speedup_pipelined_vs_lockstep",
            "baseline": 1.1,
            "min_cores": 5,
        }
    ]

    def test_small_runner_is_gated_not_missing(self, tmp_path, capsys):
        results = write_results(
            tmp_path,
            [bench("pool", {"speedup_pipelined_vs_lockstep": 0.7, "usable_cores": 1})],
        )
        assert trend.check(results, write_baseline(tmp_path, self.CORE_GATED)) == 0
        out = capsys.readouterr().out
        assert "GATED (min_cores)" in out
        assert "MISSING" not in out
        assert "gated off by min_cores" in out

    def test_gated_is_not_a_failure_even_under_strict(self, tmp_path):
        results = write_results(
            tmp_path,
            [bench("pool", {"speedup_pipelined_vs_lockstep": 0.7, "usable_cores": 1})],
        )
        assert trend.check(results, write_baseline(tmp_path, self.CORE_GATED), strict=True) == 0

    def test_unrecorded_core_count_is_missing_not_gated(self, tmp_path, capsys):
        """The silent-pass regression: no usable_cores recorded => MISSING."""
        results = write_results(
            tmp_path, [bench("pool", {"speedup_pipelined_vs_lockstep": 0.7})]
        )
        assert trend.check(results, write_baseline(tmp_path, self.CORE_GATED)) == 0
        out = capsys.readouterr().out
        assert "MISSING" in out
        assert "usable_cores" in out
        assert "GATED" not in out

    def test_unrecorded_core_count_fails_under_strict(self, tmp_path):
        results = write_results(
            tmp_path, [bench("pool", {"speedup_pipelined_vs_lockstep": 0.7})]
        )
        assert (
            trend.check(results, write_baseline(tmp_path, self.CORE_GATED), strict=True) == 1
        )

    def test_enough_cores_enforces_the_metric(self, tmp_path, capsys):
        results = write_results(
            tmp_path,
            [bench("pool", {"speedup_pipelined_vs_lockstep": 0.7, "usable_cores": 8})],
        )
        assert trend.check(results, write_baseline(tmp_path, self.CORE_GATED)) == 1
        assert "REGRESSION" in capsys.readouterr().err

    def test_missing_benchmark_warns_and_strict_fails(self, tmp_path, capsys):
        results = write_results(tmp_path, [])
        baseline = write_baseline(tmp_path, [{"benchmark": "b", "key": "ratio", "baseline": 1.0}])
        assert trend.check(results, baseline) == 0
        assert "MISSING" in capsys.readouterr().out
        assert trend.check(results, write_baseline(tmp_path, [{"benchmark": "b", "key": "ratio", "baseline": 1.0}]), strict=True) == 1


class TestCommittedBaseline:
    def test_committed_baseline_parses_and_gates_the_kernel_overhead(self):
        baseline = json.loads(trend.DEFAULT_BASELINE.read_text())
        metrics = {
            metric.get("key") or metric.get("stat"): metric
            for metric in baseline["metrics"]
        }
        kernel = metrics["overhead_invariant_vs_matmul"]
        assert kernel["higher_is_better"] is False
        # The blocking ceiling is exactly the 2.0x acceptance bound.
        ceiling = kernel["baseline"] * (1.0 + kernel["tolerance"])
        assert ceiling == pytest.approx(2.0)
        gated = metrics["speedup_pipelined_vs_lockstep"]
        assert gated["min_cores"] >= 4


class TestScenarioReportIngestion:
    def _timing(self, tmp_path, wall=3.5, **extra):
        payload = {
            "scenario_eval_wall_seconds": wall,
            "cells": 20,
            "workers": 2,
            "cells_per_second": 20 / wall,
        }
        payload.update(extra)
        path = tmp_path / "scenario-timing.json"
        path.write_text(json.dumps(payload))
        return path

    def test_ingested_wall_clock_checks_against_ceiling(self, tmp_path, capsys):
        results = write_results(tmp_path, [])
        baseline = write_baseline(
            tmp_path,
            [{"benchmark": "scenario_evaluation", "stat": "mean",
              "baseline": 30.0, "higher_is_better": False, "tolerance": 1.0}],
        )
        timing = self._timing(tmp_path, wall=3.5)
        assert trend.check(results, baseline, scenario_report=timing) == 0
        assert "scenario_evaluation:mean" in capsys.readouterr().out

    def test_ingested_wall_clock_regression_fails(self, tmp_path):
        results = write_results(tmp_path, [])
        baseline = write_baseline(
            tmp_path,
            [{"benchmark": "scenario_evaluation", "stat": "mean",
              "baseline": 30.0, "higher_is_better": False, "tolerance": 1.0}],
        )
        timing = self._timing(tmp_path, wall=120.0)  # beyond the 60s ceiling
        assert trend.check(results, baseline, scenario_report=timing) == 1

    def test_extra_info_keys_are_addressable(self, tmp_path):
        results = write_results(tmp_path, [])
        baseline = write_baseline(
            tmp_path,
            [{"benchmark": "scenario_evaluation", "key": "cells_per_second",
              "baseline": 1.0, "higher_is_better": True, "tolerance": 0.5}],
        )
        timing = self._timing(tmp_path, wall=4.0)  # 5 cells/s
        assert trend.check(results, baseline, scenario_report=timing) == 0

    def test_without_report_metric_is_missing_not_failing(self, tmp_path, capsys):
        results = write_results(tmp_path, [])
        baseline = write_baseline(
            tmp_path,
            [{"benchmark": "scenario_evaluation", "stat": "mean",
              "baseline": 30.0, "higher_is_better": False}],
        )
        assert trend.check(results, baseline) == 0
        assert "MISSING" in capsys.readouterr().out
        assert trend.check(results, baseline, strict=True) == 1

    def test_rejects_non_timing_document(self, tmp_path):
        results = write_results(tmp_path, [])
        baseline = write_baseline(tmp_path, [])
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"something": "else"}))
        with pytest.raises(ValueError):
            trend.check(results, baseline, scenario_report=bogus)

    def test_committed_baseline_gates_the_scenario_ratio_not_a_wall_clock(self):
        """The committed metric must be the machine-relative suite/reference
        ratio: an absolute wall-clock ceiling encodes one runner's speed and
        does not transfer (the PR-5 tripwire this replaces)."""
        baseline = json.loads(trend.DEFAULT_BASELINE.read_text())
        entries = [m for m in baseline["metrics"] if m["benchmark"] == "scenario_evaluation"]
        assert len(entries) == 1
        entry = entries[0]
        assert entry["higher_is_better"] is False
        assert entry["relative_to"] == {
            "benchmark": "scenario_evaluation",
            "key": "reference_cell_seconds",
        }

    def test_suite_over_reference_cell_ratio_is_what_gets_checked(self, tmp_path):
        """Same ratio, wildly different absolute speeds: both runners pass;
        a genuine ratio regression fails on both."""
        baseline = write_baseline(
            tmp_path,
            [{"benchmark": "scenario_evaluation", "stat": "mean",
              "relative_to": {"benchmark": "scenario_evaluation",
                              "key": "reference_cell_seconds"},
              "baseline": 75.0, "higher_is_better": False, "tolerance": 1.0}],
        )
        results = write_results(tmp_path, [])
        fast_runner = self._timing(tmp_path, wall=1.5, reference_cell_seconds=0.02)
        assert trend.check(results, baseline, scenario_report=fast_runner) == 0
        slow_runner = self._timing(tmp_path, wall=150.0, reference_cell_seconds=2.0)
        assert trend.check(results, baseline, scenario_report=slow_runner) == 0
        regressed = self._timing(tmp_path, wall=400.0, reference_cell_seconds=2.0)
        assert trend.check(results, baseline, scenario_report=regressed) == 1

    def test_timing_without_reference_cell_is_missing(self, tmp_path, capsys):
        """Older timing documents (no reference cell) degrade to MISSING for
        the ratio metric rather than passing or crashing."""
        baseline = write_baseline(
            tmp_path,
            [{"benchmark": "scenario_evaluation", "stat": "mean",
              "relative_to": {"benchmark": "scenario_evaluation",
                              "key": "reference_cell_seconds"},
              "baseline": 75.0, "higher_is_better": False}],
        )
        results = write_results(tmp_path, [])
        timing = self._timing(tmp_path, wall=3.5)
        assert trend.check(results, baseline, scenario_report=timing) == 0
        assert "MISSING" in capsys.readouterr().out
        assert trend.check(results, baseline, scenario_report=timing, strict=True) == 1


class TestServiceReportIngestion:
    def _timing(self, tmp_path, **overrides):
        payload = {
            "service_load_wall_seconds": 8.0,
            "decisions": 11000,
            "decisions_per_second": 1375.0,
            "latency_p50_ms": 40.0,
            "latency_p95_ms": 120.0,
            "latency_p99_ms": 170.0,
            "reference_forward_seconds": 250e-6,
            "p99_latency_per_forward": 680.0,
            "decision_throughput_x_forward": 0.34,
            "replay": {"checked": True, "matched": True},
        }
        payload.update(overrides)
        path = tmp_path / "service-timing.json"
        path.write_text(json.dumps(payload))
        return path

    SERVICE_METRICS = [
        {"benchmark": "service_load", "key": "p99_latency_per_forward",
         "baseline": 700.0, "higher_is_better": False, "tolerance": 1.5},
        {"benchmark": "service_load", "key": "decision_throughput_x_forward",
         "baseline": 0.35, "higher_is_better": True, "tolerance": 0.7},
        {"benchmark": "service_load", "key": "replay_matched",
         "baseline": 1.0, "higher_is_better": True, "tolerance": 0.0},
    ]

    def test_healthy_report_passes_all_gates(self, tmp_path, capsys):
        results = write_results(tmp_path, [])
        baseline = write_baseline(tmp_path, self.SERVICE_METRICS)
        timing = self._timing(tmp_path)
        assert trend.check(results, baseline, service_report=timing) == 0
        out = capsys.readouterr().out
        assert "service_load:p99_latency_per_forward" in out
        assert "service_load:replay_matched" in out

    def test_latency_ratio_regression_fails(self, tmp_path):
        results = write_results(tmp_path, [])
        baseline = write_baseline(tmp_path, self.SERVICE_METRICS)
        timing = self._timing(tmp_path, p99_latency_per_forward=2000.0)
        assert trend.check(results, baseline, service_report=timing) == 1

    def test_throughput_ratio_regression_fails(self, tmp_path):
        results = write_results(tmp_path, [])
        baseline = write_baseline(tmp_path, self.SERVICE_METRICS)
        timing = self._timing(tmp_path, decision_throughput_x_forward=0.05)
        assert trend.check(results, baseline, service_report=timing) == 1

    def test_replay_mismatch_hard_fails(self, tmp_path, capsys):
        """A parity violation is a zero-tolerance failure: replay_matched is
        0.0 and the floor is exactly 1.0."""
        results = write_results(tmp_path, [])
        baseline = write_baseline(tmp_path, self.SERVICE_METRICS)
        timing = self._timing(tmp_path, replay={"checked": True, "matched": False})
        assert trend.check(results, baseline, service_report=timing) == 1
        assert "replay_matched" in capsys.readouterr().err

    def test_without_report_metrics_are_missing_not_failing(self, tmp_path, capsys):
        results = write_results(tmp_path, [])
        baseline = write_baseline(tmp_path, self.SERVICE_METRICS)
        assert trend.check(results, baseline) == 0
        assert "MISSING" in capsys.readouterr().out
        assert trend.check(results, baseline, strict=True) == 1

    def test_rejects_non_service_document(self, tmp_path):
        results = write_results(tmp_path, [])
        baseline = write_baseline(tmp_path, [])
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"scenario_eval_wall_seconds": 3.0}))
        with pytest.raises(ValueError):
            trend.check(results, baseline, service_report=bogus)

    def test_committed_baseline_gates_service_ratios_and_parity(self):
        baseline = json.loads(trend.DEFAULT_BASELINE.read_text())
        entries = {
            m["key"]: m
            for m in baseline["metrics"]
            if m["benchmark"] == "service_load"
        }
        assert set(entries) == {
            "p99_latency_per_forward",
            "decision_throughput_x_forward",
            "replay_matched",
        }
        assert entries["p99_latency_per_forward"]["higher_is_better"] is False
        assert entries["decision_throughput_x_forward"]["higher_is_better"] is True
        # Parity is not a trend: zero tolerance, floor exactly 1.0.
        assert entries["replay_matched"]["tolerance"] == 0.0
        assert entries["replay_matched"]["baseline"] == 1.0


class TestChaosReportIngestion:
    def _timing(self, tmp_path, **overrides):
        payload = {
            "chaos_wall_seconds": 5.0,
            "recovery_overhead_vs_clean": 3.7,
            "pool_parity_ok": 1.0,
            "service_recovery_ok": 1.0,
        }
        payload.update(overrides)
        path = tmp_path / "chaos-timing.json"
        path.write_text(json.dumps(payload))
        return path

    CHAOS_METRICS = [
        {"benchmark": "chaos_smoke", "key": "recovery_overhead_vs_clean",
         "baseline": 4.0, "higher_is_better": False, "tolerance": 1.5},
        {"benchmark": "chaos_smoke", "key": "pool_parity_ok",
         "baseline": 1.0, "higher_is_better": True, "tolerance": 0.0},
        {"benchmark": "chaos_smoke", "key": "service_recovery_ok",
         "baseline": 1.0, "higher_is_better": True, "tolerance": 0.0},
    ]

    def test_healthy_report_passes_all_gates(self, tmp_path, capsys):
        results = write_results(tmp_path, [])
        baseline = write_baseline(tmp_path, self.CHAOS_METRICS)
        timing = self._timing(tmp_path)
        assert trend.check(results, baseline, chaos_report=timing) == 0
        out = capsys.readouterr().out
        assert "chaos_smoke:recovery_overhead_vs_clean" in out
        assert "chaos_smoke:pool_parity_ok" in out

    def test_pathological_recovery_overhead_fails(self, tmp_path):
        """Recovery costing more than the ceiling (e.g. a full-rollout
        restart instead of a shard replay) is a blocking regression."""
        results = write_results(tmp_path, [])
        baseline = write_baseline(tmp_path, self.CHAOS_METRICS)
        timing = self._timing(tmp_path, recovery_overhead_vs_clean=25.0)
        assert trend.check(results, baseline, chaos_report=timing) == 1

    def test_parity_violation_hard_fails(self, tmp_path, capsys):
        """Fault-injected divergence is zero-tolerance: the bit is 0.0 and
        the floor is exactly 1.0."""
        results = write_results(tmp_path, [])
        baseline = write_baseline(tmp_path, self.CHAOS_METRICS)
        timing = self._timing(tmp_path, pool_parity_ok=0.0)
        assert trend.check(results, baseline, chaos_report=timing) == 1
        assert "pool_parity_ok" in capsys.readouterr().err

    def test_without_report_metrics_are_missing_not_failing(self, tmp_path, capsys):
        results = write_results(tmp_path, [])
        baseline = write_baseline(tmp_path, self.CHAOS_METRICS)
        assert trend.check(results, baseline) == 0
        assert "MISSING" in capsys.readouterr().out
        assert trend.check(results, baseline, strict=True) == 1

    def test_rejects_non_chaos_document(self, tmp_path):
        results = write_results(tmp_path, [])
        baseline = write_baseline(tmp_path, [])
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"service_load_wall_seconds": 3.0}))
        with pytest.raises(ValueError):
            trend.check(results, baseline, chaos_report=bogus)

    def test_committed_baseline_gates_recovery_overhead_and_parity(self):
        baseline = json.loads(trend.DEFAULT_BASELINE.read_text())
        entries = {
            m["key"]: m
            for m in baseline["metrics"]
            if m["benchmark"] == "chaos_smoke"
        }
        assert set(entries) == {
            "recovery_overhead_vs_clean",
            "pool_parity_ok",
            "service_recovery_ok",
        }
        assert entries["recovery_overhead_vs_clean"]["higher_is_better"] is False
        # Parity is not a trend: zero tolerance, floor exactly 1.0.
        for key in ("pool_parity_ok", "service_recovery_ok"):
            assert entries[key]["tolerance"] == 0.0
            assert entries[key]["baseline"] == 1.0
