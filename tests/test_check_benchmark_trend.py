"""Tests for the CI rollout-throughput trend check (scripts/check_benchmark_trend.py).

The check's three outcomes must stay distinguishable: a metric can PASS or
REGRESS (verdicts), be GATED off by the run's usable-core count (expected on
small runners, never a failure), or be MISSING from the results JSON (warn by
default, fail under ``--strict``).  A core-gated metric whose benchmark did
not record its core count is MISSING, not gated -- the regression that let a
still-unmeasured baseline pass silently.
"""

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "check_benchmark_trend",
    Path(__file__).resolve().parents[1] / "scripts" / "check_benchmark_trend.py",
)
trend = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(trend)


def write_results(tmp_path, benchmarks):
    path = tmp_path / "results.json"
    path.write_text(json.dumps({"benchmarks": benchmarks}))
    return path


def write_baseline(tmp_path, metrics, tolerance=0.2):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"tolerance": tolerance, "metrics": metrics}))
    return path


def bench(name, extra_info=None, stats=None):
    return {"name": f"benchmarks/x.py::{name}", "extra_info": extra_info or {}, "stats": stats or {}}


class TestVerdicts:
    def test_passing_metric(self, tmp_path, capsys):
        results = write_results(tmp_path, [bench("b", {"ratio": 4.0})])
        baseline = write_baseline(tmp_path, [{"benchmark": "b", "key": "ratio", "baseline": 3.8}])
        assert trend.check(results, baseline) == 0
        assert "ok b:ratio" in capsys.readouterr().out

    def test_higher_is_better_regression_fails(self, tmp_path, capsys):
        results = write_results(tmp_path, [bench("b", {"ratio": 2.0})])
        baseline = write_baseline(tmp_path, [{"benchmark": "b", "key": "ratio", "baseline": 3.8}])
        assert trend.check(results, baseline) == 1
        assert "REGRESSION" in capsys.readouterr().err

    def test_lower_is_better_ceiling(self, tmp_path, capsys):
        metrics = [
            {
                "benchmark": "b",
                "key": "overhead",
                "baseline": 1.6,
                "higher_is_better": False,
                "tolerance": 0.25,
            }
        ]
        ok = write_results(tmp_path, [bench("b", {"overhead": 1.9})])
        assert trend.check(ok, write_baseline(tmp_path, metrics)) == 0
        too_slow = write_results(tmp_path, [bench("b", {"overhead": 2.1})])
        assert trend.check(too_slow, write_baseline(tmp_path, metrics)) == 1

    def test_relative_to_divides_stats(self, tmp_path):
        results = write_results(
            tmp_path,
            [
                bench("sim", stats={"mean": 6.0}),
                bench("fwd", stats={"mean": 2.0}),
            ],
        )
        baseline = write_baseline(
            tmp_path,
            [
                {
                    "benchmark": "sim",
                    "stat": "mean",
                    "relative_to": {"benchmark": "fwd", "stat": "mean"},
                    "baseline": 3.3,
                    "higher_is_better": False,
                }
            ],
        )
        assert trend.check(results, baseline) == 0


class TestGatedVsMissing:
    CORE_GATED = [
        {
            "benchmark": "pool",
            "key": "speedup_pipelined_vs_lockstep",
            "baseline": 1.1,
            "min_cores": 5,
        }
    ]

    def test_small_runner_is_gated_not_missing(self, tmp_path, capsys):
        results = write_results(
            tmp_path,
            [bench("pool", {"speedup_pipelined_vs_lockstep": 0.7, "usable_cores": 1})],
        )
        assert trend.check(results, write_baseline(tmp_path, self.CORE_GATED)) == 0
        out = capsys.readouterr().out
        assert "GATED (min_cores)" in out
        assert "MISSING" not in out
        assert "gated off by min_cores" in out

    def test_gated_is_not_a_failure_even_under_strict(self, tmp_path):
        results = write_results(
            tmp_path,
            [bench("pool", {"speedup_pipelined_vs_lockstep": 0.7, "usable_cores": 1})],
        )
        assert trend.check(results, write_baseline(tmp_path, self.CORE_GATED), strict=True) == 0

    def test_unrecorded_core_count_is_missing_not_gated(self, tmp_path, capsys):
        """The silent-pass regression: no usable_cores recorded => MISSING."""
        results = write_results(
            tmp_path, [bench("pool", {"speedup_pipelined_vs_lockstep": 0.7})]
        )
        assert trend.check(results, write_baseline(tmp_path, self.CORE_GATED)) == 0
        out = capsys.readouterr().out
        assert "MISSING" in out
        assert "usable_cores" in out
        assert "GATED" not in out

    def test_unrecorded_core_count_fails_under_strict(self, tmp_path):
        results = write_results(
            tmp_path, [bench("pool", {"speedup_pipelined_vs_lockstep": 0.7})]
        )
        assert (
            trend.check(results, write_baseline(tmp_path, self.CORE_GATED), strict=True) == 1
        )

    def test_enough_cores_enforces_the_metric(self, tmp_path, capsys):
        results = write_results(
            tmp_path,
            [bench("pool", {"speedup_pipelined_vs_lockstep": 0.7, "usable_cores": 8})],
        )
        assert trend.check(results, write_baseline(tmp_path, self.CORE_GATED)) == 1
        assert "REGRESSION" in capsys.readouterr().err

    def test_missing_benchmark_warns_and_strict_fails(self, tmp_path, capsys):
        results = write_results(tmp_path, [])
        baseline = write_baseline(tmp_path, [{"benchmark": "b", "key": "ratio", "baseline": 1.0}])
        assert trend.check(results, baseline) == 0
        assert "MISSING" in capsys.readouterr().out
        assert trend.check(results, write_baseline(tmp_path, [{"benchmark": "b", "key": "ratio", "baseline": 1.0}]), strict=True) == 1


class TestCommittedBaseline:
    def test_committed_baseline_parses_and_gates_the_kernel_overhead(self):
        baseline = json.loads(trend.DEFAULT_BASELINE.read_text())
        metrics = {
            metric.get("key") or metric.get("stat"): metric
            for metric in baseline["metrics"]
        }
        kernel = metrics["overhead_invariant_vs_matmul"]
        assert kernel["higher_is_better"] is False
        # The blocking ceiling is exactly the 2.0x acceptance bound.
        ceiling = kernel["baseline"] * (1.0 + kernel["tolerance"])
        assert ceiling == pytest.approx(2.0)
        gated = metrics["speedup_pipelined_vs_lockstep"]
        assert gated["min_cores"] >= 4


class TestScenarioReportIngestion:
    def _timing(self, tmp_path, wall=3.5, **extra):
        payload = {
            "scenario_eval_wall_seconds": wall,
            "cells": 20,
            "workers": 2,
            "cells_per_second": 20 / wall,
        }
        payload.update(extra)
        path = tmp_path / "scenario-timing.json"
        path.write_text(json.dumps(payload))
        return path

    def test_ingested_wall_clock_checks_against_ceiling(self, tmp_path, capsys):
        results = write_results(tmp_path, [])
        baseline = write_baseline(
            tmp_path,
            [{"benchmark": "scenario_evaluation", "stat": "mean",
              "baseline": 30.0, "higher_is_better": False, "tolerance": 1.0}],
        )
        timing = self._timing(tmp_path, wall=3.5)
        assert trend.check(results, baseline, scenario_report=timing) == 0
        assert "scenario_evaluation:mean" in capsys.readouterr().out

    def test_ingested_wall_clock_regression_fails(self, tmp_path):
        results = write_results(tmp_path, [])
        baseline = write_baseline(
            tmp_path,
            [{"benchmark": "scenario_evaluation", "stat": "mean",
              "baseline": 30.0, "higher_is_better": False, "tolerance": 1.0}],
        )
        timing = self._timing(tmp_path, wall=120.0)  # beyond the 60s ceiling
        assert trend.check(results, baseline, scenario_report=timing) == 1

    def test_extra_info_keys_are_addressable(self, tmp_path):
        results = write_results(tmp_path, [])
        baseline = write_baseline(
            tmp_path,
            [{"benchmark": "scenario_evaluation", "key": "cells_per_second",
              "baseline": 1.0, "higher_is_better": True, "tolerance": 0.5}],
        )
        timing = self._timing(tmp_path, wall=4.0)  # 5 cells/s
        assert trend.check(results, baseline, scenario_report=timing) == 0

    def test_without_report_metric_is_missing_not_failing(self, tmp_path, capsys):
        results = write_results(tmp_path, [])
        baseline = write_baseline(
            tmp_path,
            [{"benchmark": "scenario_evaluation", "stat": "mean",
              "baseline": 30.0, "higher_is_better": False}],
        )
        assert trend.check(results, baseline) == 0
        assert "MISSING" in capsys.readouterr().out
        assert trend.check(results, baseline, strict=True) == 1

    def test_rejects_non_timing_document(self, tmp_path):
        results = write_results(tmp_path, [])
        baseline = write_baseline(tmp_path, [])
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"something": "else"}))
        with pytest.raises(ValueError):
            trend.check(results, baseline, scenario_report=bogus)

    def test_committed_baseline_has_scenario_ceiling(self):
        baseline = json.loads(trend.DEFAULT_BASELINE.read_text())
        entries = [m for m in baseline["metrics"] if m["benchmark"] == "scenario_evaluation"]
        assert len(entries) == 1
        assert entries[0]["higher_is_better"] is False
