"""Tests for the reverse-mode autograd engine, including numerical gradient checks."""

import numpy as np
import pytest

from repro.rl.autograd import Tensor, is_grad_enabled, no_grad


def numerical_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar-valued fn at x."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        up = fn(x.copy())
        flat[i] = original - eps
        down = fn(x.copy())
        flat[i] = original
        grad_flat[i] = (up - down) / (2 * eps)
    return grad


def check_gradient(build, shape, seed=0, atol=1e-5):
    """Compare autograd gradient of build(Tensor) against numerical gradient."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=shape)
    t = Tensor(x.copy(), requires_grad=True)
    out = build(t)
    out.backward()

    def scalar_fn(values):
        return float(build(Tensor(values)).numpy())

    expected = numerical_grad(scalar_fn, x.copy())
    np.testing.assert_allclose(t.grad, expected, atol=atol, rtol=1e-4)


class TestGradientChecks:
    def test_sum(self):
        check_gradient(lambda t: t.sum(), (3, 4))

    def test_mean(self):
        check_gradient(lambda t: t.mean(), (5,))

    def test_add_mul(self):
        check_gradient(lambda t: ((t + 2.0) * 3.0).sum(), (4,))

    def test_mul_elementwise(self):
        check_gradient(lambda t: (t * t).sum(), (3, 3))

    def test_sub_div(self):
        check_gradient(lambda t: ((t - 0.5) / 2.0).sum(), (6,))

    def test_pow(self):
        check_gradient(lambda t: (t**3).sum(), (4,))

    def test_exp(self):
        check_gradient(lambda t: t.exp().sum(), (4,))

    def test_log(self):
        check_gradient(lambda t: (t.exp() + 1.0).log().sum(), (4,))

    def test_tanh(self):
        check_gradient(lambda t: t.tanh().sum(), (5,))

    def test_relu(self):
        check_gradient(lambda t: (t.relu() * 2.0).sum(), (10,), seed=3)

    def test_matmul(self):
        rng = np.random.default_rng(0)
        w = rng.normal(size=(4, 2))
        check_gradient(lambda t: (t @ Tensor(w)).sum(), (3, 4))

    def test_matmul_second_arg(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(3, 4))
        check_gradient(lambda t: (Tensor(x) @ t).sum(), (4, 2))

    def test_reshape(self):
        check_gradient(lambda t: (t.reshape(6) * 2.0).sum(), (2, 3))

    def test_log_softmax(self):
        check_gradient(lambda t: (t.log_softmax(axis=-1) * 0.3).sum(), (2, 5))

    def test_softmax(self):
        check_gradient(lambda t: (t.softmax(axis=-1) ** 2).sum(), (2, 4))

    def test_minimum(self):
        rng = np.random.default_rng(2)
        other = rng.normal(size=(6,))
        check_gradient(lambda t: t.minimum(Tensor(other)).sum(), (6,))

    def test_maximum(self):
        rng = np.random.default_rng(2)
        other = rng.normal(size=(6,))
        check_gradient(lambda t: t.maximum(Tensor(other)).sum(), (6,))

    def test_clip(self):
        check_gradient(lambda t: t.clip(-0.5, 0.5).sum(), (8,), seed=4)

    def test_sum_axis(self):
        check_gradient(lambda t: (t.sum(axis=1) ** 2).sum(), (3, 4))

    def test_mean_axis(self):
        check_gradient(lambda t: (t.mean(axis=0) ** 2).sum(), (3, 4))

    def test_broadcast_add(self):
        rng = np.random.default_rng(5)
        big = rng.normal(size=(4, 3))
        check_gradient(lambda t: (Tensor(big) + t).sum(), (3,))

    def test_broadcast_mul(self):
        rng = np.random.default_rng(6)
        big = rng.normal(size=(4, 3))
        check_gradient(lambda t: (Tensor(big) * t).sum(), (3,))

    def test_composite_mlp_like(self):
        rng = np.random.default_rng(7)
        w1 = rng.normal(size=(5, 8))
        w2 = rng.normal(size=(8, 1))

        def net(t):
            hidden = (t @ Tensor(w1)).tanh()
            return (hidden @ Tensor(w2)).sum()

        check_gradient(net, (3, 5))

    def test_ppo_style_objective(self):
        rng = np.random.default_rng(8)
        adv = rng.normal(size=(6,))
        logp_old = rng.normal(size=(6,)) * 0.1

        def objective(t):
            ratio = (t - Tensor(logp_old)).exp()
            clipped = ratio.clip(0.8, 1.2)
            return -(ratio * Tensor(adv)).minimum(clipped * Tensor(adv)).mean()

        check_gradient(objective, (6,))


class TestMechanics:
    def test_backward_requires_scalar(self):
        t = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2).backward()

    def test_backward_without_grad_flag(self):
        t = Tensor(np.ones(3))
        with pytest.raises(RuntimeError):
            t.backward()

    def test_grad_accumulates_across_backwards(self):
        t = Tensor(np.ones(3), requires_grad=True)
        (t.sum()).backward()
        (t.sum()).backward()
        np.testing.assert_allclose(t.grad, 2 * np.ones(3))

    def test_zero_grad(self):
        t = Tensor(np.ones(3), requires_grad=True)
        t.sum().backward()
        t.zero_grad()
        assert t.grad is None

    def test_no_grad_context(self):
        t = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            out = (t * 2).sum()
        assert is_grad_enabled()
        assert not out.requires_grad

    def test_detach(self):
        t = Tensor(np.ones(3), requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        d.data[0] = 99
        assert t.data[0] == 1.0

    def test_reused_node_gradients_sum(self):
        # y = x*x uses x twice through separate ops; gradient must be 2x.
        x = Tensor(np.array([3.0]), requires_grad=True)
        y = (x * 2.0 + x * 1.0).sum()
        y.backward()
        np.testing.assert_allclose(x.grad, [3.0])

    def test_matmul_requires_2d(self):
        with pytest.raises(ValueError):
            Tensor(np.ones(3)) @ Tensor(np.ones(3))

    def test_item_and_shape(self):
        t = Tensor(np.array([[2.5]]))
        assert t.item() == 2.5
        assert t.shape == (1, 1)
        assert t.ndim == 2
        assert t.size == 1

    def test_radd_rsub_rmul_rdiv(self):
        t = Tensor(np.array([2.0]), requires_grad=True)
        out = ((1.0 + t) * 2.0 - 1.0) / 1.0
        assert out.numpy()[0] == pytest.approx(5.0)
        out2 = 1.0 - t
        assert out2.numpy()[0] == pytest.approx(-1.0)
        out3 = 6.0 / t
        assert out3.numpy()[0] == pytest.approx(3.0)

    def test_zeros_constructor(self):
        t = Tensor.zeros(2, 3, requires_grad=True)
        assert t.shape == (2, 3)
        assert t.requires_grad
