"""Tests for the reverse-mode autograd engine, including numerical gradient checks."""

import numpy as np
import pytest

from repro.rl.autograd import (
    INVARIANT_ROW_BLOCK,
    Tensor,
    invariant_matmul,
    is_grad_enabled,
    no_grad,
)


def numerical_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar-valued fn at x."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        up = fn(x.copy())
        flat[i] = original - eps
        down = fn(x.copy())
        flat[i] = original
        grad_flat[i] = (up - down) / (2 * eps)
    return grad


def check_gradient(build, shape, seed=0, atol=1e-5):
    """Compare autograd gradient of build(Tensor) against numerical gradient."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=shape)
    t = Tensor(x.copy(), requires_grad=True)
    out = build(t)
    out.backward()

    def scalar_fn(values):
        return float(build(Tensor(values)).numpy())

    expected = numerical_grad(scalar_fn, x.copy())
    np.testing.assert_allclose(t.grad, expected, atol=atol, rtol=1e-4)


class TestGradientChecks:
    def test_sum(self):
        check_gradient(lambda t: t.sum(), (3, 4))

    def test_mean(self):
        check_gradient(lambda t: t.mean(), (5,))

    def test_add_mul(self):
        check_gradient(lambda t: ((t + 2.0) * 3.0).sum(), (4,))

    def test_mul_elementwise(self):
        check_gradient(lambda t: (t * t).sum(), (3, 3))

    def test_sub_div(self):
        check_gradient(lambda t: ((t - 0.5) / 2.0).sum(), (6,))

    def test_pow(self):
        check_gradient(lambda t: (t**3).sum(), (4,))

    def test_exp(self):
        check_gradient(lambda t: t.exp().sum(), (4,))

    def test_log(self):
        check_gradient(lambda t: (t.exp() + 1.0).log().sum(), (4,))

    def test_tanh(self):
        check_gradient(lambda t: t.tanh().sum(), (5,))

    def test_relu(self):
        check_gradient(lambda t: (t.relu() * 2.0).sum(), (10,), seed=3)

    def test_matmul(self):
        rng = np.random.default_rng(0)
        w = rng.normal(size=(4, 2))
        check_gradient(lambda t: (t @ Tensor(w)).sum(), (3, 4))

    def test_matmul_second_arg(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(3, 4))
        check_gradient(lambda t: (Tensor(x) @ t).sum(), (4, 2))

    def test_reshape(self):
        check_gradient(lambda t: (t.reshape(6) * 2.0).sum(), (2, 3))

    def test_log_softmax(self):
        check_gradient(lambda t: (t.log_softmax(axis=-1) * 0.3).sum(), (2, 5))

    def test_softmax(self):
        check_gradient(lambda t: (t.softmax(axis=-1) ** 2).sum(), (2, 4))

    def test_minimum(self):
        rng = np.random.default_rng(2)
        other = rng.normal(size=(6,))
        check_gradient(lambda t: t.minimum(Tensor(other)).sum(), (6,))

    def test_maximum(self):
        rng = np.random.default_rng(2)
        other = rng.normal(size=(6,))
        check_gradient(lambda t: t.maximum(Tensor(other)).sum(), (6,))

    def test_clip(self):
        check_gradient(lambda t: t.clip(-0.5, 0.5).sum(), (8,), seed=4)

    def test_sum_axis(self):
        check_gradient(lambda t: (t.sum(axis=1) ** 2).sum(), (3, 4))

    def test_mean_axis(self):
        check_gradient(lambda t: (t.mean(axis=0) ** 2).sum(), (3, 4))

    def test_broadcast_add(self):
        rng = np.random.default_rng(5)
        big = rng.normal(size=(4, 3))
        check_gradient(lambda t: (Tensor(big) + t).sum(), (3,))

    def test_broadcast_mul(self):
        rng = np.random.default_rng(6)
        big = rng.normal(size=(4, 3))
        check_gradient(lambda t: (Tensor(big) * t).sum(), (3,))

    def test_composite_mlp_like(self):
        rng = np.random.default_rng(7)
        w1 = rng.normal(size=(5, 8))
        w2 = rng.normal(size=(8, 1))

        def net(t):
            hidden = (t @ Tensor(w1)).tanh()
            return (hidden @ Tensor(w2)).sum()

        check_gradient(net, (3, 5))

    def test_ppo_style_objective(self):
        rng = np.random.default_rng(8)
        adv = rng.normal(size=(6,))
        logp_old = rng.normal(size=(6,)) * 0.1

        def objective(t):
            ratio = (t - Tensor(logp_old)).exp()
            clipped = ratio.clip(0.8, 1.2)
            return -(ratio * Tensor(adv)).minimum(clipped * Tensor(adv)).mean()

        check_gradient(objective, (6,))


class TestInvariantMatmul:
    """The batch-invariant matmul kernel behind every ``Linear`` layer."""

    def test_matches_matmul_values(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(37, 23))
        b = rng.normal(size=(23, 11))
        np.testing.assert_allclose(invariant_matmul(a, b), a @ b, rtol=1e-13)

    def test_batch_invariance_bit_for_bit(self):
        """``kernel(rows[i:i+1]) == kernel(rows)[i]`` exactly, random batches.

        This is the property plain BLAS matmul does *not* have (the library
        picks gemv/gemm and blocking from the batch shape), and the one the
        engine-parity contract rests on.  Shapes cover the model's real
        layers (kernel net K=10/32/16, value net K in the hundreds) plus
        randomized sizes straddling the row-block boundary.
        """
        rng = np.random.default_rng(1)
        shapes = [(1, 10, 32), (3, 32, 16), (16, 16, 1), (16, 640, 64)]
        for _ in range(40):
            shapes.append(
                (
                    int(rng.integers(1, 4 * INVARIANT_ROW_BLOCK)),
                    int(rng.integers(1, 700)),
                    int(rng.integers(1, 80)),
                )
            )
        for rows, k, cols in shapes:
            a = rng.normal(size=(rows, k))
            b = rng.normal(size=(k, cols))
            full = invariant_matmul(a, b)
            for i in range(rows):
                single = invariant_matmul(a[i : i + 1], b)
                assert np.array_equal(single[0], full[i]), (rows, k, cols, i)
            # Any sub-batch, not just singles.
            lo = int(rng.integers(0, rows))
            hi = int(rng.integers(lo + 1, rows + 1))
            assert np.array_equal(invariant_matmul(a[lo:hi], b), full[lo:hi])

    def test_transposed_views_are_supported(self):
        """Backward passes multiply transposed views; results must match."""
        rng = np.random.default_rng(2)
        a = rng.normal(size=(19, 33))
        b = rng.normal(size=(33, 7))
        grad = rng.normal(size=(19, 7))
        np.testing.assert_allclose(invariant_matmul(grad, b.T), grad @ b.T, rtol=1e-13)
        np.testing.assert_allclose(invariant_matmul(a.T, grad), a.T @ grad, rtol=1e-13)

    def test_empty_batch(self):
        out = invariant_matmul(np.zeros((0, 5)), np.ones((5, 3)))
        assert out.shape == (0, 3)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            invariant_matmul(np.ones(3), np.ones((3, 2)))
        with pytest.raises(ValueError):
            invariant_matmul(np.ones((2, 3)), np.ones((4, 2)))

    def test_tensor_op_rejects_non_2d(self):
        with pytest.raises(ValueError):
            Tensor(np.ones(3)).matmul_invariant(Tensor(np.ones((3, 2))))

    def test_gradcheck_first_operand_non_square(self):
        rng = np.random.default_rng(3)
        w = rng.normal(size=(7, 3))
        check_gradient(lambda t: t.matmul_invariant(Tensor(w)).sum(), (5, 7))

    def test_gradcheck_second_operand_non_square(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(5, 7))
        check_gradient(lambda t: Tensor(x).matmul_invariant(t).sum(), (7, 3))

    def test_gradcheck_batch_of_one(self):
        rng = np.random.default_rng(5)
        w = rng.normal(size=(9, 4))
        check_gradient(lambda t: t.matmul_invariant(Tensor(w)).sum(), (1, 9))

    def test_gradcheck_wider_than_row_block(self):
        rng = np.random.default_rng(6)
        w = rng.normal(size=(3, 2))
        check_gradient(
            lambda t: t.matmul_invariant(Tensor(w)).sum(),
            (INVARIANT_ROW_BLOCK + 3, 3),
        )

    def test_gradcheck_through_masked_log_softmax_with_empty_mask_rows(self):
        """The policy-loss composition: invariant matmul -> mask -> log-softmax.

        One row's mask admits no action at all (every logit penalized) -- the
        gradient must still match numerical differentiation.  The penalty is
        scaled down from the production −1e8 (whose magnitude makes central
        differences meaningless) without changing the composition's shape.
        """
        rng = np.random.default_rng(7)
        w = rng.normal(size=(6, 4))
        mask = np.array([[1.0, 0.0, 1.0, 0.0], [0.0, 0.0, 0.0, 0.0], [1.0, 1.0, 1.0, 1.0]])
        penalty = (1.0 - mask) * -30.0

        def build(t):
            logits = t.matmul_invariant(Tensor(w)) + Tensor(penalty)
            return (logits.log_softmax(axis=-1) * 0.25).sum()

        check_gradient(build, (3, 6))

    def test_gradients_flow_to_both_operands(self):
        rng = np.random.default_rng(8)
        a = Tensor(rng.normal(size=(4, 5)), requires_grad=True)
        b = Tensor(rng.normal(size=(5, 2)), requires_grad=True)
        a.matmul_invariant(b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((4, 2)) @ b.data.T, rtol=1e-12)
        np.testing.assert_allclose(b.grad, a.data.T @ np.ones((4, 2)), rtol=1e-12)

    def test_backward_is_batch_invariant_per_row(self):
        """Gradients w.r.t. the inputs keep the per-row invariance too."""
        rng = np.random.default_rng(9)
        w = Tensor(rng.normal(size=(33, 5)), requires_grad=False)
        x_data = rng.normal(size=(21, 33))

        def input_grad(rows):
            t = Tensor(rows, requires_grad=True)
            t.matmul_invariant(w).sum().backward()
            return t.grad

        full = input_grad(x_data)
        for i in (0, 7, 20):
            assert np.array_equal(input_grad(x_data[i : i + 1])[0], full[i])


class TestRowBlockHint:
    """The per-call-site ``row_block`` hint of the invariant kernel."""

    def test_matches_matmul_values_for_any_block(self):
        rng = np.random.default_rng(10)
        a = rng.normal(size=(23, 17))
        b = rng.normal(size=(17, 9))
        for block in (1, 2, 7, 16, 64):
            np.testing.assert_allclose(
                invariant_matmul(a, b, row_block=block), a @ b, rtol=1e-13
            )

    def test_batch_invariance_holds_per_block_size(self):
        """Any *fixed* block keeps row ``i`` at position ``i % block`` of its
        block, so per-site invariance is preserved for every hint value."""
        rng = np.random.default_rng(11)
        for block in (1, 3, 16):
            a = rng.normal(size=(2 * block + 1, 33))
            b = rng.normal(size=(33, 6))
            full = invariant_matmul(a, b, row_block=block)
            for i in range(a.shape[0]):
                single = invariant_matmul(a[i : i + 1], b, row_block=block)
                assert np.array_equal(single[0], full[i]), (block, i)

    def test_default_block_is_module_constant(self):
        rng = np.random.default_rng(12)
        a = rng.normal(size=(5, 8))
        b = rng.normal(size=(8, 3))
        assert np.array_equal(
            invariant_matmul(a, b),
            invariant_matmul(a, b, row_block=INVARIANT_ROW_BLOCK),
        )

    def test_rejects_non_positive_block(self):
        with pytest.raises(ValueError):
            invariant_matmul(np.ones((2, 2)), np.ones((2, 2)), row_block=0)

    def test_gradcheck_with_block_one(self):
        rng = np.random.default_rng(13)
        w = rng.normal(size=(7, 3))
        check_gradient(
            lambda t: t.matmul_invariant(Tensor(w), row_block=1).sum(), (5, 7)
        )

    def test_linear_row_block_is_site_local(self):
        """A Linear pinned to row_block=1 is internally batch-invariant and
        numerically equivalent (not necessarily bit-equal) to the default."""
        from repro.rl.nn import MLP

        rng = np.random.default_rng(14)
        x = rng.normal(size=(4, 12))
        default_site = MLP([12, 8, 2], seed=42)
        serial_site = MLP([12, 8, 2], seed=42)
        serial_site.set_forward_row_block(1)
        for layer in serial_site.network:
            if hasattr(layer, "row_block"):
                assert layer.row_block == 1
        out_default = default_site(Tensor(x)).numpy()
        out_serial = serial_site(Tensor(x)).numpy()
        np.testing.assert_allclose(out_serial, out_default, rtol=1e-12)
        # Per-site invariance at block 1: single-row forwards equal batch rows.
        for i in range(x.shape[0]):
            row = serial_site(Tensor(x[i : i + 1])).numpy()
            assert np.array_equal(row[0], out_serial[i])


class TestMechanics:
    def test_backward_requires_scalar(self):
        t = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2).backward()

    def test_backward_without_grad_flag(self):
        t = Tensor(np.ones(3))
        with pytest.raises(RuntimeError):
            t.backward()

    def test_grad_accumulates_across_backwards(self):
        t = Tensor(np.ones(3), requires_grad=True)
        (t.sum()).backward()
        (t.sum()).backward()
        np.testing.assert_allclose(t.grad, 2 * np.ones(3))

    def test_zero_grad(self):
        t = Tensor(np.ones(3), requires_grad=True)
        t.sum().backward()
        t.zero_grad()
        assert t.grad is None

    def test_no_grad_context(self):
        t = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            out = (t * 2).sum()
        assert is_grad_enabled()
        assert not out.requires_grad

    def test_detach(self):
        t = Tensor(np.ones(3), requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        d.data[0] = 99
        assert t.data[0] == 1.0

    def test_reused_node_gradients_sum(self):
        # y = x*x uses x twice through separate ops; gradient must be 2x.
        x = Tensor(np.array([3.0]), requires_grad=True)
        y = (x * 2.0 + x * 1.0).sum()
        y.backward()
        np.testing.assert_allclose(x.grad, [3.0])

    def test_matmul_requires_2d(self):
        with pytest.raises(ValueError):
            Tensor(np.ones(3)) @ Tensor(np.ones(3))

    def test_item_and_shape(self):
        t = Tensor(np.array([[2.5]]))
        assert t.item() == 2.5
        assert t.shape == (1, 1)
        assert t.ndim == 2
        assert t.size == 1

    def test_radd_rsub_rmul_rdiv(self):
        t = Tensor(np.array([2.0]), requires_grad=True)
        out = ((1.0 + t) * 2.0 - 1.0) / 1.0
        assert out.numpy()[0] == pytest.approx(5.0)
        out2 = 1.0 - t
        assert out2.numpy()[0] == pytest.approx(-1.0)
        out3 = 6.0 / t
        assert out3.numpy()[0] == pytest.approx(3.0)

    def test_zeros_constructor(self):
        t = Tensor.zeros(2, 3, requires_grad=True)
        assert t.shape == (2, 3)
        assert t.requires_grad
