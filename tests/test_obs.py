"""Tests for the unified observability subsystem (repro.obs).

Covers the determinism-critical surfaces named in docs/observability.md:
histogram bucket-edge determinism, counter overflow/negative-delta
rejection, span ring wraparound, Chrome-trace JSON schema validity, the
Prometheus exposition round-trip, and the shared engine-stats delta helper.
"""

import json

import pytest

from repro.obs import (
    LATENCY_BUCKETS_S,
    WORKER_PUBLISHED_COUNTERS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SpanTracer,
    diff_snapshots,
    engine_stats_delta,
    parse_prometheus_text,
)
from repro.obs.metrics import _INT64_MAX


# -- counters ------------------------------------------------------------------
class TestCounter:
    def test_basic_increment(self):
        registry = MetricsRegistry(enabled=True)
        counter = registry.counter("events_total")
        counter.inc()
        counter.inc(41)
        assert counter.value == 42

    def test_negative_delta_rejected(self):
        registry = MetricsRegistry(enabled=True)
        counter = registry.counter("events_total")
        counter.inc(5)
        with pytest.raises(ValueError, match="monotonic"):
            counter.inc(-1)
        assert counter.value == 5  # rejection left the value untouched

    def test_overflow_rejected_at_int64(self):
        registry = MetricsRegistry(enabled=True)
        counter = registry.counter("events_total")
        counter.inc(_INT64_MAX)
        assert counter.value == _INT64_MAX
        with pytest.raises(OverflowError):
            counter.inc()
        assert counter.value == _INT64_MAX

    def test_disabled_registry_is_noop(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("events_total")
        counter.inc(10)
        assert counter.value == 0
        registry.enable()
        counter.inc(10)
        assert counter.value == 10

    def test_get_or_create_returns_same_handle(self):
        registry = MetricsRegistry(enabled=True)
        a = registry.counter("events_total", op="x")
        b = registry.counter("events_total", op="x")
        assert a is b
        assert registry.counter("events_total", op="y") is not a

    def test_type_mismatch_rejected(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("thing")
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("thing")

    def test_reset_zeroes_in_place(self):
        registry = MetricsRegistry(enabled=True)
        counter = registry.counter("events_total")
        counter.inc(7)
        registry.reset()
        assert counter.value == 0  # the module-level handle stays valid
        counter.inc()
        assert registry.counter("events_total").value == 1


class TestGauge:
    def test_set_and_read(self):
        registry = MetricsRegistry(enabled=True)
        gauge = registry.gauge("queue_depth")
        gauge.set(17)
        gauge.set(3)
        assert gauge.value == 3.0


# -- histograms ----------------------------------------------------------------
class TestHistogram:
    def test_bucket_edges_are_deterministic(self):
        """A value exactly on a bound lands in that bound's bucket (le
        semantics), and repeated runs produce identical bucket vectors."""
        hist = Histogram("latency_seconds", (1.0, 2.0, 5.0))
        for value in (0.5, 1.0, 1.0000001, 2.0, 4.9, 5.0, 5.1):
            hist.observe(value)
        # 0.5 and 1.0 -> le=1.0; 1.0000001 and 2.0 -> le=2.0;
        # 4.9 and 5.0 -> le=5.0; 5.1 -> overflow.
        assert hist.bucket_counts() == [2, 2, 2, 1]
        assert hist.count == 7

    def test_compiled_in_bounds_are_strictly_increasing(self):
        assert all(b > a for a, b in zip(LATENCY_BUCKETS_S, LATENCY_BUCKETS_S[1:]))

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", ())
        with pytest.raises(ValueError):
            Histogram("h", (1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", (2.0, 1.0))

    def test_bound_mismatch_on_reregistration_rejected(self):
        registry = MetricsRegistry(enabled=True)
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError, match="bucket bounds"):
            registry.histogram("h", buckets=(1.0, 3.0))

    def test_quantile_interpolation(self):
        hist = Histogram("h", (1.0, 2.0, 4.0))
        for _ in range(100):
            hist.observe(1.5)  # all in the (1.0, 2.0] bucket
        assert hist.quantile(0.0) == pytest.approx(1.0)
        assert hist.quantile(0.5) == pytest.approx(1.5)
        assert hist.quantile(1.0) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_quantile_overflow_bucket_reports_last_bound(self):
        hist = Histogram("h", (1.0, 2.0))
        hist.observe(100.0)
        assert hist.quantile(0.99) == 2.0

    def test_quantile_empty(self):
        assert Histogram("h", (1.0,)).quantile(0.5) == 0.0


# -- snapshots and exposition --------------------------------------------------
class TestSnapshots:
    @staticmethod
    def _populated_registry() -> MetricsRegistry:
        registry = MetricsRegistry(enabled=True)
        registry.counter("requests_total", op="submit").inc(3)
        registry.counter("requests_total", op="tick").inc(1)
        registry.gauge("queue_depth").set(5)
        hist = registry.histogram("latency_seconds", buckets=(0.001, 0.01, 0.1))
        for value in (0.0005, 0.002, 0.05, 1.0):
            hist.observe(value)
        return registry

    def test_snapshot_json_is_byte_deterministic(self):
        a = self._populated_registry().snapshot_json()
        b = self._populated_registry().snapshot_json()
        assert a == b
        # and registration order does not matter
        registry = MetricsRegistry(enabled=True)
        hist = registry.histogram("latency_seconds", buckets=(0.001, 0.01, 0.1))
        for value in (0.0005, 0.002, 0.05, 1.0):
            hist.observe(value)
        registry.gauge("queue_depth").set(5)
        registry.counter("requests_total", op="tick").inc(1)
        registry.counter("requests_total", op="submit").inc(3)
        assert registry.snapshot_json() == a

    def test_prometheus_round_trip(self):
        registry = self._populated_registry()
        text = registry.to_prometheus()
        samples = parse_prometheus_text(text)
        assert samples['requests_total{op="submit"}'] == 3
        assert samples['requests_total{op="tick"}'] == 1
        assert samples["queue_depth"] == 5.0
        # cumulative buckets, +Inf == _count
        assert samples['latency_seconds_bucket{le="0.001"}'] == 1
        assert samples['latency_seconds_bucket{le="0.01"}'] == 2
        assert samples['latency_seconds_bucket{le="0.1"}'] == 3
        assert samples['latency_seconds_bucket{le="+Inf"}'] == 4
        assert samples["latency_seconds_count"] == 4
        assert samples["latency_seconds_sum"] == pytest.approx(1.0525)

    def test_diff_snapshots(self):
        registry = self._populated_registry()
        before = registry.snapshot()
        registry.counter("requests_total", op="submit").inc(2)
        registry.gauge("queue_depth").set(9)
        registry.histogram("latency_seconds", buckets=(0.001, 0.01, 0.1)).observe(0.002)
        delta = diff_snapshots(before, registry.snapshot())
        assert delta["counters"]['requests_total{op="submit"}'] == 2
        assert delta["counters"]['requests_total{op="tick"}'] == 0
        assert delta["gauges"]["queue_depth"] == 9.0
        hist = delta["histograms"]["latency_seconds"]
        assert hist["count"] == 1
        assert hist["buckets"] == [0, 1, 0, 0]


class TestEngineStatsDelta:
    def test_config_passthrough_and_counter_subtraction(self):
        before = {
            "engine": "process", "pipeline_depth": 2, "num_workers": 2,
            "decisions": 100, "worker_wait_s": 1.0, "rollout_s": 2.0,
            "worker_idle_fraction": 0.25,
        }
        after = {
            "engine": "process", "pipeline_depth": 2, "num_workers": 2,
            "decisions": 150, "worker_wait_s": 1.5, "rollout_s": 3.0,
            "worker_idle_fraction": 0.25,
        }
        delta = engine_stats_delta(after, before)
        assert delta["engine"] == "process"
        assert delta["pipeline_depth"] == 2
        assert delta["decisions"] == 50
        # idle fraction recomputed over THIS interval: 0.5 / (2 * 1.0)
        assert delta["worker_idle_fraction"] == pytest.approx(0.25)

    def test_interval_idle_fraction_differs_from_cumulative(self):
        before = {
            "engine": "process", "num_workers": 1, "worker_idle_fraction": 0.5,
            "worker_wait_s": 5.0, "rollout_s": 10.0,
        }
        after = {
            "engine": "process", "num_workers": 1, "worker_idle_fraction": 0.4583,
            "worker_wait_s": 5.5, "rollout_s": 12.0,
        }
        delta = engine_stats_delta(after, before)
        # interval idle: 0.5 wait / 2.0 wall = 0.25, not the stale 0.46
        assert delta["worker_idle_fraction"] == pytest.approx(0.25)

    def test_local_engine_has_no_idle_fraction(self):
        delta = engine_stats_delta(
            {"engine": "local", "decisions": 10}, {"engine": "local", "decisions": 4}
        )
        assert delta == {"engine": "local", "decisions": 6}


# -- tracer --------------------------------------------------------------------
class TestSpanTracer:
    def test_disabled_records_nothing(self):
        tracer = SpanTracer(capacity=8, enabled=False)
        tracer.complete("x", 0, 10)
        with tracer.span("y"):
            pass
        assert tracer.recorded == 0

    def test_ring_wraparound(self):
        tracer = SpanTracer(capacity=4, enabled=True)
        for index in range(10):
            tracer.complete(f"span-{index}", start_ns=index * 100, duration_ns=50)
        assert tracer.recorded == 10
        assert tracer.dropped == 6
        events = tracer.events()
        assert len(events) == 4
        # oldest-first: the four survivors are spans 6..9 in order
        assert [event[1] for event in events] == [
            "span-6", "span-7", "span-8", "span-9",
        ]

    def test_events_before_wraparound_keep_order(self):
        tracer = SpanTracer(capacity=8, enabled=True)
        for index in range(3):
            tracer.complete(f"span-{index}", start_ns=index, duration_ns=1)
        assert [event[1] for event in tracer.events()] == [
            "span-0", "span-1", "span-2",
        ]
        assert tracer.dropped == 0

    def test_chrome_trace_schema(self, tmp_path):
        tracer = SpanTracer(capacity=16, enabled=True)
        tracer.complete("work", start_ns=1_000, duration_ns=2_000, cat="engine",
                        args={"lanes": 4})
        tracer.instant("marker", cat="engine")
        doc = tracer.to_chrome()
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        complete, instant = doc["traceEvents"]
        assert complete["ph"] == "X"
        assert complete["name"] == "work"
        assert complete["cat"] == "engine"
        assert complete["ts"] == pytest.approx(1.0)   # microseconds
        assert complete["dur"] == pytest.approx(2.0)
        assert complete["args"] == {"lanes": 4}
        assert isinstance(complete["pid"], int) and isinstance(complete["tid"], int)
        assert instant["ph"] == "i"
        assert "dur" not in instant
        # export round-trips through json
        path = tmp_path / "trace.json"
        tracer.export(path)
        assert json.loads(path.read_text()) == json.loads(json.dumps(doc))

    def test_span_context_manager_records_duration(self):
        tracer = SpanTracer(capacity=4, enabled=True)
        with tracer.span("timed", cat="test"):
            pass
        ((ph, name, cat, start_ns, duration_ns, pid, args, flow_id),) = tracer.events()
        assert (ph, name, cat) == ("X", "timed", "test")
        assert duration_ns >= 0
        assert flow_id is None

    def test_flow_events_chrome_schema(self):
        tracer = SpanTracer(capacity=16, enabled=True)
        tracer.complete("handle", start_ns=1_000, duration_ns=500, cat="svc")
        tracer.flow_start("req", 7, 1_000, cat="svc")
        tracer.flow_step("req", 7, 1_600, cat="svc")
        tracer.flow_end("req", 7, 2_000, cat="svc")
        doc = tracer.to_chrome()
        start, step, end = [e for e in doc["traceEvents"] if e["ph"] in "stf"]
        assert start["ph"] == "s" and start["id"] == 7
        assert start["ts"] == pytest.approx(1.0)  # microseconds
        assert step["ph"] == "t" and step["id"] == 7
        assert end["ph"] == "f" and end["id"] == 7
        # flow termini bind to the enclosing slice; flow events carry no dur
        assert end["bp"] == "e"
        assert "bp" not in start and "bp" not in step
        assert all("dur" not in e for e in (start, step, end))
        assert all(e["name"] == "req" for e in (start, step, end))

    def test_flow_events_respect_enabled_switch(self):
        tracer = SpanTracer(capacity=8, enabled=False)
        tracer.flow_start("req", 1, 0)
        tracer.flow_step("req", 1, 1)
        tracer.flow_end("req", 1, 2)
        assert tracer.recorded == 0

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            SpanTracer(capacity=0)


# -- wire-format constants -----------------------------------------------------
def test_worker_published_counters_is_stable():
    """The tuple is part of the shared-memory frame layout; changing its
    order or length is a wire-format break that must be deliberate."""
    assert WORKER_PUBLISHED_COUNTERS == (
        "sim_schedule_passes_total",
        "sim_decision_points_total",
        "sim_backfill_starts_total",
        "backfill_profile_builds_total",
        "sim_preemptions_total",
        "sim_requeues_total",
    )


def test_worker_counter_deltas_fit_int64():
    counter = Counter("sim_schedule_passes_total")
    counter.inc(_INT64_MAX)
    with pytest.raises(OverflowError):
        counter.inc(1)
