"""Shared fixtures: small deterministic traces and job factories."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.job import Job, Trace
from repro.workloads.synthetic import SyntheticTraceSpec, synthetic_trace


def make_job(
    job_id: int = 1,
    submit_time: float = 0.0,
    runtime: float = 100.0,
    processors: int = 4,
    requested_time: float | None = None,
) -> Job:
    """Concise job constructor used across the test suite."""
    return Job(
        job_id=job_id,
        submit_time=submit_time,
        runtime=runtime,
        requested_processors=processors,
        requested_time=requested_time if requested_time is not None else runtime * 2.0,
    )


@pytest.fixture
def job_factory():
    return make_job


@pytest.fixture
def tiny_trace() -> Trace:
    """A hand-built 8-job trace on a 16-processor machine with known contention."""
    jobs = [
        make_job(1, submit_time=0, runtime=1000, processors=8, requested_time=2000),
        make_job(2, submit_time=10, runtime=500, processors=8, requested_time=1000),
        make_job(3, submit_time=20, runtime=100, processors=12, requested_time=300),
        make_job(4, submit_time=30, runtime=50, processors=2, requested_time=100),
        make_job(5, submit_time=40, runtime=200, processors=4, requested_time=600),
        make_job(6, submit_time=50, runtime=800, processors=6, requested_time=1600),
        make_job(7, submit_time=60, runtime=30, processors=1, requested_time=60),
        make_job(8, submit_time=70, runtime=400, processors=10, requested_time=900),
    ]
    return Trace.from_jobs("tiny", num_processors=16, jobs=jobs)


@pytest.fixture(scope="session")
def small_spec() -> SyntheticTraceSpec:
    return SyntheticTraceSpec(
        name="small",
        num_processors=64,
        mean_interarrival=300.0,
        mean_runtime=3000.0,
        mean_processors=8.0,
    )


@pytest.fixture(scope="session")
def small_trace(small_spec) -> Trace:
    """A 600-job synthetic trace small enough for fast scheduling tests."""
    return synthetic_trace(small_spec, num_jobs=600, seed=123)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0)
