"""Tests for the backfilling RL environment, trainer, checkpoints, and RLBF strategy."""

import numpy as np
import pytest

from repro.core.agent import RLBackfillAgent
from repro.core.checkpoints import load_agent, save_agent
from repro.core.environment import BackfillEnvironment, RewardConfig
from repro.core.observation import ObservationConfig
from repro.core.rlbackfill import RLBackfillPolicy
from repro.core.trainer import Trainer, TrainerConfig, TrainingHistory
from repro.prediction.predictors import UserEstimate
from repro.rl.ppo import PPOConfig
from repro.scheduler.backfill.easy import EasyBackfill
from repro.scheduler.simulator import Simulator
from repro.workloads.sampling import sample_sequence


@pytest.fixture
def obs_config():
    return ObservationConfig(max_queue_size=16)


@pytest.fixture
def environment(small_trace, obs_config):
    return BackfillEnvironment(
        small_trace,
        policy="FCFS",
        sequence_length=80,
        observation_config=obs_config,
        seed=0,
    )


class TestRewardConfig:
    def test_defaults(self):
        cfg = RewardConfig()
        assert cfg.delay_penalty <= 0

    def test_positive_penalty_rejected(self):
        with pytest.raises(ValueError):
            RewardConfig(delay_penalty=1.0)

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            RewardConfig(final_reward_scale=0.0)

    def test_invalid_min_final_reward(self):
        with pytest.raises(ValueError):
            RewardConfig(min_final_reward=1.0)


class TestEnvironment:
    def test_reset_returns_valid_observation(self, environment):
        observation, mask = environment.reset()
        assert observation.shape == (environment.observation_size,)
        assert mask.shape == (environment.num_actions,)
        assert mask.sum() >= 1

    def test_baseline_computed(self, environment):
        environment.reset()
        assert environment.baseline_bsld >= 1.0

    def test_full_episode_terminates(self, environment):
        observation, mask = environment.reset()
        rng = np.random.default_rng(0)
        for _ in range(5000):
            action = int(rng.choice(np.flatnonzero(mask)))
            result = environment.step(action)
            if result.done:
                assert "bsld" in result.info and result.info["bsld"] >= 1.0
                assert environment.last_result is not None
                break
            observation, mask = result.observation, result.mask
        else:
            pytest.fail("episode did not terminate")

    def test_intermediate_rewards_non_positive(self, environment):
        _, mask = environment.reset()
        rng = np.random.default_rng(1)
        for _ in range(50):
            action = int(rng.choice(np.flatnonzero(mask)))
            result = environment.step(action)
            if result.done:
                break
            # Intermediate rewards are 0 or the (negative) delay penalty.
            assert result.reward <= 0.0
            mask = result.mask

    def test_step_before_reset_raises(self, small_trace, obs_config):
        env = BackfillEnvironment(small_trace, observation_config=obs_config, seed=0)
        with pytest.raises(RuntimeError):
            env.step(0)

    def test_invalid_action_raises(self, environment):
        _, mask = environment.reset()
        invalid = int(np.flatnonzero(mask == 0)[0]) if (mask == 0).any() else environment.num_actions - 1
        if mask[invalid] == 0:
            with pytest.raises(ValueError):
                environment.step(invalid)

    def test_explicit_sequence(self, environment, small_trace):
        jobs = sample_sequence(small_trace, 80, seed=2)
        observation, mask = environment.reset(jobs=jobs)
        assert mask.sum() >= 1

    def test_training_pool_reuses_sequences(self, small_trace, obs_config):
        env = BackfillEnvironment(
            small_trace,
            sequence_length=60,
            observation_config=obs_config,
            seed=0,
            training_pool_size=2,
        )
        for _ in range(4):
            env.reset()
        assert len(env._pool) == 2

    def test_min_baseline_filter(self, small_trace, obs_config):
        env = BackfillEnvironment(
            small_trace,
            sequence_length=60,
            observation_config=obs_config,
            seed=0,
            min_baseline_bsld=1.0,
        )
        env.reset()
        assert env.baseline_bsld >= 1.0

    def test_invalid_min_baseline(self, small_trace, obs_config):
        with pytest.raises(ValueError):
            BackfillEnvironment(
                small_trace, observation_config=obs_config, min_baseline_bsld=0.5
            )

    def test_delay_penalty_applied(self, small_trace, obs_config):
        penalised = RewardConfig(delay_penalty=-100.0)
        env = BackfillEnvironment(
            small_trace,
            sequence_length=80,
            observation_config=obs_config,
            reward_config=penalised,
            seed=3,
        )
        _, mask = env.reset()
        rng = np.random.default_rng(3)
        saw_penalty = False
        for _ in range(400):
            action = int(rng.choice(np.flatnonzero(mask)))
            result = env.step(action)
            if result.reward <= -100.0:
                saw_penalty = True
            if result.done:
                if env.episode_violations > 0:
                    assert saw_penalty
                break
            mask = result.mask

    def test_evaluate_baselines(self, environment, small_trace):
        jobs = sample_sequence(small_trace, 60, seed=4)
        baselines = environment.evaluate_baselines(jobs)
        assert set(baselines) == {"no-backfill", "easy", "easy-ar", "easy-sjf"}
        assert all(v >= 1.0 for v in baselines.values())


class TestRLBackfillPolicy:
    def test_plugs_into_simulator(self, small_trace, obs_config):
        agent = RLBackfillAgent(obs_config, seed=0)
        policy = RLBackfillPolicy(agent, seed=0)
        jobs = sample_sequence(small_trace, 100, seed=5)
        simulator = Simulator(small_trace.num_processors, policy="FCFS", estimator=UserEstimate())
        result = simulator.run(jobs, backfill=policy)
        assert len(result.records) == 100
        assert result.bsld >= 1.0

    def test_deterministic_evaluation_is_reproducible(self, small_trace, obs_config):
        agent = RLBackfillAgent(obs_config, seed=0)
        jobs = sample_sequence(small_trace, 100, seed=6)
        results = []
        for _ in range(2):
            simulator = Simulator(small_trace.num_processors, policy="FCFS")
            results.append(simulator.run(jobs, backfill=RLBackfillPolicy(agent)).bsld)
        assert results[0] == pytest.approx(results[1])

    def test_label_override(self, obs_config):
        agent = RLBackfillAgent(obs_config, seed=0)
        assert RLBackfillPolicy(agent, label="RL-X").name == "RL-X"


class TestTrainer:
    def _quick_config(self):
        return TrainerConfig(
            epochs=2,
            trajectories_per_epoch=2,
            ppo=PPOConfig(policy_iterations=3, value_iterations=3),
            seed=0,
        )

    def test_training_runs_and_reports(self, environment):
        agent = RLBackfillAgent(environment.observation_config, seed=0)
        trainer = Trainer(environment, agent, self._quick_config(), seed=0)
        history = trainer.train()
        assert len(history) == 2
        final = history.final()
        assert final.steps > 0
        assert final.mean_bsld >= 1.0
        assert final.mean_baseline_bsld >= 1.0
        assert np.isfinite(final.policy_loss)

    def test_history_helpers(self, environment):
        agent = RLBackfillAgent(environment.observation_config, seed=0)
        trainer = Trainer(environment, agent, self._quick_config(), seed=0)
        history = trainer.train()
        assert len(history.bslds) == 2
        assert len(history.rewards) == 2
        assert isinstance(history.improved(), bool)
        assert len(history.to_rows()) == 2

    def test_callback_invoked(self, environment):
        agent = RLBackfillAgent(environment.observation_config, seed=0)
        trainer = Trainer(environment, agent, self._quick_config(), seed=0)
        seen = []
        trainer.train(callback=seen.append)
        assert len(seen) == 2

    def test_agent_environment_mismatch_rejected(self, environment):
        wrong_agent = RLBackfillAgent(ObservationConfig(max_queue_size=4), seed=0)
        with pytest.raises(ValueError):
            Trainer(environment, wrong_agent, self._quick_config())

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            TrainerConfig(epochs=0)

    def test_config_presets(self):
        assert TrainerConfig.paper_scale().trajectories_per_epoch == 100
        assert TrainerConfig.quick_scale().epochs < TrainerConfig.paper_scale().epochs

    def test_empty_history_final_raises(self):
        with pytest.raises(ValueError):
            TrainingHistory().final()


class TestCheckpoints:
    def test_save_load_round_trip(self, tmp_path, obs_config):
        agent = RLBackfillAgent(obs_config, seed=0)
        path = save_agent(agent, tmp_path / "model")
        loaded = load_agent(path)
        assert loaded.observation_config.max_queue_size == obs_config.max_queue_size
        obs = np.random.default_rng(0).random((2, obs_config.observation_size))
        from repro.rl.autograd import Tensor

        np.testing.assert_allclose(
            agent.policy_logits(Tensor(obs)).numpy(), loaded.policy_logits(Tensor(obs)).numpy()
        )

    def test_load_restores_custom_architecture(self, tmp_path, obs_config):
        agent = RLBackfillAgent(obs_config, kernel_hidden=(8, 8), value_hidden=(16,), seed=0)
        path = save_agent(agent, tmp_path / "custom.npz")
        loaded = load_agent(path)
        assert loaded.num_parameters() == agent.num_parameters()

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_agent(tmp_path / "nope.npz")

    def test_checkpoint_keys_are_qualified_paths(self, tmp_path, obs_config):
        """Format v2: every array is keyed by net and attribute path."""
        agent = RLBackfillAgent(obs_config, seed=0)
        path = save_agent(agent, tmp_path / "model")
        with np.load(path) as data:
            assert int(data["__format_version__"]) == 2
            assert "kernel/network.0.weight" in data.files
            assert "value/network.0.weight" in data.files

    def test_loads_legacy_index_keyed_checkpoint(self, tmp_path, obs_config):
        """A format-1 checkpoint (flat-index keys) still loads bit-exactly."""
        agent = RLBackfillAgent(obs_config, kernel_hidden=(8, 8), value_hidden=(16,), seed=3)
        arrays = {
            "__format_version__": np.array(1),
            "__max_queue_size__": np.array(obs_config.max_queue_size),
            "__job_features__": np.array(obs_config.job_features),
        }
        for i, param in enumerate(agent.kernel.parameters()):
            arrays[f"kernel/{i}"] = param.data.copy()
        for i, param in enumerate(agent.value_net.parameters()):
            arrays[f"value/{i}"] = param.data.copy()
        path = tmp_path / "legacy.npz"
        np.savez(path, **arrays)
        with pytest.warns(DeprecationWarning):
            loaded = load_agent(path)
        from repro.rl.autograd import Tensor

        obs = np.random.default_rng(0).random((2, obs_config.observation_size))
        np.testing.assert_array_equal(
            agent.policy_logits(Tensor(obs)).numpy(),
            loaded.policy_logits(Tensor(obs)).numpy(),
        )


class TestTrainedAgentSanity:
    def test_trained_agent_usable_in_table_evaluation(self, small_trace, obs_config):
        """End-to-end: train briefly, then evaluate through the simulator like Table 4."""
        env = BackfillEnvironment(
            small_trace,
            policy="FCFS",
            sequence_length=60,
            observation_config=obs_config,
            seed=1,
            training_pool_size=2,
        )
        agent = RLBackfillAgent(obs_config, seed=1)
        trainer = Trainer(
            env,
            agent,
            TrainerConfig(epochs=1, trajectories_per_epoch=2, ppo=PPOConfig(policy_iterations=2, value_iterations=2)),
            seed=1,
        )
        trainer.train()
        jobs = sample_sequence(small_trace, 80, seed=9)
        rl = Simulator(small_trace.num_processors, policy="FCFS").run(
            jobs, backfill=RLBackfillPolicy(agent)
        )
        easy = Simulator(small_trace.num_processors, policy="FCFS").run(jobs, backfill=EasyBackfill())
        assert rl.bsld >= 1.0 and easy.bsld >= 1.0
