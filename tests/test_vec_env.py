"""Tests for the vectorized multi-environment rollout engine.

The two contracts that matter (see docs/simulator.md):

* **Serial parity** -- with one lane and a fixed seed, the vectorized engine
  produces bit-identical trajectories, rewards, buffer contents, and
  ``ScheduleMetrics`` to the serial ``Trainer.run_trajectory`` path.
* **Lane independence** -- the trajectory computed for a given job sequence
  does not depend on which lane index it occupies or what the other lanes
  are doing -- exactly, down to the forward-pass floats, because the policy
  runs through the batch-invariant matmul kernel.  (The full cross-config
  bit-parity matrix lives in ``tests/test_parity_matrix.py``.)
"""

import numpy as np
import pytest

from repro.core import BackfillEnvironment, RLBackfillAgent, Trainer, TrainerConfig
from repro.core.observation import ObservationConfig
from repro.prediction.predictors import UserEstimate
from repro.rl.buffer import TrajectoryBuffer
from repro.rl.ppo import PPOConfig
from repro.rl.vec_env import VecBackfillEnv
from repro.workloads.sampling import sample_sequence


OBS_CONFIG = ObservationConfig(max_queue_size=16)


def make_env(small_trace, seed=5, **kwargs):
    return BackfillEnvironment(
        small_trace,
        policy="FCFS",
        sequence_length=96,
        observation_config=OBS_CONFIG,
        seed=seed,
        **kwargs,
    )


def make_trainer(small_trace, num_envs=1, seed=5):
    env = make_env(small_trace, seed=seed, training_pool_size=3, min_baseline_bsld=1.1)
    agent = RLBackfillAgent(observation_config=OBS_CONFIG, seed=seed)
    config = TrainerConfig(
        epochs=1,
        trajectories_per_epoch=4,
        ppo=PPOConfig(policy_iterations=5, value_iterations=5),
        num_envs=num_envs,
    )
    return Trainer(env, agent, config, seed=seed)


def opportunity_sequences(trace, count, length=96, seed=100):
    """Fixed job sequences that are guaranteed to have backfill opportunities."""
    probe = make_env(trace, seed=0)
    sequences = []
    attempt = seed
    while len(sequences) < count:
        candidate = sample_sequence(trace, length, seed=attempt)
        attempt += 1
        try:
            probe.reset(jobs=candidate)
        except ValueError:
            continue
        sequences.append(candidate)
    return sequences


class TestSerialParity:
    def test_n1_bit_identical_to_serial_path(self, small_trace):
        """The acceptance contract: N=1 engine == serial rollouts, bit for bit."""
        serial = make_trainer(small_trace)
        serial_buffer = TrajectoryBuffer()
        serial_infos = [serial.run_trajectory(serial_buffer) for _ in range(5)]
        serial_data = serial_buffer.get()

        vec = make_trainer(small_trace)
        vec_buffer = TrajectoryBuffer()
        vec_infos = vec.collect_rollouts(vec_buffer, 5)
        vec_data = vec_buffer.get()

        for key in serial_data:
            assert np.array_equal(serial_data[key], vec_data[key]), key
        assert [i["bsld"] for i in serial_infos] == [i["bsld"] for i in vec_infos]
        assert [i["episode_reward"] for i in serial_infos] == [
            i["episode_reward"] for i in vec_infos
        ]
        assert [i["episode_steps"] for i in serial_infos] == [
            i["episode_steps"] for i in vec_infos
        ]
        # The schedule itself must be identical, not just the statistics.
        assert serial.environment.last_result is not None
        assert vec.environment.last_result is not None
        assert (
            serial.environment.last_result.metrics == vec.environment.last_result.metrics
        )
        records = serial.environment.last_result.records
        vec_records = vec.environment.last_result.records
        assert [(r.job.job_id, r.start_time, r.end_time, r.backfilled) for r in records] == [
            (r.job.job_id, r.start_time, r.end_time, r.backfilled) for r in vec_records
        ]

    def test_train_epoch_n1_matches_serial_collection(self, small_trace):
        """A full epoch through the engine equals hand-collected statistics."""
        reference = make_trainer(small_trace)
        buffer = TrajectoryBuffer(
            gamma=reference.config.ppo.gamma, lam=reference.config.ppo.lam
        )
        infos = [reference.run_trajectory(buffer) for _ in range(4)]

        trainer = make_trainer(small_trace)
        stats = trainer.train_epoch(1)
        assert stats.mean_bsld == pytest.approx(
            float(np.mean([i["bsld"] for i in infos])), abs=0.0
        )
        assert stats.steps == len(buffer)


class TestLaneIndependence:
    def test_lane_permutation_invariance(self, small_trace):
        """Each sequence's trajectory is the same wherever its lane sits."""
        sequences = opportunity_sequences(small_trace, 3)
        agent = RLBackfillAgent(observation_config=OBS_CONFIG, seed=9)

        def run(order):
            envs = [make_env(small_trace, seed=50 + i) for i in range(3)]
            vec = VecBackfillEnv(envs)
            buffer = TrajectoryBuffer()
            infos = vec.rollout(
                agent,
                3,
                buffer,
                deterministic=True,
                episode_jobs=[sequences[i] for i in order],
            )
            by_sequence = {}
            for info in infos:
                by_sequence[order[info["lane"]]] = (
                    info["episode_steps"],
                    info["episode_reward"],
                    info["bsld"],
                )
            return by_sequence

        identity = run([0, 1, 2])
        permuted = run([2, 0, 1])
        assert identity == permuted

    def test_per_lane_rngs_keep_streams_independent(self, small_trace):
        """A stochastic lane's draws do not depend on the other lanes."""
        sequences = opportunity_sequences(small_trace, 2)
        agent = RLBackfillAgent(observation_config=OBS_CONFIG, seed=9)

        def run_lane0(companion_seed):
            envs = [make_env(small_trace, seed=50), make_env(small_trace, seed=60)]
            vec = VecBackfillEnv(envs)
            buffer = TrajectoryBuffer()
            rngs = [np.random.default_rng(1), np.random.default_rng(companion_seed)]
            infos = vec.rollout(agent, 2, buffer, rngs=rngs, episode_jobs=sequences)
            return next(i for i in infos if i["lane"] == 0)

        a = run_lane0(companion_seed=2)
        b = run_lane0(companion_seed=777)
        assert a["episode_reward"] == b["episode_reward"]
        assert a["episode_steps"] == b["episode_steps"]
        assert a["bsld"] == b["bsld"]


class TestVecBackfillEnv:
    def test_requires_lanes(self):
        with pytest.raises(ValueError):
            VecBackfillEnv([])

    def test_rejects_duplicate_lane_instances(self, small_trace):
        env = make_env(small_trace)
        with pytest.raises(ValueError):
            VecBackfillEnv([env, env])

    def test_rejects_mismatched_spaces(self, small_trace):
        env_a = make_env(small_trace)
        env_b = BackfillEnvironment(
            small_trace,
            policy="FCFS",
            sequence_length=96,
            observation_config=ObservationConfig(max_queue_size=8),
            seed=1,
        )
        with pytest.raises(ValueError):
            VecBackfillEnv([env_a, env_b])

    def test_from_template_builds_distinct_lanes(self, small_trace):
        env = make_env(small_trace)
        vec = VecBackfillEnv.from_template(env, 4, seed=3)
        assert vec.num_envs == 4
        assert vec.envs[0] is env
        assert len({id(e) for e in vec.envs}) == 4
        # Estimators must not be shared between lanes.
        assert len({id(e.estimator) for e in vec.envs}) == 4

    def test_rollout_validates_arguments(self, small_trace):
        env = make_env(small_trace)
        vec = VecBackfillEnv([env])
        agent = RLBackfillAgent(observation_config=OBS_CONFIG, seed=0)
        with pytest.raises(ValueError):
            vec.rollout(agent, 0, TrajectoryBuffer())
        with pytest.raises(ValueError):
            vec.rollout(agent, 2, TrajectoryBuffer(), rngs=[])
        with pytest.raises(ValueError):
            vec.rollout(agent, 2, TrajectoryBuffer(), episode_jobs=[[]])

    def test_more_lanes_than_trajectories(self, small_trace):
        env = make_env(small_trace, training_pool_size=2, min_baseline_bsld=1.1)
        vec = VecBackfillEnv.from_template(env, 4, seed=3)
        agent = RLBackfillAgent(observation_config=OBS_CONFIG, seed=0)
        buffer = TrajectoryBuffer()
        infos = vec.rollout(
            agent, 2, buffer, rngs=[np.random.default_rng(i) for i in range(4)]
        )
        assert len(infos) == 2
        assert buffer.num_complete == len(buffer) > 0


class TestDeferredEncoding:
    def test_deferred_step_matches_encoded_step(self, small_trace):
        sequences = opportunity_sequences(small_trace, 1)
        env_a = make_env(small_trace, seed=1)
        env_b = make_env(small_trace, seed=2)
        obs_a, mask_a = env_a.reset(jobs=sequences[0])
        obs_b, mask_b = env_b.reset(jobs=sequences[0])
        assert np.array_equal(obs_a, obs_b)
        rng = np.random.default_rng(0)
        for _ in range(20):
            action = int(rng.choice(np.flatnonzero(mask_a)))
            result_a = env_a.step(action)          # encoded eagerly
            result_b = env_b.step(action, encode=False)
            assert result_a.done == result_b.done
            assert result_a.reward == result_b.reward
            if result_a.done:
                break
            assert result_b.observation is None
            deferred = env_b.encode_observation()
            assert np.array_equal(result_a.observation, deferred)
            assert np.array_equal(result_a.mask, result_b.mask)
            mask_a = result_a.mask

    def test_pending_encode_requires_active_episode(self, small_trace):
        env = make_env(small_trace)
        with pytest.raises(RuntimeError):
            env.pending_encode()

    def test_skip_action_ablation_still_encodes(self, small_trace):
        """The skip-slot ablation must work through the deferred-encode path."""
        config = ObservationConfig(max_queue_size=16, include_skip_action=True)
        env = BackfillEnvironment(
            small_trace,
            policy="FCFS",
            sequence_length=96,
            observation_config=config,
            seed=5,
        )
        obs, mask = env.reset()
        assert mask[config.skip_slot] == 1.0
        matrix = obs.reshape(config.num_slots, config.job_features)
        assert matrix[config.skip_slot][5] == 1.0  # is_skip flag set
        result = env.step(int(config.skip_slot))   # decline the opportunity
        if not result.done:
            assert result.observation is not None
            assert result.mask[config.skip_slot] == 1.0


class TestIdleLaneHandling:
    def test_finished_lanes_contribute_no_batch_rows(self, small_trace):
        """Retired lanes ride along in no encode or forward batch.

        Every forward-pass row must correspond to exactly one stored decision
        step, and a lane that exhausted the episode quota must never reappear
        in a later batch -- finished lanes are dropped, not padded or
        re-encoded until the epoch ends.
        """
        trainer = make_trainer(small_trace, num_envs=4)
        agent = trainer.agent
        forward_rows = 0
        original_step_batch = agent.step_batch

        def counting_step_batch(observations, masks, rngs=None, deterministic=False):
            nonlocal forward_rows
            forward_rows += observations.shape[0]
            return original_step_batch(
                observations, masks, rngs=rngs, deterministic=deterministic
            )

        agent.step_batch = counting_step_batch
        # Per-lane lifecycle machine: a step is only legal while an episode
        # is active (after a reset, before its done); stepping a lane whose
        # episode finished without a restart is the ride-along regression.
        lane_state = {lane: "idle" for lane in range(4)}
        violations = []
        for lane, env in enumerate(trainer.vec_env.envs):
            original_lane_step = env.step
            original_lane_reset = env.reset

            def tracking_step(action, encode=True, _lane=lane, _step=original_lane_step):
                if lane_state[_lane] != "active":
                    violations.append(("step-while-idle", _lane))
                result = _step(action, encode=encode)
                if result.done:
                    lane_state[_lane] = "idle"
                return result

            def tracking_reset(_lane=lane, _reset=original_lane_reset, **kwargs):
                lane_state[_lane] = "active"
                return _reset(**kwargs)

            env.step = tracking_step
            env.reset = tracking_reset
        try:
            buffer = TrajectoryBuffer()
            infos = trainer.collect_rollouts(buffer, 6)
        finally:
            agent.step_batch = original_step_batch
        total_steps = sum(info["episode_steps"] for info in infos)
        assert forward_rows == total_steps == len(buffer)
        assert violations == []
        # Every lane ends the epoch retired -- no episode left dangling.
        assert all(state == "idle" for state in lane_state.values())

    def test_restarted_lanes_share_the_batched_encode(self, small_trace):
        """Episode restarts must not fall back to batch-of-one encodes."""
        trainer = make_trainer(small_trace, num_envs=2)
        builder = trainer.vec_env.envs[0].builder
        batch_sizes = []
        original_encode = builder.encode_batch

        def counting_encode(items):
            batch_sizes.append(len(items))
            return original_encode(items)

        builder.encode_batch = counting_encode
        try:
            buffer = TrajectoryBuffer()
            infos = trainer.collect_rollouts(buffer, 4)
        finally:
            builder.encode_batch = original_encode
        assert len(infos) == 4
        # While both lanes run (including across restarts), encodes stay
        # batched; only the single-lane drain tail may encode one at a time.
        encoded_rows = sum(batch_sizes)
        assert encoded_rows == len(buffer)
        assert max(batch_sizes) == 2


class TestEnvironmentClone:
    def test_clone_is_independent(self, small_trace):
        env = make_env(small_trace, seed=1)
        clone = env.clone(seed=2)
        assert clone.estimator is not env.estimator
        assert clone.baseline_backfill is not env.baseline_backfill
        assert clone.observation_config == env.observation_config
        obs, mask = clone.reset()
        assert obs.shape == (env.observation_size,)
        assert mask.shape == (env.num_actions,)
        # The original is untouched by the clone's episode.
        assert env._generator is None


class TestStepBatch:
    def test_single_step_is_the_batch_of_one_case(self, small_trace):
        """``step`` must equal ``step_batch`` on a one-row batch, bit for bit."""
        agent = RLBackfillAgent(observation_config=OBS_CONFIG, seed=3)
        env = make_env(small_trace, seed=4)
        obs, mask = env.reset()
        actions, values, log_probs = agent.step_batch(
            obs[None, :], mask[None, :], rngs=[np.random.default_rng(7)]
        )
        action, value, log_prob = agent.step(obs, mask, rng=np.random.default_rng(7))
        assert int(actions[0]) == action
        assert float(values[0]) == value
        assert float(log_probs[0]) == log_prob

    def test_identical_rows_get_identical_actions(self, small_trace):
        """Within one batch, a row's output depends only on that row.

        The forward pass runs through the batch-invariant matmul kernel, so
        identical rows produce identical floats -- exactly, not to a
        tolerance (before the kernel, row-blocked BLAS could vary the last
        ulp with row position).
        """
        agent = RLBackfillAgent(observation_config=OBS_CONFIG, seed=3)
        env = make_env(small_trace, seed=4)
        obs, mask = env.reset()
        batch_obs = np.stack([obs, obs, obs])
        batch_mask = np.stack([mask, mask, mask])
        actions, values, log_probs = agent.step_batch(
            batch_obs, batch_mask, rngs=[np.random.default_rng(7) for _ in range(3)]
        )
        assert len(set(actions.tolist())) == 1
        assert values.tolist() == [values[0]] * 3
        assert log_probs.tolist() == [log_probs[0]] * 3

    def test_step_batch_rows_are_batch_invariant(self, small_trace):
        """``step_batch(rows[i:i+1])[·] == step_batch(rows)[·][i]`` bit for bit.

        The engine-parity contract at the forward-pass level: a row's
        action, value, and log-prob are independent of how many other lanes
        share the batch and of their contents.
        """
        agent = RLBackfillAgent(observation_config=OBS_CONFIG, seed=3)
        rng = np.random.default_rng(1)
        batch = 11
        obs = rng.random((batch, OBS_CONFIG.observation_size))
        mask = (rng.random((batch, OBS_CONFIG.num_actions)) < 0.5).astype(np.float64)
        mask[np.arange(batch), rng.integers(0, OBS_CONFIG.num_actions, batch)] = 1.0
        seeds = list(range(100, 100 + batch))
        actions, values, log_probs = agent.step_batch(
            obs, mask, rngs=[np.random.default_rng(s) for s in seeds]
        )
        for i in range(batch):
            single_a, single_v, single_lp = agent.step_batch(
                obs[i : i + 1], mask[i : i + 1], rngs=[np.random.default_rng(seeds[i])]
            )
            assert int(single_a[0]) == int(actions[i])
            assert float(single_v[0]) == float(values[i])
            assert float(single_lp[0]) == float(log_probs[i])

    def test_requires_per_row_rngs(self):
        agent = RLBackfillAgent(observation_config=OBS_CONFIG, seed=3)
        obs = np.zeros((2, OBS_CONFIG.observation_size))
        mask = np.ones((2, OBS_CONFIG.num_actions))
        with pytest.raises(ValueError):
            agent.step_batch(obs, mask, rngs=[np.random.default_rng(0)])
        with pytest.raises(ValueError):
            agent.step_batch(obs[0], mask[0], rngs=None, deterministic=True)

    def test_deterministic_needs_no_rngs(self):
        agent = RLBackfillAgent(observation_config=OBS_CONFIG, seed=3)
        obs = np.random.default_rng(0).random((4, OBS_CONFIG.observation_size))
        mask = np.ones((4, OBS_CONFIG.num_actions))
        actions, values, log_probs = agent.step_batch(obs, mask, deterministic=True)
        assert actions.shape == values.shape == log_probs.shape == (4,)

    def test_respects_action_mask(self):
        agent = RLBackfillAgent(observation_config=OBS_CONFIG, seed=3)
        rng = np.random.default_rng(0)
        obs = rng.random((8, OBS_CONFIG.observation_size))
        mask = np.zeros((8, OBS_CONFIG.num_actions))
        valid = rng.integers(0, OBS_CONFIG.num_actions, size=8)
        mask[np.arange(8), valid] = 1.0
        actions, _, _ = agent.step_batch(
            obs, mask, rngs=[np.random.default_rng(i) for i in range(8)]
        )
        assert np.array_equal(actions, valid)


class TestBufferAbsorb:
    def _filled(self, steps=3, reward=1.0):
        buffer = TrajectoryBuffer()
        for _ in range(steps):
            buffer.store(np.zeros(4), np.ones(2), 0, reward, 0.5, -0.1)
        buffer.finish_path()
        return buffer

    def test_absorb_concatenates_and_clears(self):
        epoch = self._filled(steps=2, reward=1.0)
        lane = self._filled(steps=3, reward=2.0)
        epoch.absorb(lane)
        assert len(epoch) == 5
        assert epoch.num_complete == 5
        assert len(lane) == 0
        assert epoch.rewards == [1.0, 1.0, 2.0, 2.0, 2.0]

    def test_absorb_requires_finished_paths(self):
        epoch = self._filled()
        open_buffer = TrajectoryBuffer()
        open_buffer.store(np.zeros(4), np.ones(2), 0, 1.0, 0.5, -0.1)
        with pytest.raises(RuntimeError):
            epoch.absorb(open_buffer)

    def test_absorb_rejects_mismatched_hyperparameters(self):
        epoch = TrajectoryBuffer(gamma=1.0)
        other = TrajectoryBuffer(gamma=0.9)
        with pytest.raises(ValueError):
            epoch.absorb(other)

    def test_absorb_rejects_self(self):
        buffer = TrajectoryBuffer()
        with pytest.raises(ValueError):
            buffer.absorb(buffer)


class TestTrainerVectorized:
    def test_num_envs_validation(self):
        with pytest.raises(ValueError):
            TrainerConfig(num_envs=0)

    def test_multi_lane_training_epoch(self, small_trace):
        trainer = make_trainer(small_trace, num_envs=3)
        assert trainer.vec_env.num_envs == 3
        stats = trainer.train_epoch(1)
        assert stats.steps > 0
        assert np.isfinite(stats.mean_bsld)
        assert stats.mean_bsld >= 1.0

    def test_multi_lane_collection_counts_trajectories(self, small_trace):
        trainer = make_trainer(small_trace, num_envs=4)
        buffer = TrajectoryBuffer()
        infos = trainer.collect_rollouts(buffer, 7)
        assert len(infos) == 7
        assert buffer.num_complete == len(buffer)
        lanes = {info["lane"] for info in infos}
        assert lanes.issubset(set(range(4)))
        assert len(lanes) > 1
